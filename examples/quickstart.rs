//! Quickstart: assess the quality of a small metadata collection with the
//! full architecture in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::collections::BTreeMap;

use preserva::core::architecture::Architecture;
use preserva::core::roles::{EndUser, ProcessDesigner};
use preserva::quality::dimension::Dimension;
use preserva::wfms::engine::EngineConfig;
use preserva::wfms::model::{Processor, Workflow};
use preserva::wfms::services::{port, PortMap, ServiceRegistry};
use serde_json::json;

fn main() {
    // 1. Register the services workflows may call. Here: a toy checker
    //    that reports how many of the input names are outdated.
    let mut registry = ServiceRegistry::new();
    registry.register_fn("name_checker", |inputs: &PortMap| {
        let names = inputs["names"].as_array().cloned().unwrap_or_default();
        let outdated: Vec<_> = names
            .iter()
            .filter(|n| n.as_str() == Some("Elachistocleis ovalis"))
            .cloned()
            .collect();
        let mut out = port("outdated", json!(outdated));
        out.insert("checked".into(), json!(names.len()));
        Ok(out)
    });

    // 2. Open the architecture (all repositories share one durable store).
    let dir = std::env::temp_dir().join(format!("preserva-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut arch = Architecture::open(&dir, registry, EngineConfig::default()).unwrap();

    // 3. A Process Designer publishes a quality-annotated workflow.
    let mut workflow = Workflow::new("wf-quick", "quick name check")
        .with_input("names")
        .with_output("outdated")
        .with_processor(Processor::service(
            "checker",
            "name_checker",
            &["names"],
            &["outdated", "checked"],
        ))
        .link_input("names", "checker", "names")
        .link_output("checker", "outdated", "outdated");
    let designer = ProcessDesigner::new("expert", "IC/Unicamp");
    arch.adapter()
        .annotate_processor(
            &mut workflow,
            "checker",
            &[("reputation", 1.0), ("availability", 0.9)],
            &designer,
            "2013-11-12",
        )
        .unwrap();
    arch.publish_workflow(workflow).unwrap();

    // 4. Run it; provenance is captured automatically.
    let input = port(
        "names",
        json!(["Hyla faber", "Elachistocleis ovalis", "Scinax ruber"]),
    );
    let trace = arch.run_workflow("wf-quick", &input).unwrap();
    println!("run {} finished in {:.2?}", trace.run_id, trace.elapsed);
    println!("outdated names: {}", trace.workflow_outputs["outdated"]);

    // 5. An End User assesses quality from the stored provenance +
    //    annotations + the run's facts.
    let user = EndUser::new("Dr. Toledo", "IB/Unicamp");
    let mut facts = BTreeMap::new();
    facts.insert("names_checked".to_string(), 3.0);
    facts.insert("names_correct".to_string(), 2.0);
    let report = arch
        .assess_run(&user, None, "demo-names", &trace.run_id, &facts)
        .unwrap();
    print!("{}", report.render_text());
    assert!(report.score(&Dimension::accuracy()).unwrap() > 0.6);

    std::fs::remove_dir_all(&dir).ok();
}
