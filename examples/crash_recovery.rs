//! Long-term preservation needs durable repositories: this example
//! simulates a crash between curation batches and shows that committed
//! name updates survive recovery while the torn, uncommitted batch is
//! rolled back — so the "originals + reference table" invariant holds
//! even across failures.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use preserva::storage::engine::{Engine, EngineOptions};
use preserva::storage::table::TableStore;
use preserva::storage::wal::{Wal, WalRecord};

fn main() {
    let dir = std::env::temp_dir().join(format!("preserva-ex-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Session 1: commit two name updates atomically via a write session.
    {
        let store = TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        ));
        store
            .put("records", b"FNJV-000001", b"{original record}")
            .unwrap();
        let mut session = store.session();
        session
            .put(
                "updated_names",
                b"Elachistocleis ovalis",
                br#"{"new":"Nomen inquirenda","verified":false}"#,
            )
            .unwrap();
        session
            .put("name_refs", b"FNJV-000001", b"Elachistocleis ovalis")
            .unwrap();
        session.commit().unwrap();
        println!("committed session 1 (update + reference, atomically)");
    } // clean close

    // Simulate a crash mid-batch: write a Put with no Commit frame, as if
    // the process died between WAL append and commit.
    {
        let mut wal = Wal::open(&dir.join("wal.log"), false).unwrap();
        wal.append(&WalRecord::Put {
            table: "updated_names".into(),
            key: b"Hyla faber".to_vec(),
            value: b"{torn write!}".to_vec(),
        })
        .unwrap();
        wal.sync().unwrap();
        println!("simulated crash: torn batch 2 left in the WAL without a commit frame");
    }

    // Recovery.
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    let stats = engine.stats();
    println!(
        "recovered: {} committed records replayed",
        stats.recovered_records
    );

    let committed = engine
        .get("updated_names", b"Elachistocleis ovalis")
        .unwrap();
    let torn = engine.get("updated_names", b"Hyla faber").unwrap();
    let original = engine.get("records", b"FNJV-000001").unwrap();
    println!("  committed update survives:   {}", committed.is_some());
    println!("  torn update rolled back:     {}", torn.is_none());
    println!(
        "  original record untouched:   {}",
        original.as_deref() == Some(&b"{original record}"[..])
    );
    assert!(committed.is_some() && torn.is_none());
    assert_eq!(original.as_deref(), Some(&b"{original record}"[..]));

    // A checkpoint compacts everything into a snapshot; recovery again.
    engine.checkpoint().unwrap();
    drop(engine);
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    assert!(engine
        .get("updated_names", b"Elachistocleis ovalis")
        .unwrap()
        .is_some());
    println!("  snapshot recovery:           true");

    std::fs::remove_dir_all(&dir).ok();
}
