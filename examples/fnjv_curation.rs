//! The FNJV curation scenario end to end: generate a legacy collection,
//! run the paper's stage-1 pipeline (cleaning → georeferencing →
//! environmental fill), detect outdated species names against the
//! Catalogue of Life, persist updates beside the untouched originals, and
//! route proposals through biologist review.
//!
//! ```sh
//! cargo run --example fnjv_curation
//! ```

use std::sync::Arc;

use preserva::curation::log::CurationLog;
use preserva::curation::outdated::{persist_updates, OutdatedNameDetector, UPDATED_NAMES_TABLE};
use preserva::curation::pipeline::CurationPipeline;
use preserva::curation::review::{ReviewItem, ReviewQueue};
use preserva::fnjv::config::GeneratorConfig;
use preserva::fnjv::generator;
use preserva::fnjv::stats::CollectionStats;
use preserva::metadata::fnjv;
use preserva::storage::engine::{Engine, EngineOptions};
use preserva::storage::table::TableStore;
use preserva::taxonomy::service::{ColService, ServiceConfig};

fn main() {
    // A small legacy collection: dirty text, pre-GPS records, gaps.
    let collection = generator::generate(&GeneratorConfig::small(2024));
    println!("--- before curation ---");
    print!("{}", CollectionStats::compute(&collection.records).render());

    // Stage 1: the three-step cleaning pipeline.
    let pipeline = CurationPipeline::stage1(collection.gazetteer.clone(), fnjv::schema());
    let mut log = CurationLog::new();
    let mut queue = ReviewQueue::new();
    let (curated, summary) = pipeline.run(&collection.records, &mut log, &mut queue);
    println!("\n--- after stage-1 curation ---");
    print!("{}", CollectionStats::compute(&curated).render());
    println!(
        "pipeline: {} of {} records changed, {} field fixes, {} review flags",
        summary.records_changed, summary.records_total, summary.field_changes, summary.flags
    );

    // Outdated-name detection against the (synthetic) Catalogue of Life.
    let service = ColService::new(
        collection.checklist.clone(),
        ServiceConfig {
            availability: 0.9,
            ..ServiceConfig::default()
        },
    );
    let report = OutdatedNameDetector::new(&service, 5).check_collection(&curated);
    println!("\n--- outdated species names ---");
    print!("{}", report.render_summary());

    // Persist updates in the separate reference table; originals untouched.
    let dir = std::env::temp_dir().join(format!("preserva-ex-curation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TableStore::new(Arc::new(
        Engine::open(&dir, EngineOptions::default()).unwrap(),
    ));
    persist_updates(&store, &report).unwrap();
    println!(
        "persisted {} proposed updates (unverified) in `{}`",
        store.count(UPDATED_NAMES_TABLE).unwrap(),
        UPDATED_NAMES_TABLE
    );

    // Biologists review: approve the first proposal, reject none.
    for (old, new) in report.outdated.iter().take(3) {
        queue.submit(ReviewItem::NameUpdate {
            record_id: "batch".into(),
            old: old.canonical(),
            new: new.canonical(),
        });
    }
    let pending: Vec<u64> = queue.pending().map(|e| e.id).collect();
    if let Some(&first) = pending.first() {
        queue.approve(first, "Dr. Toledo", &mut log).unwrap();
    }
    println!(
        "review queue: {} pending after one approval; curation log holds {} entries",
        queue.pending().count(),
        log.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
