//! The architecture on a different domain — the paper notes its
//! predecessor was deployed "for an agriculture application, using Java
//! and the Taverna Workflow System" (Malaverri et al.), and that the
//! boxes say *data*, not metadata, because the approach is general.
//!
//! Here: soil-sample records flow through a quality-aware workflow that
//! enriches them with weather data and screens implausible pH values;
//! the Data Quality Manager then scores the dataset from provenance +
//! annotations + run facts, exactly as in the FNJV case study.
//!
//! ```sh
//! cargo run --example agriculture
//! ```

use std::collections::BTreeMap;

use preserva::core::architecture::Architecture;
use preserva::core::roles::{EndUser, ProcessDesigner};
use preserva::quality::dimension::Dimension;
use preserva::quality::metric::Metric;
use preserva::quality::model::QualityModel;
use preserva::wfms::engine::EngineConfig;
use preserva::wfms::model::{Processor, Workflow};
use preserva::wfms::services::{port, PortMap, ServiceRegistry};
use serde_json::{json, Value};

fn main() {
    // --- services: a soil-lab reading validator and a weather enricher ---
    let mut registry = ServiceRegistry::new();
    registry.register_fn("validate_ph", |inputs: &PortMap| {
        let samples = inputs["samples"].as_array().cloned().unwrap_or_default();
        let (valid, invalid): (Vec<Value>, Vec<Value>) = samples
            .into_iter()
            .partition(|s| matches!(s["ph"].as_f64(), Some(ph) if (3.0..=10.0).contains(&ph)));
        let mut out = port("valid", json!(valid));
        out.insert("invalid_count".into(), json!(invalid.len()));
        Ok(out)
    });
    registry.register_fn("enrich_weather", |inputs: &PortMap| {
        let samples = inputs["samples"].as_array().cloned().unwrap_or_default();
        let enriched: Vec<Value> = samples
            .into_iter()
            .map(|mut s| {
                // A fixed climatology stand-in for the weather service.
                s["rainfall_mm_30d"] = json!(112.5);
                s
            })
            .collect();
        Ok(port("enriched", json!(enriched)))
    });

    let dir = std::env::temp_dir().join(format!("preserva-ex-agri-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut arch = Architecture::open(&dir, registry, EngineConfig::default()).unwrap();

    // --- the quality-aware workflow, annotated by the designer ---
    let mut workflow = Workflow::new("wf-soil", "Soil sample enrichment")
        .with_input("samples")
        .with_output("dataset")
        .with_output("rejected")
        .with_processor(Processor::service(
            "Validate_pH",
            "validate_ph",
            &["samples"],
            &["valid", "invalid_count"],
        ))
        .with_processor(Processor::service(
            "Weather_service",
            "enrich_weather",
            &["samples"],
            &["enriched"],
        ))
        .link_input("samples", "Validate_pH", "samples")
        .link("Validate_pH", "valid", "Weather_service", "samples")
        .link_output("Weather_service", "enriched", "dataset")
        .link_output("Validate_pH", "invalid_count", "rejected");
    let designer = ProcessDesigner::new("agronomist", "Feagri/Unicamp");
    arch.adapter()
        .annotate_processor(
            &mut workflow,
            "Weather_service",
            &[("reputation", 0.85), ("availability", 0.97)],
            &designer,
            "2012-06-01",
        )
        .unwrap();
    arch.publish_workflow(workflow).unwrap();

    // --- run over a batch of soil samples (one has a bad pH) ---
    let samples = json!([
        {"plot": "A1", "ph": 6.1, "organic_matter": 2.4},
        {"plot": "A2", "ph": 5.8, "organic_matter": 3.1},
        {"plot": "B1", "ph": 42.0, "organic_matter": 1.9}, // sensor glitch
        {"plot": "B2", "ph": 7.2, "organic_matter": 2.8},
    ]);
    let trace = arch
        .run_workflow("wf-soil", &port("samples", samples))
        .unwrap();
    let dataset = trace.workflow_outputs["dataset"].as_array().unwrap();
    println!(
        "run {}: {} samples enriched, {} rejected",
        trace.run_id,
        dataset.len(),
        trace.workflow_outputs["rejected"]
    );
    assert_eq!(dataset.len(), 3);
    assert!(dataset.iter().all(|s| s["rainfall_mm_30d"].is_number()));

    // --- an agronomist's quality model over the same three inputs ---
    let user = EndUser::new("Dr. Scholten", "Feagri");
    let model = QualityModel::new()
        .with_metric(Metric::from_ratio(
            "sample validity",
            Dimension::accuracy(),
            "samples_valid",
            "samples_total",
        ))
        .with_metric(Metric::from_annotation(
            "weather source reputation",
            Dimension::reputation(),
            "reputation",
        ))
        .with_metric(Metric::from_fact(
            "pipeline reliability",
            Dimension::reliability(),
            "observed_availability",
        ));
    let mut facts = BTreeMap::new();
    facts.insert("samples_total".to_string(), 4.0);
    facts.insert("samples_valid".to_string(), 3.0);
    let report = arch
        .assess_run(&user, Some(model), "soil-2012", &trace.run_id, &facts)
        .unwrap();
    print!("\n{}", report.render_text());
    assert_eq!(report.score(&Dimension::accuracy()), Some(0.75));
    assert_eq!(report.score(&Dimension::reputation()), Some(0.85));

    std::fs::remove_dir_all(&dir).ok();
}
