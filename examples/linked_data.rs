//! The paper's §V future-work directions, working: export a curation
//! run's provenance as Linked Data (N-Triples) and health-check the
//! stored workflow for decay.
//!
//! ```sh
//! cargo run --example linked_data
//! ```

use preserva::core::architecture::Architecture;
use preserva::core::roles::ProcessDesigner;
use preserva::wfms::engine::EngineConfig;
use preserva::wfms::model::{Processor, Workflow};
use preserva::wfms::services::{port, PortMap, ServiceRegistry};
use serde_json::json;

fn main() {
    let dir = std::env::temp_dir().join(format!("preserva-ex-ld-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut registry = ServiceRegistry::new();
    registry.register_fn("col_lookup", |i: &PortMap| {
        Ok(port("checked", i["names"].clone()))
    });
    let arch = Architecture::open(&dir, registry, EngineConfig::default()).unwrap();

    // Publish the annotated case-study-shaped workflow.
    let mut w = Workflow::new("wf-ld", "Outdated Species Name Detection")
        .with_input("names")
        .with_output("report")
        .with_processor(Processor::service(
            "Catalog_of_life",
            "col_lookup",
            &["names"],
            &["checked"],
        ))
        .link_input("names", "Catalog_of_life", "names")
        .link_output("Catalog_of_life", "checked", "report");
    arch.adapter()
        .annotate_processor(
            &mut w,
            "Catalog_of_life",
            &[("reputation", 1.0), ("availability", 0.9)],
            &ProcessDesigner::new("expert", "IC/Unicamp"),
            "2013-11-12",
        )
        .unwrap();
    arch.publish_workflow(w).unwrap();

    // Run and export the provenance as N-Triples.
    let trace = arch
        .run_workflow("wf-ld", &port("names", json!(["Elachistocleis ovalis"])))
        .unwrap();
    let ntriples = arch.export_provenance_rdf(&trace.run_id).unwrap();
    println!(
        "--- provenance as Linked Data ({} triples) ---",
        ntriples.lines().count()
    );
    for line in ntriples.lines().take(8) {
        println!("{line}");
    }
    println!("…");

    // Workflow decay: healthy today, decayed once the service disappears.
    let health_2014 = arch.check_workflow_health("wf-ld", 2014, 5).unwrap();
    println!(
        "\nhealth in 2014 (service present): runnable={}, findings={}",
        health_2014.is_runnable(),
        health_2014.findings.len()
    );
    // Stale by 2025 — the 2013 annotation is long past its horizon.
    let health_2025 = arch.check_workflow_health("wf-ld", 2025, 5).unwrap();
    println!(
        "health in 2025 (stale annotations): runnable={}, findings:",
        health_2025.is_runnable()
    );
    for f in &health_2025.findings {
        println!("  - {f}");
    }
    assert!(health_2014.is_healthy());
    assert!(!health_2025.is_healthy());

    std::fs::remove_dir_all(&dir).ok();
}
