//! A curator's quality dashboard: custom dimensions, goals, provenance-
//! based ranking and decay forecasting — the End-User side of the
//! architecture.
//!
//! ```sh
//! cargo run --example quality_dashboard
//! ```

use std::collections::BTreeMap;

use preserva::opm::edge::Edge;
use preserva::opm::graph::OpmGraph;
use preserva::opm::model::{Artifact, Process};
use preserva::quality::aggregate::Combine;
use preserva::quality::decay;
use preserva::quality::dimension::Dimension;
use preserva::quality::goal::QualityGoal;
use preserva::quality::metric::{AssessmentContext, Metric};
use preserva::quality::model::QualityModel;
use preserva::quality::provenance_based;

fn main() {
    // --- An end user defines their own dimensions and metrics ---
    let model = QualityModel::new()
        .with_metric(Metric::from_ratio(
            "accuracy = correct / checked",
            Dimension::accuracy(),
            "names_correct",
            "names_checked",
        ))
        .with_metric(Metric::from_annotation(
            "source reputation",
            Dimension::reputation(),
            "reputation",
        ))
        .with_metric(Metric::new(
            "georeferencing coverage",
            Dimension::new("georeferencing"),
            |ctx| ctx.ratio("records_with_coordinates", "records_total"),
        ));

    let ctx = AssessmentContext::new()
        .with_fact("names_checked", 1929.0)
        .with_fact("names_correct", 1795.0)
        .with_fact("records_total", 11898.0)
        .with_fact("records_with_coordinates", 9860.0)
        .with_annotation("reputation", 1.0);
    let report = model.assess("fnjv-2013", &ctx);
    println!("--- assessment ---");
    print!("{}", report.render_text());

    // --- Goals: is this collection preservation-ready? ---
    let goal = QualityGoal::new("fnjv-preservation")
        .require(Dimension::accuracy(), 3.0, 0.9)
        .require(Dimension::reputation(), 1.0, 0.8)
        .require(Dimension::new("georeferencing"), 2.0, 0.7);
    let eval = goal.evaluate(&report);
    println!(
        "goal {:?}: overall {:.2}, satisfied: {}",
        eval.goal,
        eval.overall.unwrap_or(0.0),
        eval.satisfied()
    );

    // --- Provenance-based ranking of candidate datasets ---
    let mut g = OpmGraph::new();
    for (name, rep) in [
        ("col", "1.0"),
        ("legacy-cards", "0.55"),
        ("field-notes", "0.8"),
    ] {
        g.add_artifact(
            Artifact::new(format!("a:src-{name}"), name).with_annotation("Q(reputation)", rep),
        );
        g.add_process(Process::new(format!("p:{name}"), format!("ingest {name}")));
        g.add_artifact(Artifact::new(
            format!("a:ds-{name}"),
            format!("dataset via {name}"),
        ));
        g.add_edge(Edge::used(
            format!("p:{name}").as_str().into(),
            format!("a:src-{name}").as_str().into(),
            Some("in"),
        ))
        .unwrap();
        g.add_edge(Edge::was_generated_by(
            format!("a:ds-{name}").as_str().into(),
            format!("p:{name}").as_str().into(),
            Some("out"),
        ))
        .unwrap();
    }
    println!("\n--- provenance-based dataset ranking (reputation, min over lineage) ---");
    for (node, score) in
        provenance_based::rank_artifacts(&g, &Dimension::reputation(), Combine::Min)
    {
        println!("  {score:.2}  {node}");
    }

    // --- Decay forecast: when is re-curation due? ---
    println!("\n--- decay forecast ---");
    let churn = 0.0015; // ~0.15% of accepted names change per year
    let mut weights = BTreeMap::new();
    weights.insert(Dimension::accuracy(), 1.0);
    for years in [0, 10, 25, 48] {
        println!(
            "  after {years:>2} years: expected name accuracy {:.1}%",
            decay::expected_name_accuracy(years as f64, churn) * 100.0
        );
    }
    println!(
        "  re-curation due (93% threshold): every {:.0} years",
        decay::years_until_recuration(churn, 0.93).unwrap()
    );
}
