//! `preserva` — umbrella crate re-exporting the full public API of the
//! provenance-based (meta)data quality assessment system.
//!
//! See the crate-level docs of each subsystem:
//!
//! * [`storage`] — embedded durable repositories
//! * [`opm`] — Open Provenance Model v1.1
//! * [`wfms`] — scientific workflow management (Taverna substrate)
//! * [`metadata`] — observation metadata model and the FNJV schema
//! * [`taxonomy`] — versioned taxonomic backbone (Catalogue of Life substrate)
//! * [`gazetteer`] — georeferencing and spatial analysis
//! * [`curation`] — cleaning, enrichment and outdated-name detection
//! * [`quality`] — quality metamodel and provenance-based assessment
//! * [`search`] — journal-fed inverted index, n-gram fuzzy match, facets
//! * [`core`] — the paper's architecture (Fig. 1) wired end to end
//! * [`fnjv`] — synthetic FNJV animal sound collection generator

pub use preserva_core as core;
pub use preserva_curation as curation;
pub use preserva_fnjv as fnjv;
pub use preserva_gazetteer as gazetteer;
pub use preserva_metadata as metadata;
pub use preserva_obs as obs;
pub use preserva_opm as opm;
pub use preserva_quality as quality;
pub use preserva_search as search;
pub use preserva_storage as storage;
pub use preserva_taxonomy as taxonomy;
pub use preserva_wfms as wfms;
