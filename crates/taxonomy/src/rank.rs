//! Linnaean ranks used by the FNJV identification fields (Table II row 1).

use serde::{Deserialize, Serialize};

/// The taxonomic ranks recorded in the collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rank {
    /// Phylum.
    Phylum,
    /// Class.
    Class,
    /// Order.
    Order,
    /// Family.
    Family,
    /// Genus.
    Genus,
    /// Species.
    Species,
}

impl Rank {
    /// All ranks from broadest to narrowest.
    pub const ALL: [Rank; 6] = [
        Rank::Phylum,
        Rank::Class,
        Rank::Order,
        Rank::Family,
        Rank::Genus,
        Rank::Species,
    ];

    /// Lowercase field-style name (matches the FNJV schema field names).
    pub fn field_name(self) -> &'static str {
        match self {
            Rank::Phylum => "phylum",
            Rank::Class => "class",
            Rank::Order => "order",
            Rank::Family => "family",
            Rank::Genus => "genus",
            Rank::Species => "species",
        }
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.field_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_broad_to_narrow() {
        assert!(Rank::Phylum < Rank::Species);
        assert!(Rank::Genus < Rank::Species);
        assert_eq!(Rank::ALL.len(), 6);
    }

    #[test]
    fn field_names_match_schema() {
        assert_eq!(Rank::Species.field_name(), "species");
        assert_eq!(Rank::Phylum.to_string(), "phylum");
    }
}
