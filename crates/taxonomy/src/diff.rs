//! Edition-to-edition checklist diffs — *what changed* when the
//! backbone is upgraded.
//!
//! A [`ChecklistDiff`] lists every name whose [`NameStatus`] differs
//! between two editions. It is the unit the change journal carries when
//! a collection swaps to a newer Catalogue-of-Life release: instead of
//! re-checking all names against the new edition, downstream consumers
//! re-check only the names in the diff (the case study's ~7 % of
//! species, not 100 %).

use serde::{Deserialize, Serialize};

use crate::checklist::{Checklist, ChecklistEdition};
use crate::name::ScientificName;
use crate::status::NameStatus;

/// One name whose status differs between two editions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameStatusChange {
    /// The affected name (bare, no authorship).
    pub name: ScientificName,
    /// Status in the older edition.
    pub old: NameStatus,
    /// Status in the newer edition.
    pub new: NameStatus,
}

impl NameStatusChange {
    /// Whether the change retires a previously usable name (the case
    /// that invalidates stored identifications).
    pub fn retires_name(&self) -> bool {
        self.old.is_current() && !self.new.is_current()
    }
}

/// Every status difference between two checklist editions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChecklistDiff {
    /// Year of the older edition.
    pub from_year: i32,
    /// Year of the newer edition.
    pub to_year: i32,
    /// Names whose status changed, in name order.
    pub changes: Vec<NameStatusChange>,
}

impl ChecklistDiff {
    /// Whether the editions agree on every name.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changed names.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// The changed names alone, in name order.
    pub fn changed_names(&self) -> impl Iterator<Item = &ScientificName> {
        self.changes.iter().map(|c| &c.name)
    }
}

/// Diff two editions: every name either edition knows whose status
/// differs between them. Runs in one ordered merge over both status
/// maps (both are sorted by name).
pub fn diff_editions(old: &ChecklistEdition, new: &ChecklistEdition) -> ChecklistDiff {
    let mut changes = Vec::new();
    let mut old_it = old.statuses().peekable();
    let mut new_it = new.statuses().peekable();
    loop {
        match (old_it.peek(), new_it.peek()) {
            (Some((on, os)), Some((nn, ns))) => match on.cmp(nn) {
                std::cmp::Ordering::Less => {
                    changes.push(NameStatusChange {
                        name: (*on).clone(),
                        old: (*os).clone(),
                        new: NameStatus::Unknown,
                    });
                    old_it.next();
                }
                std::cmp::Ordering::Greater => {
                    changes.push(NameStatusChange {
                        name: (*nn).clone(),
                        old: NameStatus::Unknown,
                        new: (*ns).clone(),
                    });
                    new_it.next();
                }
                std::cmp::Ordering::Equal => {
                    if os != ns {
                        changes.push(NameStatusChange {
                            name: (*on).clone(),
                            old: (*os).clone(),
                            new: (*ns).clone(),
                        });
                    }
                    old_it.next();
                    new_it.next();
                }
            },
            (Some((on, os)), None) => {
                changes.push(NameStatusChange {
                    name: (*on).clone(),
                    old: (*os).clone(),
                    new: NameStatus::Unknown,
                });
                old_it.next();
            }
            (None, Some((nn, ns))) => {
                changes.push(NameStatusChange {
                    name: (*nn).clone(),
                    old: NameStatus::Unknown,
                    new: (*ns).clone(),
                });
                new_it.next();
            }
            (None, None) => break,
        }
    }
    ChecklistDiff {
        from_year: old.year,
        to_year: new.year,
        changes,
    }
}

impl Checklist {
    /// Diff the editions current at `from_year` and `to_year` (see
    /// [`Checklist::edition_at`]).
    pub fn diff(&self, from_year: i32, to_year: i32) -> ChecklistDiff {
        diff_editions(self.edition_at(from_year), self.edition_at(to_year))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{Backbone, Classification, Taxon};
    use crate::checklist::Evolution;

    fn n(s: &str) -> ScientificName {
        ScientificName::parse(s).unwrap()
    }

    fn checklist(names: &[&str]) -> Checklist {
        let mut b = Backbone::new();
        for s in names {
            b.insert(Taxon {
                name: n(s),
                classification: Classification::new("Chordata", "Amphibia", "Anura", "Hylidae"),
                common_name: None,
            });
        }
        Checklist::bootstrap(b, 1965)
    }

    #[test]
    fn identical_editions_diff_empty() {
        let mut c = checklist(&["Hyla faber", "Scinax ruber"]);
        c.release(2000, &[]).unwrap();
        let d = c.diff(1965, 2000);
        assert!(d.is_empty());
        assert_eq!(d.from_year, 1965);
        assert_eq!(d.to_year, 2000);
    }

    #[test]
    fn rename_shows_both_sides() {
        let mut c = checklist(&["Hyla alba", "Hyla quiet"]);
        c.release(
            2010,
            &[Evolution::Rename {
                old: n("Hyla alba"),
                new: n("Hyla beta"),
            }],
        )
        .unwrap();
        let d = c.diff(1965, 2010);
        assert_eq!(d.len(), 2, "old name retired + new name described");
        let retired = d
            .changes
            .iter()
            .find(|ch| ch.name == n("Hyla alba"))
            .unwrap();
        assert!(retired.retires_name());
        assert_eq!(
            retired.new,
            NameStatus::Synonym {
                accepted: n("Hyla beta")
            }
        );
        let described = d
            .changes
            .iter()
            .find(|ch| ch.name == n("Hyla beta"))
            .unwrap();
        assert_eq!(described.old, NameStatus::Unknown);
        assert!(described.new.is_current());
        assert!(!described.retires_name());
        // The untouched name does not appear.
        assert!(!d.changed_names().any(|name| *name == n("Hyla quiet")));
    }

    #[test]
    fn doubt_is_a_retirement() {
        let mut c = checklist(&["Elachistocleis ovalis", "Hyla faber"]);
        c.release(
            2013,
            &[Evolution::Doubt {
                name: n("Elachistocleis ovalis"),
            }],
        )
        .unwrap();
        let d = c.diff(1965, 2013);
        assert_eq!(d.len(), 1);
        assert!(d.changes[0].retires_name());
        assert_eq!(d.changes[0].new, NameStatus::NomenInquirendum);
    }

    #[test]
    fn diff_spans_multiple_releases() {
        let mut c = checklist(&["Hyla a", "Hyla b", "Hyla c"]);
        c.release(
            1990,
            &[Evolution::Synonymize {
                junior: n("Hyla b"),
                senior: n("Hyla a"),
            }],
        )
        .unwrap();
        c.release(2010, &[Evolution::Doubt { name: n("Hyla c") }])
            .unwrap();
        // Full span sees both changes; the later span only the doubt.
        assert_eq!(c.diff(1965, 2010).len(), 2);
        let late = c.diff(1990, 2010);
        assert_eq!(late.len(), 1);
        assert_eq!(late.changes[0].name, n("Hyla c"));
    }

    #[test]
    fn diff_roundtrips_through_json() {
        let mut c = checklist(&["Hyla a", "Hyla b"]);
        c.release(2010, &[Evolution::Doubt { name: n("Hyla a") }])
            .unwrap();
        let d = c.diff(1965, 2010);
        let json = serde_json::to_string(&d).unwrap();
        let back: ChecklistDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
