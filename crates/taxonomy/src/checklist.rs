//! Versioned checklist editions — how taxonomic knowledge evolves.
//!
//! A [`Checklist`] is an ordered sequence of [`ChecklistEdition`]s (e.g.
//! yearly Catalogue of Life releases). Each edition maps names to
//! [`NameStatus`]es. New editions start as copies of their predecessor and
//! then apply *evolution operations*: renames (old name becomes a synonym
//! of a new accepted name), synonymizations (two taxa merged) and
//! demotions to *nomen inquirendum*.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::backbone::{Backbone, Taxon};
use crate::name::ScientificName;
use crate::status::NameStatus;

/// One released edition of the checklist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChecklistEdition {
    /// Release year (editions are keyed and ordered by year).
    pub year: i32,
    statuses: BTreeMap<ScientificName, NameStatus>,
}

impl ChecklistEdition {
    /// Create an empty edition for `year`.
    pub fn new(year: i32) -> Self {
        ChecklistEdition {
            year,
            statuses: BTreeMap::new(),
        }
    }

    /// Set a name's status.
    pub fn set_status(&mut self, name: ScientificName, status: NameStatus) {
        self.statuses.insert(name.bare(), status);
    }

    /// The status of a name in this edition (`Unknown` when absent).
    pub fn status(&self, name: &ScientificName) -> NameStatus {
        self.statuses
            .get(&name.bare())
            .cloned()
            .unwrap_or(NameStatus::Unknown)
    }

    /// Resolve a name to its accepted name, following synonym chains.
    /// Returns `None` for unknown names and *nomina inquirenda* (no valid
    /// current name exists). Cycles are detected and treated as
    /// irresolvable (malformed edition).
    pub fn resolve_accepted(&self, name: &ScientificName) -> Option<ScientificName> {
        let mut current = name.bare();
        let mut hops = 0usize;
        loop {
            match self.status(&current) {
                NameStatus::Accepted => return Some(current),
                NameStatus::Synonym { accepted } => {
                    hops += 1;
                    if hops > self.statuses.len() {
                        return None; // cycle
                    }
                    current = accepted.bare();
                }
                NameStatus::NomenInquirendum | NameStatus::Unknown => return None,
            }
        }
    }

    /// Every name this edition knows with its status, in name order.
    pub fn statuses(&self) -> impl Iterator<Item = (&ScientificName, &NameStatus)> {
        self.statuses.iter()
    }

    /// All accepted names in this edition.
    pub fn accepted_names(&self) -> impl Iterator<Item = &ScientificName> {
        self.statuses
            .iter()
            .filter(|(_, s)| s.is_current())
            .map(|(n, _)| n)
    }

    /// Total names known to this edition (any status).
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// True when the edition knows no names.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }
}

/// Evolution operations applied when deriving a new edition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Evolution {
    /// `old` is renamed: it becomes a synonym of the (new) accepted `new`.
    Rename {
        /// Name being retired.
        old: ScientificName,
        /// The new accepted name.
        new: ScientificName,
    },
    /// `junior` is synonymized under the already-accepted `senior`.
    Synonymize {
        /// Name demoted to synonymy.
        junior: ScientificName,
        /// The accepted senior name it now points to.
        senior: ScientificName,
    },
    /// `name` is demoted to *nomen inquirendum*.
    Doubt {
        /// The name demoted to *nomen inquirendum*.
        name: ScientificName,
    },
    /// A newly described species enters the checklist.
    Describe {
        /// The newly described species' name.
        name: ScientificName,
    },
}

/// A backbone plus its sequence of editions.
///
/// # Example
///
/// ```
/// use preserva_taxonomy::backbone::{Backbone, Classification, Taxon};
/// use preserva_taxonomy::checklist::{Checklist, Evolution};
/// use preserva_taxonomy::name::ScientificName;
///
/// let mut b = Backbone::new();
/// b.insert(Taxon {
///     name: ScientificName::parse("Elachistocleis ovalis").unwrap(),
///     classification: Classification::new("Chordata", "Amphibia", "Anura", "Microhylidae"),
///     common_name: None,
/// });
/// let mut c = Checklist::bootstrap(b, 1965);
/// c.release(2010, &[Evolution::Rename {
///     old: ScientificName::parse("Elachistocleis ovalis").unwrap(),
///     new: ScientificName::parse("Nomen inquirenda").unwrap(),
/// }]).unwrap();
/// // The 1965-annotated name is outdated in the latest edition…
/// let old = ScientificName::parse("Elachistocleis ovalis").unwrap();
/// assert!(!c.latest().status(&old).is_current());
/// // …and resolves to its replacement.
/// assert_eq!(c.latest().resolve_accepted(&old).unwrap().to_string(), "Nomen inquirenda");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checklist {
    /// Shared taxa with their classifications.
    pub backbone: Backbone,
    editions: Vec<ChecklistEdition>,
}

/// Error applying an evolution operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvolutionError {
    /// The operation references a name the edition doesn't list as accepted.
    NotAccepted(String),
    /// A `Describe` collides with an existing name.
    AlreadyKnown(String),
    /// Editions must be created in strictly increasing year order.
    NonMonotonicYear {
        /// Year of the latest existing edition.
        last: i32,
        /// The (non-increasing) year requested.
        got: i32,
    },
}

impl std::fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvolutionError::NotAccepted(n) => write!(f, "{n} is not an accepted name"),
            EvolutionError::AlreadyKnown(n) => write!(f, "{n} already exists"),
            EvolutionError::NonMonotonicYear { last, got } => {
                write!(f, "edition year {got} not after {last}")
            }
        }
    }
}

impl std::error::Error for EvolutionError {}

impl Checklist {
    /// Start a checklist with a first edition in `year` where every
    /// backbone taxon is accepted.
    pub fn bootstrap(backbone: Backbone, year: i32) -> Self {
        let mut first = ChecklistEdition::new(year);
        for name in backbone.names() {
            first.set_status(name.clone(), NameStatus::Accepted);
        }
        Checklist {
            backbone,
            editions: vec![first],
        }
    }

    /// Derive a new edition from the latest one by applying `ops`.
    pub fn release(&mut self, year: i32, ops: &[Evolution]) -> Result<(), EvolutionError> {
        let last = self.latest();
        if year <= last.year {
            return Err(EvolutionError::NonMonotonicYear {
                last: last.year,
                got: year,
            });
        }
        let mut next = last.clone();
        next.year = year;
        for op in ops {
            match op {
                Evolution::Rename { old, new } => {
                    if !next.status(old).is_current() {
                        return Err(EvolutionError::NotAccepted(old.to_string()));
                    }
                    next.set_status(new.clone(), NameStatus::Accepted);
                    next.set_status(
                        old.clone(),
                        NameStatus::Synonym {
                            accepted: new.bare(),
                        },
                    );
                    // The new name inherits the old taxon's classification.
                    if let Some(t) = self.backbone.get(old) {
                        let mut t2: Taxon = t.clone();
                        t2.name = new.bare();
                        self.backbone.insert(t2);
                    }
                }
                Evolution::Synonymize { junior, senior } => {
                    if !next.status(junior).is_current() {
                        return Err(EvolutionError::NotAccepted(junior.to_string()));
                    }
                    if !next.status(senior).is_current() {
                        return Err(EvolutionError::NotAccepted(senior.to_string()));
                    }
                    next.set_status(
                        junior.clone(),
                        NameStatus::Synonym {
                            accepted: senior.bare(),
                        },
                    );
                }
                Evolution::Doubt { name } => {
                    if !next.status(name).is_current() {
                        return Err(EvolutionError::NotAccepted(name.to_string()));
                    }
                    next.set_status(name.clone(), NameStatus::NomenInquirendum);
                }
                Evolution::Describe { name } => {
                    if next.status(name) != NameStatus::Unknown {
                        return Err(EvolutionError::AlreadyKnown(name.to_string()));
                    }
                    next.set_status(name.clone(), NameStatus::Accepted);
                }
            }
        }
        self.editions.push(next);
        Ok(())
    }

    /// The newest edition.
    pub fn latest(&self) -> &ChecklistEdition {
        self.editions
            .last()
            .expect("bootstrap guarantees one edition")
    }

    /// The edition current at `year`: the newest edition with
    /// `edition.year <= year` (the first edition if `year` predates all).
    pub fn edition_at(&self, year: i32) -> &ChecklistEdition {
        self.editions
            .iter()
            .rev()
            .find(|e| e.year <= year)
            .unwrap_or(&self.editions[0])
    }

    /// All editions, oldest first.
    pub fn editions(&self) -> &[ChecklistEdition] {
        &self.editions
    }

    /// A copy of this checklist as it stood at `year`: editions released
    /// after `year` are dropped, so `latest()` (and services wrapping the
    /// copy) answer from the edition current at `year`. The backbone is
    /// kept whole — statuses come from editions, not the backbone. If
    /// `year` predates every release, the bootstrap edition is kept.
    pub fn as_of(&self, year: i32) -> Checklist {
        let mut editions: Vec<ChecklistEdition> = self
            .editions
            .iter()
            .filter(|e| e.year <= year)
            .cloned()
            .collect();
        if editions.is_empty() {
            editions.push(self.editions[0].clone());
        }
        Checklist {
            backbone: self.backbone.clone(),
            editions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::Classification;

    fn n(s: &str) -> ScientificName {
        ScientificName::parse(s).unwrap()
    }

    fn backbone(names: &[&str]) -> Backbone {
        let mut b = Backbone::new();
        for s in names {
            b.insert(Taxon {
                name: n(s),
                classification: Classification::new("Chordata", "Amphibia", "Anura", "Hylidae"),
                common_name: None,
            });
        }
        b
    }

    #[test]
    fn bootstrap_accepts_everything() {
        let c = Checklist::bootstrap(backbone(&["Hyla faber", "Scinax ruber"]), 1965);
        assert_eq!(c.latest().year, 1965);
        assert_eq!(c.latest().accepted_names().count(), 2);
        assert!(c.latest().status(&n("Hyla faber")).is_current());
        assert_eq!(c.latest().status(&n("Absent species")), NameStatus::Unknown);
    }

    #[test]
    fn rename_makes_old_a_synonym() {
        let mut c = Checklist::bootstrap(backbone(&["Elachistocleis ovalis"]), 1965);
        c.release(
            2010,
            &[Evolution::Rename {
                old: n("Elachistocleis ovalis"),
                new: n("Nomen inquirenda"),
            }],
        )
        .unwrap();
        let ed = c.latest();
        assert_eq!(
            ed.resolve_accepted(&n("Elachistocleis ovalis")),
            Some(n("Nomen inquirenda"))
        );
        assert!(ed.status(&n("Nomen inquirenda")).is_current());
        // The earlier edition still considers the old name accepted.
        assert!(c
            .edition_at(1990)
            .status(&n("Elachistocleis ovalis"))
            .is_current());
    }

    #[test]
    fn chained_renames_resolve_transitively() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla alba"]), 1965);
        c.release(
            1980,
            &[Evolution::Rename {
                old: n("Hyla alba"),
                new: n("Hyla beta"),
            }],
        )
        .unwrap();
        c.release(
            2000,
            &[Evolution::Rename {
                old: n("Hyla beta"),
                new: n("Hyla gamma"),
            }],
        )
        .unwrap();
        assert_eq!(
            c.latest().resolve_accepted(&n("Hyla alba")),
            Some(n("Hyla gamma"))
        );
    }

    #[test]
    fn doubt_leaves_no_replacement() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla dubia"]), 1965);
        c.release(
            2013,
            &[Evolution::Doubt {
                name: n("Hyla dubia"),
            }],
        )
        .unwrap();
        assert_eq!(c.latest().resolve_accepted(&n("Hyla dubia")), None);
        assert_eq!(
            c.latest().status(&n("Hyla dubia")),
            NameStatus::NomenInquirendum
        );
    }

    #[test]
    fn describe_adds_new_species() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla faber"]), 1965);
        c.release(
            2013,
            &[Evolution::Describe {
                name: n("Hyla nova"),
            }],
        )
        .unwrap();
        assert!(c.latest().status(&n("Hyla nova")).is_current());
        assert_eq!(
            c.edition_at(1965).status(&n("Hyla nova")),
            NameStatus::Unknown
        );
    }

    #[test]
    fn invalid_operations_rejected() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla faber"]), 1965);
        assert!(matches!(
            c.release(
                2000,
                &[Evolution::Rename {
                    old: n("Hyla ghost"),
                    new: n("Hyla x")
                }]
            ),
            Err(EvolutionError::NotAccepted(_))
        ));
        assert!(matches!(
            c.release(
                2000,
                &[Evolution::Describe {
                    name: n("Hyla faber")
                }]
            ),
            Err(EvolutionError::AlreadyKnown(_))
        ));
        c.release(2000, &[]).unwrap();
        assert!(matches!(
            c.release(1999, &[]),
            Err(EvolutionError::NonMonotonicYear { .. })
        ));
    }

    #[test]
    fn edition_at_picks_correct_release() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla faber"]), 1965);
        c.release(1990, &[]).unwrap();
        c.release(2010, &[]).unwrap();
        assert_eq!(c.edition_at(1964).year, 1965); // clamp to first
        assert_eq!(c.edition_at(1989).year, 1965);
        assert_eq!(c.edition_at(1990).year, 1990);
        assert_eq!(c.edition_at(2013).year, 2010);
    }

    #[test]
    fn synonymize_merges_taxa() {
        let mut c = Checklist::bootstrap(backbone(&["Hyla a", "Hyla b"]), 1965);
        c.release(
            2005,
            &[Evolution::Synonymize {
                junior: n("Hyla b"),
                senior: n("Hyla a"),
            }],
        )
        .unwrap();
        assert_eq!(c.latest().resolve_accepted(&n("Hyla b")), Some(n("Hyla a")));
        assert_eq!(c.latest().accepted_names().count(), 1);
    }
}
