//! Fuzzy name matching for misspelled metadata.
//!
//! Legacy records contain typos introduced at annotation or digitization
//! time. [`damerau_levenshtein`] (optimal string alignment variant —
//! insertions, deletions, substitutions and adjacent transpositions)
//! powers [`best_match`], which suggests the closest checklist name within
//! a distance budget.

/// Optimal-string-alignment Damerau–Levenshtein distance.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: two-back, previous, current.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// A fuzzy-match hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match<'a> {
    /// The candidate that matched.
    pub candidate: &'a str,
    /// Its edit distance from the query.
    pub distance: usize,
}

/// Find the closest candidate within `max_distance`. Case-insensitive.
///
/// Distance ties are broken on the candidates' *lowercased* forms, so the
/// winner does not depend on how a checklist happens to capitalize its
/// entries — matching and tie-breaking use the same alphabet. (A raw byte
/// compare here would rank every uppercase letter before every lowercase
/// one: `"Bufo"` would beat `"atra"`.) Candidates equal under lowercasing
/// fall back to a raw compare so the result is still total and
/// deterministic.
pub fn best_match<'a, I>(query: &str, candidates: I, max_distance: usize) -> Option<Match<'a>>
where
    I: IntoIterator<Item = &'a str>,
{
    let q = query.to_lowercase();
    let mut best: Option<(Match<'a>, String)> = None;
    for cand in candidates {
        // Cheap length screen: |len difference| already bounds distance.
        let len_gap = cand.chars().count().abs_diff(q.chars().count());
        if len_gap > max_distance {
            continue;
        }
        let folded = cand.to_lowercase();
        let d = damerau_levenshtein(&q, &folded);
        if d > max_distance {
            continue;
        }
        let better = match &best {
            None => true,
            Some((m, best_folded)) => {
                d < m.distance
                    || (d == m.distance
                        && (folded.as_str(), cand) < (best_folded.as_str(), m.candidate))
            }
        };
        if better {
            best = Some((
                Match {
                    candidate: cand,
                    distance: d,
                },
                folded,
            ));
        }
    }
    best.map(|(m, _)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("hyla", "hyla"), 0);
        assert_eq!(damerau_levenshtein("hyla", "hylo"), 1); // substitution
        assert_eq!(damerau_levenshtein("hyla", "hyl"), 1); // deletion
        assert_eq!(damerau_levenshtein("hyla", "hylla"), 1); // insertion
        assert_eq!(damerau_levenshtein("hyla", "hlya"), 1); // transposition
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs = [("faber", "fabre"), ("scinax", "scniax"), ("a", "xyz")];
        for (a, b) in pairs {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn transposition_counts_once() {
        // Plain Levenshtein would give 2 here.
        assert_eq!(damerau_levenshtein("elachistocleis", "elachsitocleis"), 1);
    }

    #[test]
    fn best_match_prefers_smallest_distance() {
        let cands = ["Hyla faber", "Hyla albopunctata", "Scinax ruber"];
        let m = best_match("hyla fabre", cands.iter().copied(), 2).unwrap();
        assert_eq!(m.candidate, "Hyla faber");
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn best_match_respects_budget() {
        let cands = ["Hyla faber"];
        assert!(best_match("completely different", cands.iter().copied(), 2).is_none());
    }

    #[test]
    fn best_match_breaks_ties_deterministically() {
        let cands = ["Hyla fabex", "Hyla fabez"];
        let m = best_match("Hyla faber", cands.iter().copied(), 2).unwrap();
        assert_eq!(m.candidate, "Hyla fabex"); // lexicographically first
    }

    /// Regression: ties used to be broken by a raw byte compare on the
    /// original casing while distances were computed case-insensitively,
    /// so `"Bufo"` (B = 0x42) beat `"atra"` (a = 0x61) purely because of
    /// its capital letter.
    #[test]
    fn tie_break_ignores_candidate_casing() {
        // Both candidates are distance 4 from the query.
        let q = "zzzz";
        assert_eq!(damerau_levenshtein(q, "atra"), 4);
        assert_eq!(damerau_levenshtein(q, "bufo"), 4);
        let m = best_match(q, ["Bufo", "atra"], 4).unwrap();
        assert_eq!(m.candidate, "atra", "lowercase-alphabet order must win");
        // The winner is the same whichever candidate carries the capital.
        let m = best_match(q, ["bufo", "Atra"], 4).unwrap();
        assert_eq!(m.candidate, "Atra");
        // And candidate order doesn't matter either.
        let m = best_match(q, ["atra", "Bufo"], 4).unwrap();
        assert_eq!(m.candidate, "atra");
    }

    /// Candidates equal under lowercasing still order deterministically.
    #[test]
    fn casing_duplicates_pick_a_stable_winner() {
        let a = best_match("hyla", ["HYLA", "hyla"], 0).unwrap();
        let b = best_match("hyla", ["hyla", "HYLA"], 0).unwrap();
        assert_eq!(a.candidate, b.candidate);
        assert_eq!(a.candidate, "HYLA"); // raw fallback: 'H' < 'h'
    }

    #[test]
    fn exact_match_is_distance_zero() {
        let cands = ["Hyla faber"];
        let m = best_match("HYLA FABER", cands.iter().copied(), 2).unwrap();
        assert_eq!(m.distance, 0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(damerau_levenshtein("café", "cafe"), 1);
    }
}
