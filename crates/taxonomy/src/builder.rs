//! Deterministic synthetic Neotropical backbones and evolving checklists.
//!
//! The FNJV collection covers "all vertebrate groups (fishes, amphibians,
//! reptiles, birds and mammals) and some groups of invertebrates (as
//! insects and arachnids)". The builder generates realistic binomials from
//! per-group genus pools and a shared epithet pool, then evolves a
//! checklist by renaming/doubting a caller-chosen number of names per
//! release — the knob the case-study generator uses to plant exactly the
//! paper's 134 outdated names.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::backbone::{Backbone, Classification, Taxon};
use crate::checklist::{Checklist, Evolution};
use crate::name::ScientificName;

/// One taxonomic group with its genus pool and fixed higher classification.
struct GroupPool {
    classification: Classification,
    genera: &'static [&'static str],
}

fn group_pools() -> Vec<GroupPool> {
    vec![
        GroupPool {
            classification: Classification::new("Chordata", "Amphibia", "Anura", "Hylidae"),
            genera: &[
                "Hyla",
                "Scinax",
                "Dendropsophus",
                "Bokermannohyla",
                "Aplastodiscus",
                "Boana",
                "Phyllomedusa",
                "Itapotihyla",
                "Trachycephalus",
                "Pseudis",
            ],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Amphibia", "Anura", "Leptodactylidae"),
            genera: &[
                "Leptodactylus",
                "Physalaemus",
                "Adenomera",
                "Pseudopaludicola",
                "Crossodactylus",
                "Paratelmatobius",
            ],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Amphibia", "Anura", "Microhylidae"),
            genera: &[
                "Elachistocleis",
                "Chiasmocleis",
                "Dermatonotus",
                "Myersiella",
            ],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Aves", "Passeriformes", "Thraupidae"),
            genera: &[
                "Tangara",
                "Thraupis",
                "Sporophila",
                "Sicalis",
                "Dacnis",
                "Tersina",
                "Ramphocelus",
                "Conirostrum",
            ],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Aves", "Passeriformes", "Furnariidae"),
            genera: &[
                "Furnarius",
                "Synallaxis",
                "Automolus",
                "Xenops",
                "Phacellodomus",
                "Cranioleuca",
                "Anumbius",
            ],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Aves", "Passeriformes", "Tyrannidae"),
            genera: &[
                "Pitangus",
                "Tyrannus",
                "Elaenia",
                "Myiarchus",
                "Camptostoma",
                "Todirostrum",
                "Serpophaga",
            ],
        },
        GroupPool {
            classification: Classification::new(
                "Chordata",
                "Mammalia",
                "Primates",
                "Callitrichidae",
            ),
            genera: &["Callithrix", "Leontopithecus", "Mico"],
        },
        GroupPool {
            classification: Classification::new(
                "Chordata",
                "Mammalia",
                "Chiroptera",
                "Phyllostomidae",
            ),
            genera: &["Artibeus", "Carollia", "Sturnira", "Glossophaga"],
        },
        GroupPool {
            classification: Classification::new("Chordata", "Reptilia", "Squamata", "Gekkonidae"),
            genera: &["Hemidactylus", "Gymnodactylus", "Phyllopezus"],
        },
        GroupPool {
            classification: Classification::new(
                "Chordata",
                "Actinopterygii",
                "Siluriformes",
                "Pimelodidae",
            ),
            genera: &["Pimelodus", "Pseudoplatystoma", "Rhamdia"],
        },
        GroupPool {
            classification: Classification::new("Arthropoda", "Insecta", "Orthoptera", "Gryllidae"),
            genera: &["Gryllus", "Oecanthus", "Anurogryllus", "Eneoptera"],
        },
        GroupPool {
            classification: Classification::new("Arthropoda", "Insecta", "Hemiptera", "Cicadidae"),
            genera: &["Quesada", "Fidicina", "Dorisiana", "Carineta"],
        },
    ]
}

const EPITHETS: &[&str] = &[
    "ovalis",
    "faber",
    "fuscomarginatus",
    "cruciger",
    "albifrons",
    "bilineata",
    "marginatus",
    "punctatus",
    "viridis",
    "nigricans",
    "aurantiacus",
    "minor",
    "major",
    "gracilis",
    "robustus",
    "elegans",
    "similis",
    "dubius",
    "montanus",
    "campestris",
    "fluminensis",
    "paulensis",
    "brasiliensis",
    "neotropicalis",
    "sylvaticus",
    "riparius",
    "lacustris",
    "pratensis",
    "nocturnus",
    "diurnus",
    "vocalis",
    "sonorus",
    "melodicus",
    "stridulans",
    "crepitans",
    "clamitans",
    "flavescens",
    "rubescens",
    "cinereus",
    "fuscus",
    "pallidus",
    "obscurus",
    "ornatus",
    "pictus",
    "lineatus",
    "striatus",
    "maculatus",
    "guttatus",
    "parvulus",
    "grandis",
    "longipes",
    "brevirostris",
    "latifrons",
    "angustus",
    "septentrionalis",
    "meridionalis",
    "orientalis",
    "occidentalis",
    "australis",
    "borealis",
    "vulgaris",
    "rarus",
    "insularis",
    "continentalis",
    "altus",
    "humilis",
    "velox",
    "tardus",
    "ferus",
    "domesticus",
    "agrestis",
    "nemoralis",
    "palustris",
    "arboreus",
    "terrestris",
    "aquaticus",
    "saxicola",
    "arenicola",
];

/// Generate a backbone of exactly `n_species` distinct binomials,
/// deterministically from `seed`. Panics if `n_species` exceeds the
/// genus × epithet pool (currently > 4,500 combinations).
pub fn build_backbone(n_species: usize, seed: u64) -> Backbone {
    let pools = group_pools();
    let mut combos: Vec<(usize, &'static str, &'static str)> = Vec::new();
    for (gi, pool) in pools.iter().enumerate() {
        for genus in pool.genera {
            for epithet in EPITHETS {
                combos.push((gi, genus, epithet));
            }
        }
    }
    assert!(
        n_species <= combos.len(),
        "requested {n_species} species but pool holds only {}",
        combos.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    combos.shuffle(&mut rng);
    let mut backbone = Backbone::new();
    for (gi, genus, epithet) in combos.into_iter().take(n_species) {
        backbone.insert(Taxon {
            name: ScientificName::new(genus, epithet).expect("pool entries are valid"),
            classification: pools[gi].classification.clone(),
            common_name: None,
        });
    }
    assert_eq!(
        backbone.len(),
        n_species,
        "combos are distinct by construction"
    );
    backbone
}

/// Plan for one checklist release.
#[derive(Debug, Clone, Copy)]
pub struct ReleasePlan {
    /// Release year of this edition.
    pub year: i32,
    /// Accepted names to rename into fresh binomials.
    pub renames: usize,
    /// Accepted names to demote to *nomen inquirendum*.
    pub doubts: usize,
}

/// Build an evolving checklist: bootstrap at `start_year`, then apply each
/// release plan, renaming/doubting names chosen deterministically.
/// Optionally restrict churn to `eligible` names (so a caller can plant
/// outdated names only among the species a collection actually uses).
pub fn build_checklist(
    backbone: Backbone,
    start_year: i32,
    plans: &[ReleasePlan],
    eligible: Option<&[ScientificName]>,
    seed: u64,
) -> Checklist {
    let mut checklist = Checklist::bootstrap(backbone, start_year);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    // Names introduced as rename targets. Excluded from later churn so
    // every rename/doubt lands on an original backbone name — that keeps
    // the planted outdated count exactly Σ(renames + doubts) for any
    // seed, which the case-study generator relies on.
    let mut introduced: std::collections::HashSet<String> = std::collections::HashSet::new();
    for plan in plans {
        let accepted: Vec<ScientificName> = match eligible {
            Some(white) => {
                let ed = checklist.latest();
                white
                    .iter()
                    .filter(|n| ed.status(n).is_current())
                    .map(|n| n.bare())
                    .collect()
            }
            None => checklist.latest().accepted_names().cloned().collect(),
        };
        let mut pool: Vec<ScientificName> = accepted
            .into_iter()
            .filter(|n| !introduced.contains(&n.to_string()))
            .collect();
        pool.shuffle(&mut rng);
        let mut ops = Vec::new();
        for (taken, name) in pool.iter().take(plan.renames).enumerate() {
            // Renamed species get a fresh alphabetic epithet suffix
            // (base-26 letters so the binomial stays a valid name).
            let mut suffix = String::new();
            let mut k = taken;
            loop {
                suffix.push((b'a' + (k % 26) as u8) as char);
                k /= 26;
                if k == 0 {
                    break;
                }
            }
            let new_epithet = format!("{}novus{suffix}", name.epithet().replace('-', ""));
            let new = ScientificName::new(name.genus(), &new_epithet)
                .expect("constructed epithet is alphabetic");
            introduced.insert(new.to_string());
            ops.push(Evolution::Rename {
                old: name.clone(),
                new,
            });
        }
        for name in pool.iter().skip(plan.renames).take(plan.doubts) {
            ops.push(Evolution::Doubt { name: name.clone() });
        }
        let _ = rng.gen::<u64>(); // advance stream per release for stability
        checklist
            .release(plan.year, &ops)
            .expect("generated operations are valid");
    }
    checklist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::NameStatus;

    #[test]
    fn backbone_has_requested_species() {
        let b = build_backbone(1929, 42);
        assert_eq!(b.len(), 1929);
    }

    #[test]
    fn backbone_is_deterministic() {
        let a = build_backbone(100, 7);
        let b = build_backbone(100, 7);
        let na: Vec<String> = a.names().map(|n| n.to_string()).collect();
        let nb: Vec<String> = b.names().map(|n| n.to_string()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_backbone(100, 1);
        let b = build_backbone(100, 2);
        let na: Vec<String> = a.names().map(|n| n.to_string()).collect();
        let nb: Vec<String> = b.names().map(|n| n.to_string()).collect();
        assert_ne!(na, nb);
    }

    #[test]
    #[should_panic(expected = "pool holds only")]
    fn oversized_request_panics() {
        build_backbone(1_000_000, 0);
    }

    #[test]
    fn checklist_churn_produces_exact_outdated_count() {
        let b = build_backbone(500, 42);
        let names: Vec<ScientificName> = b.names().cloned().collect();
        let c = build_checklist(
            b,
            1965,
            &[
                ReleasePlan {
                    year: 1990,
                    renames: 20,
                    doubts: 5,
                },
                ReleasePlan {
                    year: 2013,
                    renames: 10,
                    doubts: 2,
                },
            ],
            None,
            42,
        );
        let ed = c.latest();
        let outdated = names.iter().filter(|n| !ed.status(n).is_current()).count();
        assert_eq!(outdated, 37);
        let renamed = names
            .iter()
            .filter(|n| matches!(ed.status(n), NameStatus::Synonym { .. }))
            .count();
        assert_eq!(renamed, 30);
    }

    #[test]
    fn eligible_restriction_limits_churn() {
        let b = build_backbone(200, 9);
        let all: Vec<ScientificName> = b.names().cloned().collect();
        let eligible: Vec<ScientificName> = all.iter().take(50).cloned().collect();
        let c = build_checklist(
            b,
            1965,
            &[ReleasePlan {
                year: 2013,
                renames: 30,
                doubts: 0,
            }],
            Some(&eligible),
            9,
        );
        let ed = c.latest();
        for n in all.iter().skip(50) {
            assert!(ed.status(n).is_current(), "non-eligible {n} was churned");
        }
        let churned = eligible
            .iter()
            .filter(|n| !ed.status(n).is_current())
            .count();
        assert_eq!(churned, 30);
    }

    #[test]
    fn renamed_names_resolve_to_accepted() {
        let b = build_backbone(50, 3);
        let names: Vec<ScientificName> = b.names().cloned().collect();
        let c = build_checklist(
            b,
            1965,
            &[ReleasePlan {
                year: 2013,
                renames: 10,
                doubts: 0,
            }],
            None,
            3,
        );
        let ed = c.latest();
        for n in &names {
            if let NameStatus::Synonym { .. } = ed.status(n) {
                let acc = ed.resolve_accepted(n).expect("renames resolve");
                assert!(ed.status(&acc).is_current());
            }
        }
    }
}
