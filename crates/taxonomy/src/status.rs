//! Nomenclatural status of a name within one checklist edition.

use serde::{Deserialize, Serialize};

use crate::name::ScientificName;

/// The status a checklist edition assigns to a scientific name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameStatus {
    /// The current valid name of a taxon.
    Accepted,
    /// A junior synonym: the taxon's accepted name is `accepted`.
    Synonym {
        /// The taxon's current accepted name.
        accepted: ScientificName,
    },
    /// "Name of doubtful application" — under investigation, not usable as
    /// an accepted identification (the fate of *Elachistocleis ovalis*).
    NomenInquirendum,
    /// The name is not known to this edition at all.
    Unknown,
}

impl NameStatus {
    /// Whether a record annotated with this name is up to date.
    pub fn is_current(&self) -> bool {
        matches!(self, NameStatus::Accepted)
    }

    /// The replacement name to suggest, if any.
    pub fn replacement(&self) -> Option<&ScientificName> {
        match self {
            NameStatus::Synonym { accepted } => Some(accepted),
            _ => None,
        }
    }
}

impl std::fmt::Display for NameStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameStatus::Accepted => f.write_str("accepted"),
            NameStatus::Synonym { accepted } => write!(f, "synonym of {accepted}"),
            NameStatus::NomenInquirendum => f.write_str("nomen inquirendum"),
            NameStatus::Unknown => f.write_str("unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currency_and_replacement() {
        assert!(NameStatus::Accepted.is_current());
        assert!(!NameStatus::NomenInquirendum.is_current());
        assert!(!NameStatus::Unknown.is_current());
        let syn = NameStatus::Synonym {
            accepted: ScientificName::parse("Nomen inquirenda").unwrap(),
        };
        assert!(!syn.is_current());
        assert_eq!(syn.replacement().unwrap().to_string(), "Nomen inquirenda");
        assert_eq!(NameStatus::Accepted.replacement(), None);
    }

    #[test]
    fn display() {
        assert_eq!(
            NameStatus::NomenInquirendum.to_string(),
            "nomen inquirendum"
        );
    }
}
