#![warn(missing_docs)]

//! `preserva-taxonomy` — a taxonomic backbone with *versioned checklist
//! editions*, standing in for the Catalogue of Life web service the
//! paper's Outdated Species Name Detection Workflow queries.
//!
//! The substrate models the exact phenomenon the case study depends on:
//! *knowledge about the world evolves*. A [`checklist::Checklist`] is a
//! sequence of editions; between editions, species can be renamed,
//! synonymized, or demoted to *nomen inquirendum* (as happened to
//! `Elachistocleis ovalis` in the paper). A name that was accepted in the
//! edition current when a recording was annotated may, in a later edition,
//! resolve to a different accepted name — that is an "outdated species
//! name".
//!
//! * [`name`] — scientific-name parsing and canonical formatting
//! * [`rank`], [`status`] — Linnaean ranks and nomenclatural statuses
//! * [`backbone`] — taxa with full higher classification
//! * [`checklist`] — editions and the evolution operations between them
//! * [`fuzzy`] — Damerau–Levenshtein matching for misspelled names
//! * [`ngram`] — character-n-gram candidate pruning for [`fuzzy`]
//! * [`service`] — the `ColService` façade with simulated availability
//!   (the paper annotates the real service `Q(availability): 0.9`)
//! * [`builder`] — deterministic synthetic Neotropical backbones

pub mod backbone;
pub mod builder;
pub mod checklist;
pub mod diff;
pub mod fuzzy;
pub mod name;
pub mod ngram;
pub mod rank;
pub mod service;
pub mod status;

pub use checklist::{Checklist, ChecklistEdition};
pub use diff::{ChecklistDiff, NameStatusChange};
pub use name::ScientificName;
pub use ngram::NGramIndex;
pub use service::{ColService, LookupOutcome, ServiceConfig};
pub use status::NameStatus;
