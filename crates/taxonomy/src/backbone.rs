//! Taxa with their full higher classification.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::name::ScientificName;

/// Higher classification of a species: phylum through family (the genus is
/// part of the binomial itself).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// Phylum name.
    pub phylum: String,
    /// Class name.
    pub class: String,
    /// Order name.
    pub order: String,
    /// Family name.
    pub family: String,
}

impl Classification {
    /// Construct a classification.
    pub fn new(phylum: &str, class: &str, order: &str, family: &str) -> Self {
        Classification {
            phylum: phylum.to_string(),
            class: class.to_string(),
            order: order.to_string(),
            family: family.to_string(),
        }
    }
}

/// One taxon in the backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Taxon {
    /// Canonical binomial.
    pub name: ScientificName,
    /// Higher classification (phylum → family).
    pub classification: Classification,
    /// English vernacular, when one exists.
    pub common_name: Option<String>,
}

/// The set of taxa shared by all checklist editions. Editions assign
/// *statuses* to names; the backbone stores the names' classifications.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Backbone {
    taxa: BTreeMap<ScientificName, Taxon>,
}

impl Backbone {
    /// Create an empty backbone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a taxon (keyed by bare binomial).
    pub fn insert(&mut self, taxon: Taxon) {
        self.taxa.insert(taxon.name.bare(), taxon);
    }

    /// Look up a taxon by (bare) name.
    pub fn get(&self, name: &ScientificName) -> Option<&Taxon> {
        self.taxa.get(&name.bare())
    }

    /// All taxa in name order.
    pub fn taxa(&self) -> impl Iterator<Item = &Taxon> {
        self.taxa.values()
    }

    /// All names in order.
    pub fn names(&self) -> impl Iterator<Item = &ScientificName> {
        self.taxa.keys()
    }

    /// Number of taxa.
    pub fn len(&self) -> usize {
        self.taxa.len()
    }

    /// True when no taxon is registered.
    pub fn is_empty(&self) -> bool {
        self.taxa.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frog(name: &str) -> Taxon {
        Taxon {
            name: ScientificName::parse(name).unwrap(),
            classification: Classification::new("Chordata", "Amphibia", "Anura", "Hylidae"),
            common_name: None,
        }
    }

    #[test]
    fn insert_and_get_by_bare_name() {
        let mut b = Backbone::new();
        b.insert(frog("Hyla faber Wied-Neuwied, 1821"));
        let with_auth = ScientificName::parse("Hyla faber (someone) ").unwrap();
        // Any authorship variant resolves to the same taxon.
        assert!(b.get(&with_auth).is_some());
        let bare = ScientificName::parse("hyla faber").unwrap();
        assert!(b.get(&bare).is_some());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut b = Backbone::new();
        b.insert(frog("Scinax fuscomarginatus"));
        b.insert(frog("Ameerega flavopicta"));
        let names: Vec<String> = b.names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["Ameerega flavopicta", "Scinax fuscomarginatus"]);
    }
}
