//! The Catalogue-of-Life service façade.
//!
//! The paper's workflow queries the real Catalogue of Life web service,
//! annotated by experts with `Q(reputation): 1` and `Q(availability): 0.9`
//! "since there are several connection problems" (Listing 1). This façade
//! reproduces those connection problems: each request fails with
//! probability `1 − availability`, drawn from a deterministic seeded RNG,
//! so availability-sensitive behaviour (retries, the availability quality
//! dimension) is exercised for real and reproducibly.

use std::sync::{Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::backbone::Classification;
use crate::checklist::Checklist;
use crate::name::ScientificName;
use crate::ngram::NGramIndex;
use crate::status::NameStatus;

/// Service tuning: quality annotations + failure simulation.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Probability a request succeeds (paper: 0.9).
    pub availability: f64,
    /// Expert-assigned source reputation in [0, 1] (paper: 1.0).
    pub reputation: f64,
    /// Simulated per-request latency in milliseconds (virtual; recorded in
    /// stats, never slept).
    pub latency_ms: u64,
    /// RNG seed for the failure process.
    pub seed: u64,
    /// Maximum fuzzy-match distance when exact lookup misses
    /// (0 disables fuzzy matching).
    pub fuzzy_distance: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            availability: 0.9,
            reputation: 1.0,
            latency_ms: 120,
            seed: 0xC01,
            fuzzy_distance: 2,
        }
    }
}

/// Outcome of a successful lookup request.
#[derive(Debug, Clone, PartialEq)]
pub enum LookupOutcome {
    /// The queried name is the current accepted name.
    Current {
        /// Higher classification, when the backbone covers the taxon.
        classification: Option<Classification>,
    },
    /// The queried name is outdated; the checklist supplies the up-to-date
    /// accepted name (the paper's Figure 2 content).
    Outdated {
        /// The current accepted name to adopt.
        accepted: ScientificName,
        /// Higher classification of the accepted taxon.
        classification: Option<Classification>,
    },
    /// The name exists but has no valid replacement (nomen inquirendum).
    Doubtful,
    /// Exact lookup missed but a close spelling exists.
    Misspelled {
        /// The closest known name.
        suggestion: ScientificName,
        /// Its edit distance from the query.
        distance: usize,
    },
    /// The service does not know the name at all.
    NotFound,
}

/// Transport-level failure (the simulated "connection problem").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceUnavailable {
    /// Which attempt failed (1-based).
    pub attempt: u32,
}

impl std::fmt::Display for ServiceUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Catalogue of Life unavailable (attempt {})",
            self.attempt
        )
    }
}

impl std::error::Error for ServiceUnavailable {}

/// Request counters, exposed so the quality layer can *measure*
/// availability instead of trusting the annotation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServiceStats {
    /// Total requests received.
    pub requests: u64,
    /// Requests that failed with a connection problem.
    pub failures: u64,
    /// Retries performed by `lookup_with_retries`.
    pub retries: u64,
    /// Total virtual latency accumulated (ms).
    pub virtual_latency_ms: u64,
}

impl ServiceStats {
    /// Observed availability: successes / requests (1.0 before any request).
    pub fn observed_availability(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            (self.requests - self.failures) as f64 / self.requests as f64
        }
    }
}

/// The service façade over a [`Checklist`].
///
/// # Example
///
/// ```
/// use preserva_taxonomy::builder::build_backbone;
/// use preserva_taxonomy::checklist::Checklist;
/// use preserva_taxonomy::name::ScientificName;
/// use preserva_taxonomy::service::{ColService, LookupOutcome, ServiceConfig};
///
/// let backbone = build_backbone(50, 42);
/// let name = backbone.names().next().unwrap().clone();
/// let service = ColService::new(
///     Checklist::bootstrap(backbone, 1965),
///     ServiceConfig { availability: 1.0, ..ServiceConfig::default() },
/// );
/// assert!(matches!(
///     service.lookup(&name).unwrap(),
///     LookupOutcome::Current { .. }
/// ));
/// ```
#[derive(Debug)]
pub struct ColService {
    checklist: Checklist,
    config: ServiceConfig,
    rng: Mutex<StdRng>,
    stats: Mutex<ServiceStats>,
    /// N-gram index over backbone names, built on first fuzzy miss. The
    /// backbone is frozen once wrapped, so one build serves the service's
    /// whole lifetime.
    fuzzy_index: OnceLock<NGramIndex>,
}

impl ColService {
    /// Wrap a checklist with the given configuration.
    pub fn new(checklist: Checklist, config: ServiceConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ColService {
            checklist,
            config,
            rng: Mutex::new(rng),
            stats: Mutex::new(ServiceStats::default()),
            fuzzy_index: OnceLock::new(),
        }
    }

    /// The n-gram index over backbone canonical names, built lazily.
    /// Candidate pruning is exact (see [`crate::ngram`]): answers are
    /// byte-for-byte what the linear `fuzzy::best_match` scan returns.
    pub fn fuzzy_index(&self) -> &NGramIndex {
        self.fuzzy_index.get_or_init(|| {
            NGramIndex::build(self.checklist.backbone.names().map(|n| n.canonical()))
        })
    }

    /// The service's expert-annotated reputation.
    pub fn reputation(&self) -> f64 {
        self.config.reputation
    }

    /// The service's expert-annotated availability.
    pub fn configured_availability(&self) -> f64 {
        self.config.availability
    }

    /// Request counters so far.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock().expect("stats lock")
    }

    /// The wrapped checklist (read-only).
    pub fn checklist(&self) -> &Checklist {
        &self.checklist
    }

    fn simulate_transport(&self) -> bool {
        let mut stats = self.stats.lock().expect("stats lock");
        stats.requests += 1;
        stats.virtual_latency_ms += self.config.latency_ms;
        let ok = self.rng.lock().expect("rng lock").gen::<f64>() < self.config.availability;
        if !ok {
            stats.failures += 1;
        }
        ok
    }

    /// One lookup attempt against the latest edition.
    pub fn lookup(&self, name: &ScientificName) -> Result<LookupOutcome, ServiceUnavailable> {
        self.lookup_at(name, i32::MAX)
    }

    /// One lookup attempt against the edition current at `year`
    /// (`i32::MAX` = latest).
    pub fn lookup_at(
        &self,
        name: &ScientificName,
        year: i32,
    ) -> Result<LookupOutcome, ServiceUnavailable> {
        if !self.simulate_transport() {
            return Err(ServiceUnavailable { attempt: 1 });
        }
        Ok(self.answer(name, year))
    }

    /// Lookup with up to `max_attempts` total tries on transport failure.
    pub fn lookup_with_retries(
        &self,
        name: &ScientificName,
        max_attempts: u32,
    ) -> Result<LookupOutcome, ServiceUnavailable> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            if self.simulate_transport() {
                return Ok(self.answer(name, i32::MAX));
            }
            if attempt >= max_attempts {
                return Err(ServiceUnavailable { attempt });
            }
            self.stats.lock().expect("stats lock").retries += 1;
        }
    }

    fn answer(&self, name: &ScientificName, year: i32) -> LookupOutcome {
        let edition = if year == i32::MAX {
            self.checklist.latest()
        } else {
            self.checklist.edition_at(year)
        };
        match edition.status(name) {
            NameStatus::Accepted => LookupOutcome::Current {
                classification: self
                    .checklist
                    .backbone
                    .get(name)
                    .map(|t| t.classification.clone()),
            },
            NameStatus::Synonym { .. } => match edition.resolve_accepted(name) {
                Some(accepted) => {
                    let classification = self
                        .checklist
                        .backbone
                        .get(&accepted)
                        .map(|t| t.classification.clone());
                    LookupOutcome::Outdated {
                        accepted,
                        classification,
                    }
                }
                None => LookupOutcome::Doubtful,
            },
            NameStatus::NomenInquirendum => LookupOutcome::Doubtful,
            NameStatus::Unknown => {
                if self.config.fuzzy_distance == 0 {
                    return LookupOutcome::NotFound;
                }
                let query = name.canonical();
                match self
                    .fuzzy_index()
                    .best_match(&query, self.config.fuzzy_distance)
                {
                    Some(m) if m.distance > 0 => LookupOutcome::Misspelled {
                        suggestion: ScientificName::parse(m.candidate)
                            .expect("backbone names are valid binomials"),
                        distance: m.distance,
                    },
                    _ => LookupOutcome::NotFound,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{Backbone, Taxon};
    use crate::checklist::Evolution;

    fn n(s: &str) -> ScientificName {
        ScientificName::parse(s).unwrap()
    }

    fn service(availability: f64) -> ColService {
        let mut b = Backbone::new();
        for name in ["Elachistocleis ovalis", "Hyla faber", "Scinax ruber"] {
            b.insert(Taxon {
                name: n(name),
                classification: Classification::new("Chordata", "Amphibia", "Anura", "F"),
                common_name: None,
            });
        }
        let mut c = Checklist::bootstrap(b, 1965);
        c.release(
            2010,
            &[Evolution::Rename {
                old: n("Elachistocleis ovalis"),
                new: n("Nomen inquirenda"),
            }],
        )
        .unwrap();
        ColService::new(
            c,
            ServiceConfig {
                availability,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn current_name_reported_current() {
        let s = service(1.0);
        match s.lookup(&n("Hyla faber")).unwrap() {
            LookupOutcome::Current { classification } => {
                assert_eq!(classification.unwrap().class, "Amphibia");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn outdated_name_gets_replacement() {
        let s = service(1.0);
        match s.lookup(&n("Elachistocleis ovalis")).unwrap() {
            LookupOutcome::Outdated { accepted, .. } => {
                assert_eq!(accepted, n("Nomen inquirenda"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn historical_edition_still_accepts_old_name() {
        let s = service(1.0);
        match s.lookup_at(&n("Elachistocleis ovalis"), 1990).unwrap() {
            LookupOutcome::Current { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn misspelling_gets_suggestion() {
        let s = service(1.0);
        match s.lookup(&n("Hyla fabre")).unwrap() {
            LookupOutcome::Misspelled {
                suggestion,
                distance,
            } => {
                assert_eq!(suggestion, n("Hyla faber"));
                assert!(distance <= 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_name_not_found() {
        let s = service(1.0);
        assert_eq!(
            s.lookup(&n("Totally unrelated")).unwrap(),
            LookupOutcome::NotFound
        );
    }

    #[test]
    fn fuzzy_disabled_returns_not_found() {
        let mut b = Backbone::new();
        b.insert(Taxon {
            name: n("Hyla faber"),
            classification: Classification::new("C", "A", "O", "F"),
            common_name: None,
        });
        let c = Checklist::bootstrap(b, 1965);
        let s = ColService::new(
            c,
            ServiceConfig {
                availability: 1.0,
                fuzzy_distance: 0,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(s.lookup(&n("Hyla fabre")).unwrap(), LookupOutcome::NotFound);
    }

    #[test]
    fn failures_happen_at_configured_rate() {
        let s = service(0.7);
        let mut failures = 0;
        for _ in 0..2000 {
            if s.lookup(&n("Hyla faber")).is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "failure rate {rate}");
        let obs = s.stats().observed_availability();
        assert!((obs - 0.7).abs() < 0.05, "observed {obs}");
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let s = service(0.5);
        let mut hard_failures = 0;
        for _ in 0..300 {
            if s.lookup_with_retries(&n("Hyla faber"), 5).is_err() {
                hard_failures += 1;
            }
        }
        // P(5 consecutive failures) = 0.5^5 ≈ 3%; must be far below 300.
        assert!(hard_failures < 30, "hard failures {hard_failures}");
        assert!(s.stats().retries > 0);
    }

    #[test]
    fn perfect_availability_never_fails() {
        let s = service(1.0);
        for _ in 0..100 {
            assert!(s.lookup(&n("Hyla faber")).is_ok());
        }
        assert_eq!(s.stats().failures, 0);
        assert_eq!(s.stats().observed_availability(), 1.0);
    }

    #[test]
    fn virtual_latency_accumulates() {
        let s = service(1.0);
        s.lookup(&n("Hyla faber")).unwrap();
        s.lookup(&n("Hyla faber")).unwrap();
        assert_eq!(s.stats().virtual_latency_ms, 240);
    }
}
