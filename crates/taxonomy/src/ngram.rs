//! Character-n-gram candidate generation for fuzzy name lookup.
//!
//! [`fuzzy::best_match`] is a linear scan: every checklist name pays a
//! Damerau–Levenshtein evaluation per query, which is the hot path at
//! Catalogue-of-Life scale. An [`NGramIndex`] cuts the scan to a small
//! candidate set with a *provable* guarantee: the candidates always
//! include the exact winner the linear scan would have produced, so the
//! indexed path is a pure speedup, never an approximation.
//!
//! # The count-filtering bound
//!
//! Work on the lowercase-folded strings (the same alphabet `best_match`
//! measures distance in). One edit operation rewrites at most a window of
//! `g` gram positions of the query — `g + 1` for an adjacent
//! transposition, which straddles one extra window. A gram *string*
//! disappears from the query's distinct-gram set only if every position
//! carrying it is rewritten, costing at least one rewritten position per
//! lost gram. So if `dist(q, c) <= d`, the candidate still shares at
//! least
//!
//! ```text
//! |grams(q)| − d·(g + 1)
//! ```
//!
//! distinct grams with the query. Names sharing fewer grams are provably
//! out of budget and are never scored; when the bound degenerates to
//! `<= 0` (short queries or generous budgets) the index falls back to
//! scanning every name, keeping the identical-result contract.

use std::collections::{BTreeMap, BTreeSet};

use crate::fuzzy::{self, Match};

/// Default gram width. Trigram postings stay small on binomial names
/// while the bound `|grams(q)| − d·4` remains positive for typical
/// queries (≥ ~12 chars at distance 2).
pub const DEFAULT_GRAM: usize = 3;

/// Distinct character n-grams of the *lowercase-folded* input.
///
/// Folding happens here so callers index and query in the same alphabet
/// `best_match` measures distance in.
pub fn grams(text: &str, g: usize) -> BTreeSet<String> {
    let folded: Vec<char> = text.to_lowercase().chars().collect();
    let mut out = BTreeSet::new();
    if g == 0 || folded.len() < g {
        return out;
    }
    for w in folded.windows(g) {
        out.insert(w.iter().collect());
    }
    out
}

/// Minimum shared distinct grams for a candidate within `max_distance`,
/// or `None` when the bound degenerates and a full scan is required.
pub fn candidate_threshold(query_grams: usize, g: usize, max_distance: usize) -> Option<usize> {
    let destroyed = max_distance.saturating_mul(g + 1);
    if query_grams > destroyed {
        Some(query_grams - destroyed)
    } else {
        None
    }
}

/// An in-memory character-n-gram index over a fixed candidate list.
///
/// Build once from a checklist, then answer fuzzy lookups through
/// [`NGramIndex::best_match`], which scores only the names that can
/// possibly be within budget.
#[derive(Debug, Clone)]
pub struct NGramIndex {
    g: usize,
    names: Vec<String>,
    /// gram → indices into `names`, each list sorted and deduped.
    postings: BTreeMap<String, Vec<u32>>,
}

impl NGramIndex {
    /// Build with [`DEFAULT_GRAM`].
    pub fn build<I>(names: I) -> NGramIndex
    where
        I: IntoIterator<Item = String>,
    {
        NGramIndex::with_gram(DEFAULT_GRAM, names)
    }

    /// Build with an explicit gram width (`g >= 1`).
    pub fn with_gram<I>(g: usize, names: I) -> NGramIndex
    where
        I: IntoIterator<Item = String>,
    {
        let g = g.max(1);
        let names: Vec<String> = names.into_iter().collect();
        let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (i, name) in names.iter().enumerate() {
            for gram in grams(name, g) {
                postings.entry(gram).or_default().push(i as u32);
            }
        }
        // grams() already dedupes per name and names are visited in
        // order, so each posting list is sorted and unique.
        NGramIndex { g, names, postings }
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are indexed.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The gram width this index was built with.
    pub fn gram(&self) -> usize {
        self.g
    }

    /// All indexed names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Indices of every name that *could* be within `max_distance` of
    /// `query` — a provable superset of the linear scan's hits (see the
    /// module docs for the bound). Falls back to all names when the
    /// bound degenerates.
    pub fn candidate_indices(&self, query: &str, max_distance: usize) -> Vec<u32> {
        let q = grams(query, self.g);
        let threshold = match candidate_threshold(q.len(), self.g, max_distance) {
            Some(t) => t,
            None => return (0..self.names.len() as u32).collect(),
        };
        let mut shared: BTreeMap<u32, usize> = BTreeMap::new();
        for gram in &q {
            if let Some(list) = self.postings.get(gram) {
                for &i in list {
                    *shared.entry(i).or_insert(0) += 1;
                }
            }
        }
        shared
            .into_iter()
            .filter(|&(_, n)| n >= threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// The candidate names themselves.
    pub fn candidates(&self, query: &str, max_distance: usize) -> Vec<&str> {
        self.candidate_indices(query, max_distance)
            .into_iter()
            .map(|i| self.names[i as usize].as_str())
            .collect()
    }

    /// Identical result to `fuzzy::best_match(query, all names, d)`,
    /// scoring only the candidate set. The superset guarantee means
    /// every name the linear scan would accept is present, and the
    /// shared tie-break makes the winner byte-for-byte the same.
    pub fn best_match(&self, query: &str, max_distance: usize) -> Option<Match<'_>> {
        fuzzy::best_match(query, self.candidates(query, max_distance), max_distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(names: &[&str]) -> NGramIndex {
        NGramIndex::build(names.iter().map(|s| s.to_string()))
    }

    #[test]
    fn grams_fold_case_and_dedupe() {
        let g = grams("Hyla", 3);
        assert_eq!(
            g.iter().map(String::as_str).collect::<Vec<_>>(),
            ["hyl", "yla"]
        );
        assert_eq!(grams("aaaa", 3).len(), 1);
        assert!(grams("ab", 3).is_empty());
    }

    #[test]
    fn threshold_degenerates_for_short_queries() {
        assert_eq!(candidate_threshold(10, 3, 2), Some(2));
        assert_eq!(candidate_threshold(8, 3, 2), None); // 8 <= 2·4
        assert_eq!(candidate_threshold(0, 3, 0), None);
    }

    #[test]
    fn indexed_matches_linear_on_fixtures() {
        let names = [
            "Hyla faber",
            "Hyla albopunctata",
            "Scinax ruber",
            "Elachistocleis ovalis",
            "Bufo bufo",
        ];
        let idx = index(&names);
        for q in [
            "hyla fabre",
            "Hyla faber",
            "scniax ruber",
            "elachsitocleis ovalis",
            "totally different words",
            "bufo",
        ] {
            for d in 0..=3 {
                let linear = fuzzy::best_match(q, names.iter().copied(), d);
                let fast = idx.best_match(q, d);
                assert_eq!(fast, linear, "query {q:?} distance {d}");
            }
        }
    }

    #[test]
    fn candidates_are_a_superset_of_accepted_names() {
        let names = ["Hyla faber", "Hyla fabex", "Scinax ruber"];
        let idx = index(&names);
        let cands = idx.candidates("hyla fabre", 2);
        for name in names {
            let d = fuzzy::damerau_levenshtein("hyla fabre", &name.to_lowercase());
            if d <= 2 {
                assert!(cands.contains(&name), "{name} within budget but missing");
            }
        }
    }

    #[test]
    fn degenerate_bound_scans_everything() {
        let idx = index(&["ab", "cd"]);
        // Query grams: none (too short) — must fall back to all names.
        assert_eq!(idx.candidate_indices("a", 1), vec![0, 1]);
        assert_eq!(idx.best_match("ab", 1).unwrap().candidate, "ab");
    }

    #[test]
    fn short_candidates_are_excluded_only_when_provably_out() {
        // "ab" has no trigrams; with a long query and tight budget the
        // bound proves it cannot match, so exclusion is sound.
        let idx = index(&["ab", "elachistocleis"]);
        let linear = fuzzy::best_match("elachistocleis", ["ab", "elachistocleis"], 2);
        assert_eq!(idx.best_match("elachistocleis", 2), linear);
    }
}
