//! Scientific-name parsing and canonical formatting.
//!
//! A binomial is `Genus epithet` — genus capitalized, epithet lowercase.
//! Legacy metadata contains case errors, stray whitespace and optional
//! authorship strings (`"Hyla faber Wied-Neuwied, 1821"`); the parser
//! normalizes all of these.

use serde::{Deserialize, Serialize};

/// A parsed binomial (genus + specific epithet), in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScientificName {
    genus: String,
    epithet: String,
    /// Authorship, kept verbatim if present (not part of identity).
    authorship: Option<String>,
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + &c.as_str().to_lowercase(),
        None => String::new(),
    }
}

fn is_name_word(w: &str) -> bool {
    !w.is_empty() && w.chars().all(|c| c.is_ascii_alphabetic() || c == '-')
}

impl ScientificName {
    /// Construct from already-separated parts (normalizing case).
    pub fn new(genus: &str, epithet: &str) -> Option<ScientificName> {
        if !is_name_word(genus) || !is_name_word(epithet) {
            return None;
        }
        Some(ScientificName {
            genus: capitalize(genus),
            epithet: epithet.to_lowercase(),
            authorship: None,
        })
    }

    /// Parse a free-text name: `"Genus epithet [Authorship…]"`.
    ///
    /// Authorship is recognized as everything after the epithet when it
    /// starts with an uppercase letter, a parenthesis or a digit.
    pub fn parse(input: &str) -> Option<ScientificName> {
        let trimmed = input.trim();
        let mut words = trimmed.split_whitespace();
        let genus = words.next()?;
        let epithet = words.next()?;
        let rest: Vec<&str> = words.collect();
        let mut name = ScientificName::new(genus, epithet)?;
        if !rest.is_empty() {
            let auth = rest.join(" ");
            let first = auth.chars().next().unwrap();
            if first.is_uppercase() || first == '(' || first.is_ascii_digit() {
                name.authorship = Some(auth);
            } else {
                return None; // trailing lowercase junk → not a clean binomial
            }
        }
        Some(name)
    }

    /// The genus part (capitalized).
    pub fn genus(&self) -> &str {
        &self.genus
    }

    /// The specific epithet (lowercase).
    pub fn epithet(&self) -> &str {
        &self.epithet
    }

    /// The authorship, if present.
    pub fn authorship(&self) -> Option<&str> {
        self.authorship.as_deref()
    }

    /// Canonical binomial without authorship — the identity used by
    /// checklists and equality.
    pub fn canonical(&self) -> String {
        format!("{} {}", self.genus, self.epithet)
    }

    /// Same name with authorship attached (builder style).
    pub fn with_authorship(mut self, authorship: &str) -> ScientificName {
        self.authorship = Some(authorship.to_string());
        self
    }

    /// Drop the authorship, leaving the bare binomial identity.
    pub fn bare(&self) -> ScientificName {
        ScientificName {
            genus: self.genus.clone(),
            epithet: self.epithet.clone(),
            authorship: None,
        }
    }
}

impl std::fmt::Display for ScientificName {
    /// Writes the canonical binomial (authorship omitted: identity).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.genus, self.epithet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_case_and_space() {
        let n = ScientificName::parse("  hyla   FABER ").unwrap();
        assert_eq!(n.genus(), "Hyla");
        assert_eq!(n.epithet(), "faber");
        assert_eq!(n.canonical(), "Hyla faber");
    }

    #[test]
    fn parse_with_authorship() {
        let n = ScientificName::parse("Hyla faber Wied-Neuwied, 1821").unwrap();
        assert_eq!(n.canonical(), "Hyla faber");
        assert_eq!(n.authorship(), Some("Wied-Neuwied, 1821"));
        let p = ScientificName::parse("Elachistocleis ovalis (Schneider, 1799)").unwrap();
        assert_eq!(p.authorship(), Some("(Schneider, 1799)"));
    }

    #[test]
    fn authorship_not_part_of_identity() {
        let a = ScientificName::parse("Hyla faber Wied-Neuwied, 1821").unwrap();
        let b = ScientificName::parse("Hyla faber").unwrap();
        assert_ne!(a, b); // full equality includes authorship...
        assert_eq!(a.bare(), b); // ...identity comparison uses bare()
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn rejects_non_binomials() {
        assert!(ScientificName::parse("Hyla").is_none());
        assert!(ScientificName::parse("").is_none());
        assert!(ScientificName::parse("Hyla faber junk").is_none());
        assert!(ScientificName::parse("123 456").is_none());
    }

    #[test]
    fn hyphenated_epithets_allowed() {
        let n = ScientificName::parse("Scinax fusco-marginatus").unwrap();
        assert_eq!(n.epithet(), "fusco-marginatus");
    }

    #[test]
    fn ordering_is_alphabetical() {
        let a = ScientificName::parse("Ameerega flavopicta").unwrap();
        let b = ScientificName::parse("Hyla faber").unwrap();
        assert!(a < b);
    }
}
