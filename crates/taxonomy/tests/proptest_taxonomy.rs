//! Property tests for taxonomy invariants (DESIGN.md §7): accepted-name
//! resolution is a fixpoint, synonym chains terminate, distances behave.

use proptest::prelude::*;

use preserva_taxonomy::builder::{build_backbone, build_checklist, ReleasePlan};
use preserva_taxonomy::fuzzy::{best_match, damerau_levenshtein};
use preserva_taxonomy::name::ScientificName;
use preserva_taxonomy::ngram::NGramIndex;

/// Re-case `s` according to `mask`: bit i set ⇒ char i uppercased.
fn apply_casing(s: &str, mask: u32) -> String {
    s.chars()
        .enumerate()
        .map(|(i, c)| {
            if mask & (1 << (i % 32)) != 0 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Resolving a name to its accepted form is a fixpoint: resolving the
    /// result again yields the same name; and the result is accepted.
    #[test]
    fn resolution_is_fixpoint(
        n_species in 20usize..120,
        renames in 0usize..15,
        doubts in 0usize..5,
        seed in 0u64..1000,
    ) {
        let b = build_backbone(n_species, seed);
        let names: Vec<ScientificName> = b.names().cloned().collect();
        let c = build_checklist(
            b,
            1965,
            &[ReleasePlan { year: 2013, renames, doubts }],
            None,
            seed,
        );
        let ed = c.latest();
        for n in &names {
            if let Some(acc) = ed.resolve_accepted(n) {
                prop_assert!(ed.status(&acc).is_current());
                prop_assert_eq!(ed.resolve_accepted(&acc), Some(acc));
            }
        }
    }

    /// Across consecutive releases, the number of accepted names among the
    /// original pool never grows (renames/doubts only retire originals).
    #[test]
    fn original_accepted_count_monotone_down(
        n_species in 30usize..100,
        churn1 in 0usize..10,
        churn2 in 0usize..10,
        seed in 0u64..500,
    ) {
        let b = build_backbone(n_species, seed);
        let names: Vec<ScientificName> = b.names().cloned().collect();
        let c = build_checklist(
            b,
            1965,
            &[
                ReleasePlan { year: 1990, renames: churn1, doubts: 0 },
                ReleasePlan { year: 2013, renames: churn2, doubts: 0 },
            ],
            None,
            seed,
        );
        let mut prev = usize::MAX;
        for ed in c.editions() {
            let current = names.iter().filter(|n| ed.status(n).is_current()).count();
            prop_assert!(current <= prev);
            prev = current;
        }
    }

    /// Damerau–Levenshtein: symmetric, zero iff equal, bounded by max len.
    #[test]
    fn distance_properties(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let d = damerau_levenshtein(&a, &b);
        prop_assert_eq!(d, damerau_levenshtein(&b, &a));
        prop_assert_eq!(d == 0, a == b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    /// Single-character edits are distance ≤ 1.
    #[test]
    fn single_edit_distance_one(s in "[a-z]{2,10}", idx in 0usize..10, cx in 0u8..26) {
        let c = (b'a' + cx) as char;
        let chars: Vec<char> = s.chars().collect();
        let i = idx % chars.len();
        // substitution
        let mut sub = chars.clone();
        sub[i] = c;
        let sub: String = sub.into_iter().collect();
        prop_assert!(damerau_levenshtein(&s, &sub) <= 1);
        // deletion
        let mut del = chars.clone();
        del.remove(i);
        let del: String = del.into_iter().collect();
        prop_assert_eq!(damerau_levenshtein(&s, &del), 1);
        // transposition of adjacent chars
        if i + 1 < chars.len() {
            let mut tr = chars.clone();
            tr.swap(i, i + 1);
            let tr: String = tr.into_iter().collect();
            prop_assert!(damerau_levenshtein(&s, &tr) <= 1);
        }
    }

    /// `best_match` is invariant under candidate-casing permutations: both
    /// the winner (up to case) and its distance are decided entirely on
    /// the lowercase alphabet, so re-casing any subset of candidate
    /// characters never changes the outcome. Guards the tie-break fix —
    /// the old raw byte compare let a capital letter steal ties.
    #[test]
    fn best_match_invariant_under_candidate_casing(
        query in "[a-z]{1,8}",
        cands in proptest::collection::vec("[a-z]{1,8}", 1..8),
        masks in proptest::collection::vec(0u32..256, 8),
        budget in 0usize..6,
    ) {
        let recased: Vec<String> = cands
            .iter()
            .zip(&masks)
            .map(|(c, m)| apply_casing(c, *m))
            .collect();
        let base = best_match(&query, cands.iter().map(String::as_str), budget);
        let cased = best_match(&query, recased.iter().map(String::as_str), budget);
        match (base, cased) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.distance, b.distance);
                prop_assert_eq!(a.candidate.to_lowercase(), b.candidate.to_lowercase());
            }
            (a, b) => prop_assert!(false, "casing changed matchability: {a:?} vs {b:?}"),
        }
    }

    /// The n-gram-indexed `best_match` is EXACTLY the linear scan: same
    /// winner, same distance, same None, for arbitrary queries (any
    /// casing, any length — including short strings that defeat the
    /// count-filtering bound and fall back to a full scan) against
    /// arbitrary candidate pools.
    #[test]
    fn indexed_best_match_equals_linear(
        query in "[a-zA-Z ]{0,12}",
        cands in proptest::collection::vec("[a-zA-Z]{0,10}( [a-z]{1,10})?", 0..12),
        budget in 0usize..5,
    ) {
        let index = NGramIndex::build(cands.iter().cloned());
        let linear = best_match(&query, cands.iter().map(String::as_str), budget)
            .map(|m| (m.candidate.to_string(), m.distance));
        // Candidate superset guarantee: whoever wins the linear scan is
        // in the filtered candidate set.
        if let Some((winner, _)) = &linear {
            prop_assert!(
                index.candidates(&query, budget).iter().any(|c| c == winner),
                "winner {winner:?} missing from candidates for {query:?}"
            );
        }
        let indexed = index
            .best_match(&query, budget)
            .map(|m| (m.candidate.to_string(), m.distance));
        prop_assert_eq!(linear, indexed);
    }

    /// Name parsing normalizes to a canonical form that re-parses to the
    /// same identity.
    #[test]
    fn name_parse_canonical_roundtrip(genus in "[A-Za-z]{2,10}", epithet in "[A-Za-z]{2,12}") {
        let raw = format!("  {genus}   {epithet} ");
        if let Some(n) = ScientificName::parse(&raw) {
            let re = ScientificName::parse(&n.canonical()).unwrap();
            prop_assert_eq!(n.bare(), re);
            // Canonical form: capitalized genus, lowercase epithet.
            prop_assert!(n.genus().chars().next().unwrap().is_uppercase());
            prop_assert!(n.epithet().chars().all(|c| !c.is_uppercase()));
        }
    }
}
