//! Field domain constraints — the checks behind "basic metadata cleaning
//! algorithms, e.g., checking attribute domains" (paper §IV-B stage 1).

use serde::{Deserialize, Serialize};

use crate::value::{Value, ValueType};
use crate::vocab::Vocabulary;

/// A constraint on the values a field may take (beyond its type).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Domain {
    /// Any value of the declared type.
    Any,
    /// Numeric value within `[min, max]`.
    NumericRange {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Integer count at least `min` (e.g. number of individuals ≥ 1).
    MinCount {
        /// Smallest acceptable count.
        min: i64,
    },
    /// Text drawn from a controlled vocabulary.
    Controlled(Vocabulary),
    /// Non-empty text after trimming.
    NonEmptyText,
    /// Year bounded to a plausible recording era.
    YearRange {
        /// Earliest acceptable year.
        min: i32,
        /// Latest acceptable year.
        max: i32,
    },
}

/// Why a value violated its domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DomainViolation {
    /// Value has the wrong type for the domain.
    WrongType {
        /// Type the domain requires.
        expected: ValueType,
        /// Type the value actually has.
        got: ValueType,
    },
    /// Numeric value outside its range.
    OutOfRange {
        /// Offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Count below the required minimum.
    BelowMinCount {
        /// Offending count.
        value: i64,
        /// Smallest acceptable count.
        min: i64,
    },
    /// Text not found in the controlled vocabulary.
    NotInVocabulary {
        /// Offending text.
        value: String,
        /// Name of the vocabulary consulted.
        vocabulary: String,
    },
    /// Text was blank after trimming.
    EmptyText,
    /// Date's year outside the plausible era.
    YearOutOfRange {
        /// Offending year.
        year: i32,
        /// Earliest acceptable year.
        min: i32,
        /// Latest acceptable year.
        max: i32,
    },
}

impl std::fmt::Display for DomainViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainViolation::WrongType { expected, got } => {
                write!(f, "expected {expected:?}, got {got:?}")
            }
            DomainViolation::OutOfRange { value, min, max } => {
                write!(f, "value {value} outside [{min}, {max}]")
            }
            DomainViolation::BelowMinCount { value, min } => {
                write!(f, "count {value} below minimum {min}")
            }
            DomainViolation::NotInVocabulary { value, vocabulary } => {
                write!(f, "{value:?} not in vocabulary {vocabulary:?}")
            }
            DomainViolation::EmptyText => f.write_str("empty text"),
            DomainViolation::YearOutOfRange { year, min, max } => {
                write!(f, "year {year} outside [{min}, {max}]")
            }
        }
    }
}

impl Domain {
    /// Check `value` against this domain (type errors are reported by the
    /// schema layer before this is called, but numeric domains re-check).
    pub fn check(&self, value: &Value) -> Result<(), DomainViolation> {
        match self {
            Domain::Any => Ok(()),
            Domain::NumericRange { min, max } => {
                let v = value.as_f64().ok_or(DomainViolation::WrongType {
                    expected: ValueType::Float,
                    got: value.value_type(),
                })?;
                if v < *min || v > *max {
                    Err(DomainViolation::OutOfRange {
                        value: v,
                        min: *min,
                        max: *max,
                    })
                } else {
                    Ok(())
                }
            }
            Domain::MinCount { min } => match value {
                Value::Integer(i) if i >= min => Ok(()),
                Value::Integer(i) => Err(DomainViolation::BelowMinCount {
                    value: *i,
                    min: *min,
                }),
                other => Err(DomainViolation::WrongType {
                    expected: ValueType::Integer,
                    got: other.value_type(),
                }),
            },
            Domain::Controlled(vocab) => match value {
                Value::Text(s) if vocab.contains(s) => Ok(()),
                Value::Text(s) => Err(DomainViolation::NotInVocabulary {
                    value: s.clone(),
                    vocabulary: vocab.name.clone(),
                }),
                other => Err(DomainViolation::WrongType {
                    expected: ValueType::Text,
                    got: other.value_type(),
                }),
            },
            Domain::NonEmptyText => match value {
                Value::Text(s) if !s.trim().is_empty() => Ok(()),
                Value::Text(_) => Err(DomainViolation::EmptyText),
                other => Err(DomainViolation::WrongType {
                    expected: ValueType::Text,
                    got: other.value_type(),
                }),
            },
            Domain::YearRange { min, max } => match value {
                Value::Date(d) if d.year >= *min && d.year <= *max => Ok(()),
                Value::Date(d) => Err(DomainViolation::YearOutOfRange {
                    year: d.year,
                    min: *min,
                    max: *max,
                }),
                other => Err(DomainViolation::WrongType {
                    expected: ValueType::Date,
                    got: other.value_type(),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;
    use crate::vocab;

    #[test]
    fn numeric_range_checks_bounds() {
        let d = Domain::NumericRange {
            min: -10.0,
            max: 50.0,
        }; // air temp °C
        assert!(d.check(&Value::Float(25.0)).is_ok());
        assert!(d.check(&Value::Integer(-10)).is_ok());
        assert!(matches!(
            d.check(&Value::Float(60.0)),
            Err(DomainViolation::OutOfRange { .. })
        ));
        assert!(matches!(
            d.check(&Value::Text("hot".into())),
            Err(DomainViolation::WrongType { .. })
        ));
    }

    #[test]
    fn min_count_checks() {
        let d = Domain::MinCount { min: 1 };
        assert!(d.check(&Value::Integer(3)).is_ok());
        assert!(matches!(
            d.check(&Value::Integer(0)),
            Err(DomainViolation::BelowMinCount { .. })
        ));
    }

    #[test]
    fn controlled_vocabulary_checks() {
        let d = Domain::Controlled(vocab::habitats());
        assert!(d.check(&Value::Text("forest".into())).is_ok());
        assert!(d.check(&Value::Text("cerrado".into())).is_ok()); // alias
        assert!(matches!(
            d.check(&Value::Text("moon".into())),
            Err(DomainViolation::NotInVocabulary { .. })
        ));
    }

    #[test]
    fn non_empty_text_checks() {
        let d = Domain::NonEmptyText;
        assert!(d.check(&Value::Text("Hyla".into())).is_ok());
        assert_eq!(
            d.check(&Value::Text("   ".into())),
            Err(DomainViolation::EmptyText)
        );
    }

    #[test]
    fn year_range_checks() {
        let d = Domain::YearRange {
            min: 1950,
            max: 2014,
        };
        assert!(d
            .check(&Value::Date(Date::new(1961, 5, 1).unwrap()))
            .is_ok());
        assert!(matches!(
            d.check(&Value::Date(Date::new(1920, 5, 1).unwrap())),
            Err(DomainViolation::YearOutOfRange { .. })
        ));
    }

    #[test]
    fn any_accepts_everything() {
        assert!(Domain::Any.check(&Value::Boolean(true)).is_ok());
        assert!(Domain::Any.check(&Value::Text(String::new())).is_ok());
    }
}
