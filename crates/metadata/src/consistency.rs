//! Internal-consistency checks — the fourth classic quality dimension the
//! paper cites ("accuracy, completeness, timeliness and consistency have
//! been extensively cited as some of the most important quality
//! dimensions"). Two scopes:
//!
//! * **within a record** ([`record_inconsistencies`]): the `genus` field
//!   must match the binomial's genus; an identification must not be more
//!   precise than its higher taxonomy allows (species without genus);
//! * **across records** ([`collection_inconsistencies`]): the same
//!   binomial must carry the same higher classification everywhere —
//!   divergence means at least one record is misclassified.
//!
//! The counts feed `preserva_quality::attribute_based::AttributeCounts`.

use std::collections::BTreeMap;

use crate::record::Record;

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inconsistency {
    /// `genus` field disagrees with the species binomial's genus part.
    GenusMismatch {
        /// The offending record.
        record_id: String,
        /// Genus stated in the `genus` field.
        genus_field: String,
        /// Genus implied by the `species` binomial.
        binomial_genus: String,
    },
    /// A species is identified but a broader rank field is blank.
    MissingHigherRank {
        /// The offending record.
        record_id: String,
        /// The blank broader field (e.g. `family`).
        missing: &'static str,
    },
    /// Two records assign different higher taxonomy to the same binomial.
    DivergentClassification {
        /// The binomial with conflicting classifications.
        species: String,
        /// The rank that diverges (e.g. `family`).
        rank: &'static str,
        /// The distinct values seen.
        values: Vec<String>,
    },
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inconsistency::GenusMismatch {
                record_id,
                genus_field,
                binomial_genus,
            } => write!(
                f,
                "{record_id}: genus field {genus_field:?} disagrees with binomial genus {binomial_genus:?}"
            ),
            Inconsistency::MissingHigherRank { record_id, missing } => {
                write!(f, "{record_id}: species identified but {missing} is blank")
            }
            Inconsistency::DivergentClassification { species, rank, values } => write!(
                f,
                "{species}: {rank} diverges across records ({})",
                values.join(" / ")
            ),
        }
    }
}

/// First word of a binomial string, normalized to capitalized form.
fn binomial_genus(species: &str) -> Option<String> {
    let w = species.split_whitespace().next()?;
    let mut c = w.chars();
    let first = c.next()?;
    if !first.is_alphabetic() {
        return None;
    }
    Some(first.to_uppercase().collect::<String>() + &c.as_str().to_lowercase())
}

/// Within-record checks.
pub fn record_inconsistencies(record: &Record) -> Vec<Inconsistency> {
    let mut out = Vec::new();
    if let Some(species) = record.get_text("species") {
        if let Some(bg) = binomial_genus(species) {
            if let Some(genus) = record.get_text("genus") {
                if !genus.trim().is_empty() && !genus.trim().eq_ignore_ascii_case(&bg) {
                    out.push(Inconsistency::GenusMismatch {
                        record_id: record.id.clone(),
                        genus_field: genus.trim().to_string(),
                        binomial_genus: bg,
                    });
                }
            }
        }
        if record.is_filled("species") {
            for rank in ["family", "order", "class", "phylum"] {
                if !record.is_filled(rank) {
                    out.push(Inconsistency::MissingHigherRank {
                        record_id: record.id.clone(),
                        missing: match rank {
                            "family" => "family",
                            "order" => "order",
                            "class" => "class",
                            _ => "phylum",
                        },
                    });
                }
            }
        }
    }
    out
}

/// Cross-record checks: per-binomial agreement of higher taxonomy.
pub fn collection_inconsistencies(records: &[Record]) -> Vec<Inconsistency> {
    let mut out = Vec::new();
    for rank in ["family", "order", "class", "phylum"] {
        let mut seen: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for r in records {
            let (Some(species), Some(value)) = (r.get_text("species"), r.get_text(rank)) else {
                continue;
            };
            let Some(genus) = binomial_genus(species) else {
                continue;
            };
            let key = format!(
                "{genus} {}",
                species
                    .split_whitespace()
                    .nth(1)
                    .unwrap_or_default()
                    .to_lowercase()
            );
            if value.trim().is_empty() {
                continue;
            }
            *seen
                .entry(key)
                .or_default()
                .entry(value.trim().to_string())
                .or_insert(0) += 1;
        }
        for (species, values) in seen {
            if values.len() > 1 {
                out.push(Inconsistency::DivergentClassification {
                    species,
                    rank: match rank {
                        "family" => "family",
                        "order" => "order",
                        "class" => "class",
                        _ => "phylum",
                    },
                    values: values.into_keys().collect(),
                });
            }
        }
    }
    out
}

/// `(consistent_records, checked_records)` for the attribute-based
/// baseline: a record is consistent when it has no within-record
/// violations. Only records with a species are checked.
pub fn consistency_counts(records: &[Record]) -> (usize, usize) {
    let mut checked = 0;
    let mut consistent = 0;
    for r in records {
        if r.is_filled("species") {
            checked += 1;
            if record_inconsistencies(r).is_empty() {
                consistent += 1;
            }
        }
    }
    (consistent, checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn full_record(id: &str, species: &str, genus: &str, family: &str) -> Record {
        Record::new(id)
            .with("species", Value::Text(species.into()))
            .with("genus", Value::Text(genus.into()))
            .with("family", Value::Text(family.into()))
            .with("order", Value::Text("Anura".into()))
            .with("class", Value::Text("Amphibia".into()))
            .with("phylum", Value::Text("Chordata".into()))
    }

    #[test]
    fn consistent_record_is_clean() {
        let r = full_record("r1", "Hyla faber", "Hyla", "Hylidae");
        assert!(record_inconsistencies(&r).is_empty());
    }

    #[test]
    fn genus_mismatch_detected() {
        let r = full_record("r1", "Hyla faber", "Scinax", "Hylidae");
        let v = record_inconsistencies(&r);
        assert!(matches!(v[0], Inconsistency::GenusMismatch { .. }));
    }

    #[test]
    fn genus_comparison_is_case_insensitive() {
        let r = full_record("r1", "hyla faber", "HYLA", "Hylidae");
        assert!(record_inconsistencies(&r).is_empty());
    }

    #[test]
    fn missing_higher_ranks_detected() {
        let r = Record::new("r1").with("species", Value::Text("Hyla faber".into()));
        let v = record_inconsistencies(&r);
        assert_eq!(v.len(), 4); // family, order, class, phylum all blank
        assert!(v
            .iter()
            .all(|x| matches!(x, Inconsistency::MissingHigherRank { .. })));
    }

    #[test]
    fn divergent_classification_detected() {
        let records = vec![
            full_record("r1", "Hyla faber", "Hyla", "Hylidae"),
            full_record("r2", "Hyla faber", "Hyla", "Leptodactylidae"), // misfiled
            full_record("r3", "Scinax ruber", "Scinax", "Hylidae"),
        ];
        let v = collection_inconsistencies(&records);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Inconsistency::DivergentClassification {
                species,
                rank,
                values,
            } => {
                assert_eq!(species, "Hyla faber");
                assert_eq!(*rank, "family");
                assert_eq!(values.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn agreement_across_records_is_clean() {
        let records = vec![
            full_record("r1", "Hyla faber", "Hyla", "Hylidae"),
            full_record("r2", "Hyla faber", "Hyla", "Hylidae"),
        ];
        assert!(collection_inconsistencies(&records).is_empty());
    }

    #[test]
    fn counts_feed_attribute_baseline() {
        let records = vec![
            full_record("r1", "Hyla faber", "Hyla", "Hylidae"),
            full_record("r2", "Hyla faber", "Scinax", "Hylidae"), // mismatch
            Record::new("r3"),                                    // no species: unchecked
        ];
        let (consistent, checked) = consistency_counts(&records);
        assert_eq!((consistent, checked), (1, 2));
    }

    #[test]
    fn display_messages_are_informative() {
        let r = full_record("r1", "Hyla faber", "Scinax", "Hylidae");
        let v = record_inconsistencies(&r);
        let msg = v[0].to_string();
        assert!(msg.contains("r1") && msg.contains("Scinax") && msg.contains("Hyla"));
    }
}
