//! Field definitions: name, type, domain, requiredness and the Table II
//! grouping (what / when-where / how).

use serde::{Deserialize, Serialize};

use crate::domains::Domain;
use crate::value::ValueType;

/// The three rows of Table II, plus "Other" for the remaining 29 fields of
/// the full 51-field FNJV schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldGroup {
    /// Row 1 — what was observed (taxonomy, gender, count).
    Identification,
    /// Row 2 — when, where, and environment.
    ObservationConditions,
    /// Row 3 — how the recording was made (devices, format).
    RecordingFeatures,
    /// Not listed in Table II.
    Other,
}

impl FieldGroup {
    /// The paper's description of the group.
    pub fn description(self) -> &'static str {
        match self {
            FieldGroup::Identification => "information to identify the recorded species",
            FieldGroup::ObservationConditions => {
                "observation conditions: when, where and the environment"
            }
            FieldGroup::RecordingFeatures => "recording features and devices used",
            FieldGroup::Other => "additional collection-management fields",
        }
    }
}

/// Definition of one metadata field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name (snake_case).
    pub name: String,
    /// Declared value type.
    pub value_type: ValueType,
    /// Domain constraint beyond the type.
    pub domain: Domain,
    /// Required fields count against completeness when blank.
    pub required: bool,
    /// Table II grouping.
    pub group: FieldGroup,
    /// Whether the field appears in the paper's Table II subset.
    pub in_table2: bool,
}

impl FieldDef {
    /// A required field with `Domain::Any`.
    pub fn required(name: &str, value_type: ValueType, group: FieldGroup) -> Self {
        FieldDef {
            name: name.to_string(),
            value_type,
            domain: Domain::Any,
            required: true,
            group,
            in_table2: false,
        }
    }

    /// An optional field with `Domain::Any`.
    pub fn optional(name: &str, value_type: ValueType, group: FieldGroup) -> Self {
        FieldDef {
            required: false,
            ..FieldDef::required(name, value_type, group)
        }
    }

    /// Attach a domain constraint (builder style).
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Mark as part of Table II (builder style).
    pub fn table2(mut self) -> Self {
        self.in_table2 = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_flags() {
        let f = FieldDef::required("species", ValueType::Text, FieldGroup::Identification)
            .with_domain(Domain::NonEmptyText)
            .table2();
        assert!(f.required);
        assert!(f.in_table2);
        assert!(matches!(f.domain, Domain::NonEmptyText));
        let o = FieldDef::optional("notes", ValueType::Text, FieldGroup::Other);
        assert!(!o.required);
        assert!(!o.in_table2);
    }

    #[test]
    fn group_descriptions_exist() {
        for g in [
            FieldGroup::Identification,
            FieldGroup::ObservationConditions,
            FieldGroup::RecordingFeatures,
            FieldGroup::Other,
        ] {
            assert!(!g.description().is_empty());
        }
    }
}
