//! Observation records: id + typed field map.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A single observation record (one sound recording's metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Collection-unique identifier (e.g. `"FNJV-000123"`).
    pub id: String,
    fields: BTreeMap<String, Value>,
}

impl Record {
    /// Create an empty record.
    pub fn new(id: impl Into<String>) -> Self {
        Record {
            id: id.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Set a field (builder style).
    pub fn with(mut self, field: &str, value: Value) -> Self {
        self.set(field, value);
        self
    }

    /// Set a field.
    pub fn set(&mut self, field: &str, value: Value) {
        self.fields.insert(field.to_string(), value);
    }

    /// Remove a field, returning its previous value.
    pub fn unset(&mut self, field: &str) -> Option<Value> {
        self.fields.remove(field)
    }

    /// Get a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Get a text field's content.
    pub fn get_text(&self, field: &str) -> Option<&str> {
        self.fields.get(field).and_then(Value::as_text)
    }

    /// Whether a field is present (a present-but-empty text still counts as
    /// present here; completeness treats it as blank).
    pub fn has(&self, field: &str) -> bool {
        self.fields.contains_key(field)
    }

    /// Whether a field holds a usable (non-blank) value.
    pub fn is_filled(&self, field: &str) -> bool {
        match self.fields.get(field) {
            None => false,
            Some(Value::Text(s)) => !s.trim().is_empty(),
            Some(_) => true,
        }
    }

    /// Iterate fields in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields present.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no field is present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut r = Record::new("FNJV-1");
        r.set("species", Value::Text("Hyla faber".into()));
        assert_eq!(r.get_text("species"), Some("Hyla faber"));
        assert_eq!(r.unset("species"), Some(Value::Text("Hyla faber".into())));
        assert!(r.get("species").is_none());
    }

    #[test]
    fn is_filled_treats_blank_text_as_missing() {
        let r = Record::new("r")
            .with("a", Value::Text("  ".into()))
            .with("b", Value::Text("x".into()))
            .with("c", Value::Integer(0));
        assert!(!r.is_filled("a"));
        assert!(r.is_filled("b"));
        assert!(r.is_filled("c"));
        assert!(!r.is_filled("absent"));
        assert!(r.has("a"));
    }

    #[test]
    fn fields_iterate_sorted() {
        let r = Record::new("r")
            .with("z", Value::Integer(1))
            .with("a", Value::Integer(2));
        let names: Vec<&str> = r.fields().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn serde_roundtrip() {
        let r = Record::new("FNJV-9").with("species", Value::Text("Scinax fuscomarginatus".into()));
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
