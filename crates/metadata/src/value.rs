//! Typed metadata values.

use serde::{Deserialize, Serialize};

/// A calendar date (proleptic Gregorian), validated on construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Calendar year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl Date {
    /// Construct a date, rejecting out-of-range months/days (leap years
    /// respected).
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Days since 0000-03-01 (a convenient leap-friendly epoch); used for
    /// date arithmetic such as timeliness decay.
    pub fn day_number(&self) -> i64 {
        // Standard civil-from-days inverse (Howard Hinnant's algorithm).
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }

    /// Whole years between `self` and a later date (negative if earlier).
    pub fn years_until(&self, later: &Date) -> f64 {
        (later.day_number() - self.day_number()) as f64 / 365.2425
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// A time of day (no timezone; field recordings annotate local time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimeOfDay {
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
}

impl TimeOfDay {
    /// Construct, rejecting hour ≥ 24 or minute ≥ 60.
    pub fn new(hour: u8, minute: u8) -> Option<TimeOfDay> {
        if hour < 24 && minute < 60 {
            Some(TimeOfDay { hour, minute })
        } else {
            None
        }
    }
}

impl std::fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02}:{:02}", self.hour, self.minute)
    }
}

/// Geographic coordinates in decimal degrees, validated on construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coordinates {
    /// Latitude in decimal degrees.
    pub lat: f64,
    /// Longitude in decimal degrees.
    pub lon: f64,
}

impl Coordinates {
    /// Construct, rejecting values outside ±90 / ±180 or NaN.
    pub fn new(lat: f64, lon: f64) -> Option<Coordinates> {
        if lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon)
        {
            Some(Coordinates { lat, lon })
        } else {
            None
        }
    }
}

impl std::fmt::Display for Coordinates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.5},{:.5}", self.lat, self.lon)
    }
}

/// A typed metadata value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Free text.
    Text(String),
    /// Signed integer.
    Integer(i64),
    /// Floating-point number.
    Float(f64),
    /// Calendar date.
    Date(Date),
    /// Time of day.
    Time(TimeOfDay),
    /// Geographic coordinates.
    Coordinates(Coordinates),
    /// Boolean flag.
    Boolean(bool),
}

/// The broad type of a [`Value`]; what [`crate::field::FieldDef`] declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueType {
    /// Free text.
    Text,
    /// Signed integer.
    Integer,
    /// Floating-point number.
    Float,
    /// Calendar date.
    Date,
    /// Time of day.
    Time,
    /// Geographic coordinates.
    Coordinates,
    /// Boolean flag.
    Boolean,
}

impl Value {
    /// The broad type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Text(_) => ValueType::Text,
            Value::Integer(_) => ValueType::Integer,
            Value::Float(_) => ValueType::Float,
            Value::Date(_) => ValueType::Date,
            Value::Time(_) => ValueType::Time,
            Value::Coordinates(_) => ValueType::Coordinates,
            Value::Boolean(_) => ValueType::Boolean,
        }
    }

    /// Text content, if textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of integers and floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Date content, if a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Coordinates content, if coordinates.
    pub fn as_coordinates(&self) -> Option<Coordinates> {
        match self {
            Value::Coordinates(c) => Some(*c),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Text(s) => f.write_str(s),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Coordinates(c) => write!(f, "{c}"),
            Value::Boolean(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(2013, 2, 29).is_none());
        assert!(Date::new(2012, 2, 29).is_some()); // leap year
        assert!(Date::new(1900, 2, 29).is_none()); // century non-leap
        assert!(Date::new(2000, 2, 29).is_some()); // 400-year leap
        assert!(Date::new(1960, 13, 1).is_none());
        assert!(Date::new(1960, 0, 1).is_none());
        assert!(Date::new(1960, 6, 31).is_none());
        assert!(Date::new(1960, 6, 30).is_some());
    }

    #[test]
    fn date_arithmetic() {
        let a = Date::new(1960, 1, 1).unwrap();
        let b = Date::new(2013, 1, 1).unwrap();
        let years = a.years_until(&b);
        assert!((years - 53.0).abs() < 0.01, "got {years}");
        assert_eq!(b.day_number() - a.day_number(), 19_359);
    }

    #[test]
    fn date_ordering_follows_calendar() {
        let earlier = Date::new(1999, 12, 31).unwrap();
        let later = Date::new(2000, 1, 1).unwrap();
        assert!(earlier < later);
    }

    #[test]
    fn time_validation() {
        assert!(TimeOfDay::new(23, 59).is_some());
        assert!(TimeOfDay::new(24, 0).is_none());
        assert!(TimeOfDay::new(12, 60).is_none());
    }

    #[test]
    fn coordinates_validation() {
        assert!(Coordinates::new(-22.9, -47.06).is_some()); // Campinas
        assert!(Coordinates::new(91.0, 0.0).is_none());
        assert!(Coordinates::new(0.0, 181.0).is_none());
        assert!(Coordinates::new(f64::NAN, 0.0).is_none());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Integer(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        let d = Date::new(2013, 10, 1).unwrap();
        assert_eq!(Value::Date(d).as_date(), Some(d));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Date::new(1960, 3, 5).unwrap().to_string(), "1960-03-05");
        assert_eq!(TimeOfDay::new(7, 5).unwrap().to_string(), "07:05");
        assert_eq!(
            Coordinates::new(-22.9, -47.06).unwrap().to_string(),
            "-22.90000,-47.06000"
        );
    }
}
