//! Controlled vocabularies with canonical-form matching.
//!
//! Legacy metadata spells the same term many ways ("forest", "Forest ",
//! "FOREST"). A vocabulary maps case/whitespace-insensitive inputs — plus
//! registered aliases — to one canonical spelling.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A controlled vocabulary: canonical terms plus aliases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    /// Vocabulary name.
    pub name: String,
    /// normalized form → canonical spelling
    lookup: BTreeMap<String, String>,
    /// canonical spellings in insertion order
    terms: Vec<String>,
}

fn normalize(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new(name: &str) -> Self {
        Vocabulary {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Build a vocabulary from canonical terms.
    pub fn from_terms(name: &str, terms: &[&str]) -> Self {
        let mut v = Vocabulary::new(name);
        for t in terms {
            v.add_term(t);
        }
        v
    }

    /// Register a canonical term (idempotent).
    pub fn add_term(&mut self, term: &str) {
        let key = normalize(term);
        if let std::collections::btree_map::Entry::Vacant(e) = self.lookup.entry(key) {
            e.insert(term.to_string());
            self.terms.push(term.to_string());
        }
    }

    /// Register an alias resolving to an existing canonical term.
    /// Returns false when the canonical term is unknown.
    pub fn add_alias(&mut self, alias: &str, canonical: &str) -> bool {
        let canon_key = normalize(canonical);
        let Some(canonical) = self.lookup.get(&canon_key).cloned() else {
            return false;
        };
        self.lookup.insert(normalize(alias), canonical);
        true
    }

    /// Resolve an input to its canonical spelling, if recognized.
    pub fn canonicalize(&self, input: &str) -> Option<&str> {
        self.lookup.get(&normalize(input)).map(String::as_str)
    }

    /// Whether the input is a recognized term or alias.
    pub fn contains(&self, input: &str) -> bool {
        self.lookup.contains_key(&normalize(input))
    }

    /// Canonical terms in insertion order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Number of canonical terms (aliases not counted).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no canonical term exists.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The habitat vocabulary used by the FNJV schema.
pub fn habitats() -> Vocabulary {
    let mut v = Vocabulary::from_terms(
        "habitat",
        &[
            "Forest",
            "Open field",
            "Wetland",
            "Urban area",
            "Savanna",
            "Riparian forest",
            "Mangrove",
            "Cave",
            "Mountain",
            "Agricultural area",
        ],
    );
    v.add_alias("cerrado", "Savanna");
    v.add_alias("mata ciliar", "Riparian forest");
    v.add_alias("city", "Urban area");
    v
}

/// Atmospheric-conditions vocabulary (Table II row 2).
pub fn atmospheric_conditions() -> Vocabulary {
    Vocabulary::from_terms(
        "atmospheric_conditions",
        &[
            "Clear", "Cloudy", "Rainy", "Drizzle", "Fog", "Windy", "Storm",
        ],
    )
}

/// Sound-file-format vocabulary (Table II row 3; paper §II-C lists the
/// digital formats plus legacy tape).
pub fn sound_formats() -> Vocabulary {
    Vocabulary::from_terms(
        "sound_file_format",
        &["WAV", "MP3", "AIFF", "ATRAC", "FLAC", "Magnetic tape"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_is_case_and_space_insensitive() {
        let v = habitats();
        assert_eq!(v.canonicalize("  forest "), Some("Forest"));
        assert_eq!(v.canonicalize("OPEN   FIELD"), Some("Open field"));
        assert_eq!(v.canonicalize("swamp"), None);
    }

    #[test]
    fn aliases_resolve_to_canonical() {
        let v = habitats();
        assert_eq!(v.canonicalize("Cerrado"), Some("Savanna"));
        assert_eq!(v.canonicalize("city"), Some("Urban area"));
    }

    #[test]
    fn alias_to_unknown_term_fails() {
        let mut v = Vocabulary::from_terms("t", &["A"]);
        assert!(!v.add_alias("x", "Nope"));
        assert!(v.add_alias("x", "a")); // canonical lookup is normalized too
        assert_eq!(v.canonicalize("X"), Some("A"));
    }

    #[test]
    fn add_term_idempotent() {
        let mut v = Vocabulary::new("t");
        v.add_term("Forest");
        v.add_term("forest");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn builtin_vocabularies_nonempty() {
        assert!(!habitats().is_empty());
        assert!(!atmospheric_conditions().is_empty());
        assert!(sound_formats().contains("wav"));
        assert!(sound_formats().contains("Magnetic Tape"));
    }
}
