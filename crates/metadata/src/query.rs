//! Metadata-based retrieval — the access path the paper's case study
//! protects: "Another way is to query metadata, usually posing queries on
//! fields such as species taxonomy, and location where the sound was
//! recorded. Queries on metadata are limited to the stored fields, which
//! are often incomplete or blank" (§II-C).
//!
//! A [`Filter`] is a composable predicate over records; a [`Query`] is a
//! filter plus result shaping. Because filters only match *typed, filled*
//! fields, the scope of answerable queries literally grows as curation
//! fills and types fields — the paper's second direction ("enhancing the
//! scope of queries that can be supported"), measured in `exp_queries`.

use serde::{Deserialize, Serialize};

use crate::record::Record;
use crate::value::{Date, Value};

/// A composable predicate over a record.
///
/// # Example
///
/// ```
/// use preserva_metadata::query::{Filter, Query};
/// use preserva_metadata::record::Record;
/// use preserva_metadata::value::Value;
///
/// let records = vec![
///     Record::new("1").with("species", Value::Text("Hyla faber".into())),
///     Record::new("2").with("species", Value::Text("Scinax ruber".into())),
/// ];
/// let q = Query::new(Filter::species("hyla faber")); // case-insensitive
/// assert_eq!(q.count(&records), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Text field equals (case/whitespace-insensitive).
    TextEq {
        /// Field to test.
        field: String,
        /// Expected text (normalized before comparison).
        value: String,
    },
    /// Text field contains the needle (case-insensitive).
    TextContains {
        /// Field to test.
        field: String,
        /// Substring to look for (case-insensitive).
        needle: String,
    },
    /// Typed date field within `[from, to]` inclusive.
    DateRange {
        /// Field to test (must hold a typed date).
        field: String,
        /// Inclusive start.
        from: Date,
        /// Inclusive end.
        to: Date,
    },
    /// Numeric field within `[min, max]` inclusive.
    NumericRange {
        /// Field to test.
        field: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Coordinates field within the bounding box.
    SpatialBox {
        /// Field to test (must hold coordinates).
        field: String,
        /// Southern edge.
        min_lat: f64,
        /// Northern edge.
        max_lat: f64,
        /// Western edge.
        min_lon: f64,
        /// Eastern edge.
        max_lon: f64,
    },
    /// Field present and non-blank.
    Filled {
        /// Field that must be present and non-blank.
        field: String,
    },
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

fn norm(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

impl Filter {
    /// Whether `record` satisfies this filter. Missing or wrongly-typed
    /// fields never match (a blank field cannot answer a query — that is
    /// the point the paper makes about incomplete metadata).
    pub fn matches(&self, record: &Record) -> bool {
        match self {
            Filter::TextEq { field, value } => record
                .get_text(field)
                .map(|s| norm(s) == norm(value))
                .unwrap_or(false),
            Filter::TextContains { field, needle } => record
                .get_text(field)
                .map(|s| norm(s).contains(&norm(needle)))
                .unwrap_or(false),
            Filter::DateRange { field, from, to } => match record.get(field) {
                Some(Value::Date(d)) => d >= from && d <= to,
                _ => false,
            },
            Filter::NumericRange { field, min, max } => record
                .get(field)
                .and_then(Value::as_f64)
                .map(|v| v >= *min && v <= *max)
                .unwrap_or(false),
            Filter::SpatialBox {
                field,
                min_lat,
                max_lat,
                min_lon,
                max_lon,
            } => match record.get(field) {
                Some(Value::Coordinates(c)) => {
                    c.lat >= *min_lat && c.lat <= *max_lat && c.lon >= *min_lon && c.lon <= *max_lon
                }
                _ => false,
            },
            Filter::Filled { field } => record.is_filled(field),
            Filter::And(fs) => fs.iter().all(|f| f.matches(record)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(record)),
            Filter::Not(f) => !f.matches(record),
        }
    }

    /// Convenience: `species == value`.
    pub fn species(value: &str) -> Filter {
        Filter::TextEq {
            field: "species".into(),
            value: value.into(),
        }
    }
}

/// A query: filter + shaping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Predicate records must satisfy.
    pub filter: Filter,
    /// Maximum results (`None` = all).
    pub limit: Option<usize>,
}

impl Query {
    /// A query returning every match.
    pub fn new(filter: Filter) -> Query {
        Query {
            filter,
            limit: None,
        }
    }

    /// Cap results (builder style).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Run against an in-memory collection, preserving input order.
    pub fn run<'a>(&self, records: &'a [Record]) -> Vec<&'a Record> {
        let it = records.iter().filter(|r| self.filter.matches(r));
        match self.limit {
            Some(n) => it.take(n).collect(),
            None => it.collect(),
        }
    }

    /// Count matches without materializing.
    pub fn count(&self, records: &[Record]) -> usize {
        records.iter().filter(|r| self.filter.matches(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Coordinates;

    fn records() -> Vec<Record> {
        vec![
            Record::new("1")
                .with("species", Value::Text("Hyla faber".into()))
                .with("state", Value::Text("São Paulo".into()))
                .with("collect_date", Value::Date(Date::new(1982, 3, 15).unwrap()))
                .with("air_temperature_c", Value::Float(24.0))
                .with(
                    "coordinates",
                    Value::Coordinates(Coordinates::new(-22.9, -47.0).unwrap()),
                ),
            Record::new("2")
                .with("species", Value::Text("Scinax ruber".into()))
                .with("state", Value::Text("Amazonas".into()))
                .with("collect_date", Value::Text("15.III.1982".into())), // untyped!
            Record::new("3")
                .with("species", Value::Text("  hyla   faber ".into()))
                .with("state", Value::Text("São Paulo".into())),
        ]
    }

    #[test]
    fn text_eq_normalizes() {
        let f = Filter::species("HYLA FABER");
        let rs = records();
        let hits: Vec<&str> = Query::new(f)
            .run(&rs)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(hits, vec!["1", "3"]); // dirty spelling still matches
    }

    #[test]
    fn date_range_needs_typed_dates() {
        let f = Filter::DateRange {
            field: "collect_date".into(),
            from: Date::new(1980, 1, 1).unwrap(),
            to: Date::new(1985, 12, 31).unwrap(),
        };
        let rs = records();
        // Record 2's date is legacy text → not queryable until curated.
        assert_eq!(Query::new(f).count(&rs), 1);
    }

    #[test]
    fn numeric_and_spatial() {
        let rs = records();
        let warm = Filter::NumericRange {
            field: "air_temperature_c".into(),
            min: 20.0,
            max: 30.0,
        };
        assert_eq!(Query::new(warm).count(&rs), 1);
        let sp_box = Filter::SpatialBox {
            field: "coordinates".into(),
            min_lat: -24.0,
            max_lat: -21.0,
            min_lon: -48.0,
            max_lon: -46.0,
        };
        assert_eq!(Query::new(sp_box).count(&rs), 1);
    }

    #[test]
    fn boolean_composition() {
        let rs = records();
        let f = Filter::And(vec![
            Filter::TextEq {
                field: "state".into(),
                value: "são paulo".into(),
            },
            Filter::Not(Box::new(Filter::Filled {
                field: "coordinates".into(),
            })),
        ]);
        let hits: Vec<&str> = Query::new(f)
            .run(&rs)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(hits, vec!["3"]);
        let either = Filter::Or(vec![
            Filter::species("Hyla faber"),
            Filter::species("Scinax ruber"),
        ]);
        assert_eq!(Query::new(either).count(&rs), 3);
    }

    #[test]
    fn limit_caps_results() {
        let rs = records();
        let q = Query::new(Filter::Filled {
            field: "species".into(),
        })
        .limit(2);
        assert_eq!(q.run(&rs).len(), 2);
    }

    #[test]
    fn contains_matches_substring() {
        let rs = records();
        let f = Filter::TextContains {
            field: "species".into(),
            needle: "faber".into(),
        };
        assert_eq!(Query::new(f).count(&rs), 2);
        let none = Filter::TextContains {
            field: "species".into(),
            needle: "zzz".into(),
        };
        assert_eq!(Query::new(none).count(&rs), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let q = Query::new(Filter::And(vec![
            Filter::species("Hyla faber"),
            Filter::Filled {
                field: "coordinates".into(),
            },
        ]))
        .limit(10);
        let s = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&s).unwrap();
        assert_eq!(q, back);
    }
}
