//! Parsers for the heterogeneous legacy formats found in collections whose
//! core dates to the 1960s: dates written four different ways (including
//! the zoologists' roman-numeral month convention) and coordinates in
//! decimal or degree-minute-second notation.

use crate::value::{Coordinates, Date, TimeOfDay};

const MONTH_NAMES: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn roman_month(s: &str) -> Option<u8> {
    let m = match s.to_ascii_uppercase().as_str() {
        "I" => 1,
        "II" => 2,
        "III" => 3,
        "IV" => 4,
        "V" => 5,
        "VI" => 6,
        "VII" => 7,
        "VIII" => 8,
        "IX" => 9,
        "X" => 10,
        "XI" => 11,
        "XII" => 12,
        _ => return None,
    };
    Some(m)
}

fn name_month(s: &str) -> Option<u8> {
    let lower = s.to_lowercase();
    MONTH_NAMES
        .iter()
        .position(|m| *m == lower || m.starts_with(&lower) && lower.len() >= 3)
        .map(|i| i as u8 + 1)
}

/// Parse a date written in any of the formats observed in legacy metadata:
///
/// * ISO: `1982-03-15`
/// * day-first slashes (Brazilian convention): `15/03/1982`
/// * roman-numeral month: `15.III.1982` or `15-III-1982`
/// * month name: `March 15, 1982` or `15 March 1982`
pub fn parse_date(input: &str) -> Option<Date> {
    let s = input.trim();
    if s.is_empty() {
        return None;
    }

    // ISO yyyy-mm-dd
    let iso: Vec<&str> = s.split('-').collect();
    if iso.len() == 3 {
        if let (Ok(y), Ok(m), Ok(d)) = (
            iso[0].parse::<i32>(),
            iso[1].parse::<u8>(),
            iso[2].parse::<u8>(),
        ) {
            if iso[0].len() == 4 {
                return Date::new(y, m, d);
            }
        }
        // 15-III-1982
        if let (Ok(d), Some(m), Ok(y)) = (
            iso[0].parse::<u8>(),
            roman_month(iso[1]),
            iso[2].parse::<i32>(),
        ) {
            return Date::new(y, m, d);
        }
    }

    // dd/mm/yyyy
    let slash: Vec<&str> = s.split('/').collect();
    if slash.len() == 3 {
        if let (Ok(d), Ok(m), Ok(y)) = (
            slash[0].parse::<u8>(),
            slash[1].parse::<u8>(),
            slash[2].parse::<i32>(),
        ) {
            return Date::new(y, m, d);
        }
    }

    // dd.III.yyyy
    let dots: Vec<&str> = s.split('.').collect();
    if dots.len() == 3 {
        if let (Ok(d), Some(m), Ok(y)) = (
            dots[0].parse::<u8>(),
            roman_month(dots[1]),
            dots[2].parse::<i32>(),
        ) {
            return Date::new(y, m, d);
        }
    }

    // "March 15, 1982" / "15 March 1982"
    let words: Vec<&str> = s.split([' ', ',']).filter(|w| !w.is_empty()).collect();
    if words.len() == 3 {
        if let Some(m) = name_month(words[0]) {
            if let (Ok(d), Ok(y)) = (words[1].parse::<u8>(), words[2].parse::<i32>()) {
                return Date::new(y, m, d);
            }
        }
        if let Some(m) = name_month(words[1]) {
            if let (Ok(d), Ok(y)) = (words[0].parse::<u8>(), words[2].parse::<i32>()) {
                return Date::new(y, m, d);
            }
        }
    }

    None
}

/// Parse a time of day: `07:45`, `7:45`, `0745`, `7h45`.
pub fn parse_time(input: &str) -> Option<TimeOfDay> {
    let s = input.trim();
    for sep in [':', 'h'] {
        if let Some((h, m)) = s.split_once(sep) {
            if let (Ok(h), Ok(m)) = (h.trim().parse::<u8>(), m.trim().parse::<u8>()) {
                return TimeOfDay::new(h, m);
            }
        }
    }
    if s.len() == 4 && s.chars().all(|c| c.is_ascii_digit()) {
        let h = s[..2].parse::<u8>().ok()?;
        let m = s[2..].parse::<u8>().ok()?;
        return TimeOfDay::new(h, m);
    }
    None
}

fn parse_dms_component(s: &str) -> Option<f64> {
    // "22°49'10\"S" or "22 49 10 S" or decimal "−22.82".
    let s = s.trim();
    let (body, sign) = match s.chars().last()? {
        'S' | 's' | 'W' | 'w' => (&s[..s.len() - 1], -1.0),
        'N' | 'n' | 'E' | 'e' => (&s[..s.len() - 1], 1.0),
        _ => (s, f64::NAN), // sign from numeric value itself
    };
    let parts: Vec<f64> = body
        .split(['°', '\'', '"', ' '])
        .filter(|p| !p.trim().is_empty())
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .ok()?;
    let magnitude = match parts.as_slice() {
        [d] => d.abs(),
        [d, m] => d.abs() + m / 60.0,
        [d, m, sec] => d.abs() + m / 60.0 + sec / 3600.0,
        _ => return None,
    };
    if sign.is_nan() {
        // Decimal form: keep its own sign.
        match parts.as_slice() {
            [d] => Some(*d),
            _ => None, // multi-part needs a hemisphere letter
        }
    } else {
        Some(sign * magnitude)
    }
}

/// Parse coordinates in decimal (`-22.82, -47.07`) or DMS
/// (`22°49'10"S 47°04'20"W`) notation.
pub fn parse_coordinates(input: &str) -> Option<Coordinates> {
    let s = input.trim();
    // Try comma-separated decimal first.
    if let Some((a, b)) = s.split_once(',') {
        if let (Ok(lat), Ok(lon)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            return Coordinates::new(lat, lon);
        }
        let (lat, lon) = (parse_dms_component(a)?, parse_dms_component(b)?);
        return Coordinates::new(lat, lon);
    }
    // Space-separated DMS: split at the first hemisphere letter of lat.
    for (i, c) in s.char_indices() {
        if matches!(c, 'S' | 's' | 'N' | 'n') {
            let (a, b) = s.split_at(i + 1);
            if b.trim().is_empty() {
                return None;
            }
            let (lat, lon) = (parse_dms_component(a)?, parse_dms_component(b)?);
            return Coordinates::new(lat, lon);
        }
    }
    None
}

/// Format a date in the collection's canonical ISO form.
pub fn format_date(d: &Date) -> String {
    d.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_dates() {
        assert_eq!(parse_date("1982-03-15"), Date::new(1982, 3, 15));
        assert_eq!(parse_date(" 2013-10-01 "), Date::new(2013, 10, 1));
        assert_eq!(parse_date("1982-13-15"), None);
    }

    #[test]
    fn brazilian_slash_dates() {
        assert_eq!(parse_date("15/03/1982"), Date::new(1982, 3, 15));
        assert_eq!(parse_date("31/02/1982"), None);
    }

    #[test]
    fn roman_numeral_dates() {
        assert_eq!(parse_date("15.III.1982"), Date::new(1982, 3, 15));
        assert_eq!(parse_date("1.XII.1965"), Date::new(1965, 12, 1));
        assert_eq!(parse_date("15-III-1982"), Date::new(1982, 3, 15));
        assert_eq!(parse_date("15.XIII.1982"), None);
    }

    #[test]
    fn month_name_dates() {
        assert_eq!(parse_date("March 15, 1982"), Date::new(1982, 3, 15));
        assert_eq!(parse_date("15 March 1982"), Date::new(1982, 3, 15));
        assert_eq!(parse_date("15 Mar 1982"), Date::new(1982, 3, 15));
    }

    #[test]
    fn unparseable_dates() {
        assert_eq!(parse_date(""), None);
        assert_eq!(parse_date("sometime in spring"), None);
        assert_eq!(parse_date("99/99/9999"), None);
    }

    #[test]
    fn iso_roundtrip() {
        let d = parse_date("1982-03-15").unwrap();
        assert_eq!(parse_date(&format_date(&d)), Some(d));
    }

    #[test]
    fn times() {
        assert_eq!(parse_time("07:45"), TimeOfDay::new(7, 45));
        assert_eq!(parse_time("7h45"), TimeOfDay::new(7, 45));
        assert_eq!(parse_time("0745"), TimeOfDay::new(7, 45));
        assert_eq!(parse_time("25:00"), None);
        assert_eq!(parse_time("noon"), None);
    }

    #[test]
    fn decimal_coordinates() {
        let c = parse_coordinates("-22.82, -47.07").unwrap();
        assert!((c.lat + 22.82).abs() < 1e-9);
        assert!((c.lon + 47.07).abs() < 1e-9);
    }

    #[test]
    fn dms_coordinates() {
        let c = parse_coordinates("22°49'10\"S 47°04'20\"W").unwrap();
        assert!((c.lat + 22.8194).abs() < 1e-3, "lat {}", c.lat);
        assert!((c.lon + 47.0722).abs() < 1e-3, "lon {}", c.lon);
    }

    #[test]
    fn dms_with_comma() {
        let c = parse_coordinates("22°49'S, 47°04'W").unwrap();
        assert!(c.lat < 0.0 && c.lon < 0.0);
    }

    #[test]
    fn northern_hemisphere() {
        let c = parse_coordinates("40°26'N 79°58'W").unwrap();
        assert!(c.lat > 0.0 && c.lon < 0.0);
    }

    #[test]
    fn invalid_coordinates() {
        assert!(parse_coordinates("").is_none());
        assert!(parse_coordinates("somewhere in the forest").is_none());
        assert!(parse_coordinates("95.0, 0.0").is_none()); // out of range
    }
}
