#![warn(missing_docs)]

//! `preserva-metadata` — the observation-metadata model underlying the
//! FNJV animal sound collection (paper §II-C, Table II).
//!
//! An *observation record* asserts that an entity was observed and a set of
//! measurements recorded. Records here are typed field maps validated
//! against a [`schema::Schema`]; the 51-field FNJV schema (of which the
//! paper lists 22 in Table II) ships in [`fnjv`].
//!
//! The crate also provides what "basic metadata cleaning" needs:
//! domain constraints ([`domains`]), controlled vocabularies ([`vocab`]),
//! parsers for the heterogeneous legacy date / coordinate formats found in
//! collections dating to the 1960s ([`parse`]), and completeness metrics
//! ([`completeness`]).

pub mod completeness;
pub mod consistency;
pub mod domains;
pub mod export;
pub mod field;
pub mod fnjv;
pub mod parse;
pub mod query;
pub mod record;
pub mod schema;
pub mod value;
pub mod vocab;

pub use field::{FieldDef, FieldGroup};
pub use record::Record;
pub use schema::Schema;
pub use value::{Date, Value};
