//! Completeness metrics: the fraction of fields actually filled, one of
//! the classical quality dimensions the Data Quality Manager computes.

use crate::record::Record;
use crate::schema::Schema;

/// Completeness of one record against a schema: filled fields / declared
/// fields. Optionally restricted to required fields only.
pub fn record_completeness(schema: &Schema, record: &Record, required_only: bool) -> f64 {
    let fields: Vec<&str> = schema
        .fields()
        .iter()
        .filter(|f| !required_only || f.required)
        .map(|f| f.name.as_str())
        .collect();
    if fields.is_empty() {
        return 1.0;
    }
    let filled = fields.iter().filter(|f| record.is_filled(f)).count();
    filled as f64 / fields.len() as f64
}

/// Per-field fill rates over a collection, in schema declaration order.
pub fn field_fill_rates<'a>(schema: &'a Schema, records: &[Record]) -> Vec<(&'a str, f64)> {
    schema
        .fields()
        .iter()
        .map(|f| {
            let filled = records.iter().filter(|r| r.is_filled(&f.name)).count();
            let rate = if records.is_empty() {
                0.0
            } else {
                filled as f64 / records.len() as f64
            };
            (f.name.as_str(), rate)
        })
        .collect()
}

/// Mean record completeness over a collection.
pub fn collection_completeness(schema: &Schema, records: &[Record], required_only: bool) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records
        .iter()
        .map(|r| record_completeness(schema, r, required_only))
        .sum::<f64>()
        / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;
    use crate::field::{FieldDef, FieldGroup};
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldDef::required("a", ValueType::Text, FieldGroup::Other)
                    .with_domain(Domain::NonEmptyText),
                FieldDef::required("b", ValueType::Text, FieldGroup::Other),
                FieldDef::optional("c", ValueType::Text, FieldGroup::Other),
                FieldDef::optional("d", ValueType::Text, FieldGroup::Other),
            ],
        )
    }

    #[test]
    fn record_completeness_counts_filled() {
        let r = Record::new("r")
            .with("a", Value::Text("x".into()))
            .with("c", Value::Text("y".into()));
        assert!((record_completeness(&schema(), &r, false) - 0.5).abs() < 1e-12);
        assert!((record_completeness(&schema(), &r, true) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blank_text_not_counted() {
        let r = Record::new("r").with("a", Value::Text("  ".into()));
        assert_eq!(record_completeness(&schema(), &r, false), 0.0);
    }

    #[test]
    fn fill_rates_per_field() {
        let r1 = Record::new("1").with("a", Value::Text("x".into()));
        let r2 = Record::new("2")
            .with("a", Value::Text("x".into()))
            .with("b", Value::Text("y".into()));
        let s = schema();
        let rates = field_fill_rates(&s, &[r1, r2]);
        assert_eq!(rates[0], ("a", 1.0));
        assert_eq!(rates[1], ("b", 0.5));
        assert_eq!(rates[2], ("c", 0.0));
    }

    #[test]
    fn collection_completeness_averages() {
        let r1 = Record::new("1").with("a", Value::Text("x".into())); // 0.25
        let r2 = Record::new("2") // 1.0
            .with("a", Value::Text("x".into()))
            .with("b", Value::Text("x".into()))
            .with("c", Value::Text("x".into()))
            .with("d", Value::Text("x".into()));
        let c = collection_completeness(&schema(), &[r1, r2], false);
        assert!((c - 0.625).abs() < 1e-12);
    }

    #[test]
    fn empty_collection_is_zero() {
        assert_eq!(collection_completeness(&schema(), &[], false), 0.0);
    }
}
