//! Tabular export of observation records — the interchange surface
//! collections actually publish (the FNJV web site serves its metadata as
//! tables; aggregators ingest CSV mapped to Darwin Core terms).
//!
//! [`to_csv`] writes RFC-4180 CSV with a caller-chosen column set;
//! [`DWC_MAPPING`] maps FNJV field names onto Darwin Core terms so
//! exports can feed biodiversity aggregators.

use crate::record::Record;
use crate::schema::Schema;

/// FNJV field → Darwin Core term, for the fields Darwin Core covers.
pub const DWC_MAPPING: &[(&str, &str)] = &[
    ("phylum", "dwc:phylum"),
    ("class", "dwc:class"),
    ("order", "dwc:order"),
    ("family", "dwc:family"),
    ("genus", "dwc:genus"),
    ("species", "dwc:scientificName"),
    ("gender", "dwc:sex"),
    ("number_of_individuals", "dwc:individualCount"),
    ("collect_date", "dwc:eventDate"),
    ("collect_time", "dwc:eventTime"),
    ("country", "dwc:country"),
    ("state", "dwc:stateProvince"),
    ("city", "dwc:municipality"),
    ("location", "dwc:locality"),
    ("habitat", "dwc:habitat"),
    ("coordinates", "dwc:decimalLatitude+decimalLongitude"),
    (
        "coordinate_uncertainty_m",
        "dwc:coordinateUncertaintyInMeters",
    ),
    ("recordist", "dwc:recordedBy"),
    ("identified_by", "dwc:identifiedBy"),
];

/// The Darwin Core term for an FNJV field, when one exists.
pub fn dwc_term(field: &str) -> Option<&'static str> {
    DWC_MAPPING
        .iter()
        .find(|(f, _)| *f == field)
        .map(|(_, t)| *t)
}

/// RFC-4180 escaping: quote when the cell contains comma, quote or
/// newline; double embedded quotes.
fn escape_csv(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Export records as CSV. The first column is always the record id;
/// `columns` picks and orders the rest. Missing fields render empty.
pub fn to_csv(records: &[Record], columns: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("id");
    for c in columns {
        out.push(',');
        out.push_str(&escape_csv(c));
    }
    out.push('\n');
    for r in records {
        out.push_str(&escape_csv(&r.id));
        for c in columns {
            out.push(',');
            let cell = r.get(c).map(|v| v.to_string()).unwrap_or_default();
            out.push_str(&escape_csv(&cell));
        }
        out.push('\n');
    }
    out
}

/// Export with every schema field as a column, in declaration order.
pub fn to_csv_full(records: &[Record], schema: &Schema) -> String {
    let columns: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    to_csv(records, &columns)
}

/// Parse a CSV produced by [`to_csv`] back into `(header, rows)` of plain
/// strings (round-trip fidelity check; typed re-ingestion goes through
/// the curation pipeline like any legacy import).
pub fn parse_csv(input: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                other => cell.push(other),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Coordinates, Date, Value};

    fn records() -> Vec<Record> {
        vec![
            Record::new("FNJV-1")
                .with("species", Value::Text("Hyla faber".into()))
                .with(
                    "location",
                    Value::Text("Fazenda \"Santa Genebra\", km 2".into()),
                )
                .with("collect_date", Value::Date(Date::new(1982, 3, 15).unwrap()))
                .with(
                    "coordinates",
                    Value::Coordinates(Coordinates::new(-22.9, -47.06).unwrap()),
                ),
            Record::new("FNJV-2").with("species", Value::Text("Scinax ruber".into())),
        ]
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&records(), &["species", "collect_date"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "id,species,collect_date");
        assert_eq!(lines[1], "FNJV-1,Hyla faber,1982-03-15");
        assert_eq!(lines[2], "FNJV-2,Scinax ruber,");
    }

    #[test]
    fn embedded_commas_and_quotes_escaped() {
        let csv = to_csv(&records(), &["location", "coordinates"]);
        assert!(csv.contains("\"Fazenda \"\"Santa Genebra\"\", km 2\""));
        // Coordinates render as "lat,lon" → must be quoted.
        assert!(csv.contains("\"-22.90000,-47.06000\""));
    }

    #[test]
    fn csv_roundtrip_preserves_cells() {
        let csv = to_csv(&records(), &["species", "location", "coordinates"]);
        let rows = parse_csv(&csv);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["id", "species", "location", "coordinates"]);
        assert_eq!(rows[1][2], "Fazenda \"Santa Genebra\", km 2");
        assert_eq!(rows[1][3], "-22.90000,-47.06000");
        assert_eq!(rows[2][1], "Scinax ruber");
    }

    #[test]
    fn full_export_covers_all_51_fields() {
        let schema = crate::fnjv::schema();
        let csv = to_csv_full(&records(), &schema);
        let header = csv.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 52); // id + 51 fields
    }

    #[test]
    fn dwc_terms_resolve() {
        assert_eq!(dwc_term("species"), Some("dwc:scientificName"));
        assert_eq!(dwc_term("state"), Some("dwc:stateProvince"));
        assert_eq!(dwc_term("frequency_khz"), None); // no DwC term for it
                                                     // Every mapped field exists in the FNJV schema.
        let schema = crate::fnjv::schema();
        for (field, _) in DWC_MAPPING {
            assert!(schema.field(field).is_some(), "unknown field {field}");
        }
    }
}
