//! Schemas: ordered field definitions + record validation.

use serde::{Deserialize, Serialize};

use crate::domains::DomainViolation;
use crate::field::{FieldDef, FieldGroup};
use crate::record::Record;
use crate::value::ValueType;

/// A named, ordered collection of field definitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name.
    pub name: String,
    fields: Vec<FieldDef>,
}

/// One problem found while validating a record against a schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemaViolation {
    /// Required field absent or blank.
    MissingRequired {
        /// The absent/blank required field.
        field: String,
    },
    /// Value type differs from the declaration.
    TypeMismatch {
        /// The offending field.
        field: String,
        /// Declared type.
        expected: ValueType,
        /// Actual type.
        got: ValueType,
    },
    /// Value violates the field's domain.
    Domain {
        /// The offending field.
        field: String,
        /// The domain check that failed.
        violation: DomainViolation,
    },
    /// Field not declared in the schema.
    UnknownField {
        /// The undeclared field.
        field: String,
    },
}

impl std::fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaViolation::MissingRequired { field } => {
                write!(f, "required field {field:?} is missing or blank")
            }
            SchemaViolation::TypeMismatch {
                field,
                expected,
                got,
            } => {
                write!(f, "field {field:?}: expected {expected:?}, got {got:?}")
            }
            SchemaViolation::Domain { field, violation } => {
                write!(f, "field {field:?}: {violation}")
            }
            SchemaViolation::UnknownField { field } => {
                write!(f, "field {field:?} not in schema")
            }
        }
    }
}

impl Schema {
    /// Create a schema from field definitions. Field names must be unique;
    /// duplicates panic (schemas are built from code, not input).
    pub fn new(name: &str, fields: Vec<FieldDef>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for f in &fields {
            assert!(seen.insert(f.name.clone()), "duplicate field {:?}", f.name);
        }
        Schema {
            name: name.to_string(),
            fields,
        }
    }

    /// All field definitions, in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Look up one field definition.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Fields belonging to a Table II group.
    pub fn fields_in_group(&self, group: FieldGroup) -> impl Iterator<Item = &FieldDef> {
        self.fields.iter().filter(move |f| f.group == group)
    }

    /// Names of required fields.
    pub fn required_fields(&self) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(|f| f.required)
            .map(|f| f.name.as_str())
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema declares no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Validate a record: missing required fields, unknown fields, type
    /// mismatches and domain violations. An empty result means valid.
    pub fn validate(&self, record: &Record) -> Vec<SchemaViolation> {
        let mut out = Vec::new();
        for f in &self.fields {
            match record.get(&f.name) {
                None => {
                    if f.required {
                        out.push(SchemaViolation::MissingRequired {
                            field: f.name.clone(),
                        });
                    }
                }
                Some(v) => {
                    if v.value_type() != f.value_type {
                        out.push(SchemaViolation::TypeMismatch {
                            field: f.name.clone(),
                            expected: f.value_type,
                            got: v.value_type(),
                        });
                        continue;
                    }
                    if f.required && !record.is_filled(&f.name) {
                        out.push(SchemaViolation::MissingRequired {
                            field: f.name.clone(),
                        });
                        continue;
                    }
                    if record.is_filled(&f.name) {
                        if let Err(violation) = f.domain.check(v) {
                            out.push(SchemaViolation::Domain {
                                field: f.name.clone(),
                                violation,
                            });
                        }
                    }
                }
            }
        }
        for (name, _) in record.fields() {
            if self.field(name).is_none() {
                out.push(SchemaViolation::UnknownField {
                    field: name.to_string(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(
            "test",
            vec![
                FieldDef::required("species", ValueType::Text, FieldGroup::Identification)
                    .with_domain(Domain::NonEmptyText),
                FieldDef::optional(
                    "air_temperature_c",
                    ValueType::Float,
                    FieldGroup::ObservationConditions,
                )
                .with_domain(Domain::NumericRange {
                    min: -10.0,
                    max: 50.0,
                }),
            ],
        )
    }

    #[test]
    fn valid_record_passes() {
        let r = Record::new("r")
            .with("species", Value::Text("Hyla faber".into()))
            .with("air_temperature_c", Value::Float(24.0));
        assert!(schema().validate(&r).is_empty());
    }

    #[test]
    fn missing_required_reported() {
        let r = Record::new("r");
        let v = schema().validate(&r);
        assert_eq!(
            v,
            vec![SchemaViolation::MissingRequired {
                field: "species".into()
            }]
        );
    }

    #[test]
    fn blank_required_text_reported() {
        let r = Record::new("r").with("species", Value::Text(" ".into()));
        let v = schema().validate(&r);
        assert!(matches!(v[0], SchemaViolation::MissingRequired { .. }));
    }

    #[test]
    fn type_mismatch_reported_before_domain() {
        let r = Record::new("r")
            .with("species", Value::Text("x".into()))
            .with("air_temperature_c", Value::Text("hot".into()));
        let v = schema().validate(&r);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], SchemaViolation::TypeMismatch { .. }));
    }

    #[test]
    fn domain_violation_reported() {
        let r = Record::new("r")
            .with("species", Value::Text("x".into()))
            .with("air_temperature_c", Value::Float(99.0));
        let v = schema().validate(&r);
        assert!(matches!(v[0], SchemaViolation::Domain { .. }));
    }

    #[test]
    fn unknown_field_reported() {
        let r = Record::new("r")
            .with("species", Value::Text("x".into()))
            .with("bogus", Value::Integer(1));
        let v = schema().validate(&r);
        assert!(v
            .iter()
            .any(|x| matches!(x, SchemaViolation::UnknownField { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_fields_panic() {
        Schema::new(
            "bad",
            vec![
                FieldDef::optional("a", ValueType::Text, FieldGroup::Other),
                FieldDef::optional("a", ValueType::Text, FieldGroup::Other),
            ],
        );
    }

    #[test]
    fn group_filter_and_required_list() {
        let s = schema();
        assert_eq!(s.fields_in_group(FieldGroup::Identification).count(), 1);
        assert_eq!(s.required_fields().collect::<Vec<_>>(), vec!["species"]);
    }
}
