//! The FNJV collection schema.
//!
//! The paper reports 51 metadata fields and lists 22 in Table II across
//! three groups. We declare all 51: the 22 published ones exactly as in
//! the table (Table II lists "Microphone model" twice; we keep one and add
//! "Microphone serial number", the duplicate's most likely referent), plus
//! 29 collection-management fields reconstructed from the FNJV web site's
//! public record layout and Darwin Core conventions.

use crate::domains::Domain;
use crate::field::{FieldDef, FieldGroup};
use crate::schema::Schema;
use crate::value::ValueType;
use crate::vocab;

/// Names of the Table II row-1 fields (identification).
pub const IDENTIFICATION_FIELDS: [&str; 8] = [
    "phylum",
    "class",
    "order",
    "family",
    "genus",
    "species",
    "gender",
    "number_of_individuals",
];

/// Names of the Table II row-2 fields (observation conditions).
pub const CONDITION_FIELDS: [&str; 10] = [
    "collect_time",
    "collect_date",
    "country",
    "state",
    "city",
    "location",
    "habitat",
    "micro_habitat",
    "air_temperature_c",
    "atmospheric_conditions",
];

/// Names of the Table II row-3 fields (recording features).
pub const RECORDING_FIELDS: [&str; 5] = [
    "recording_device",
    "microphone_model",
    "microphone_serial",
    "sound_file_format",
    "frequency_khz",
];

/// Build the full 51-field FNJV schema.
pub fn schema() -> Schema {
    use FieldGroup::*;
    use ValueType::*;

    let mut fields: Vec<FieldDef> = Vec::with_capacity(51);

    // --- Row 1: identification (8 fields, all in Table II) ---
    for name in ["phylum", "class", "order", "family", "genus", "species"] {
        fields.push(
            FieldDef::required(name, Text, Identification)
                .with_domain(Domain::NonEmptyText)
                .table2(),
        );
    }
    fields.push(FieldDef::optional("gender", Text, Identification).table2());
    fields.push(
        FieldDef::optional("number_of_individuals", Integer, Identification)
            .with_domain(Domain::MinCount { min: 1 })
            .table2(),
    );

    // --- Row 2: observation conditions (10 fields, all in Table II) ---
    fields.push(FieldDef::optional("collect_time", Time, ObservationConditions).table2());
    fields.push(
        FieldDef::required("collect_date", Date, ObservationConditions)
            .with_domain(Domain::YearRange {
                min: 1950,
                max: 2014,
            })
            .table2(),
    );
    fields.push(
        FieldDef::required("country", Text, ObservationConditions)
            .with_domain(Domain::NonEmptyText)
            .table2(),
    );
    fields.push(FieldDef::optional("state", Text, ObservationConditions).table2());
    fields.push(FieldDef::optional("city", Text, ObservationConditions).table2());
    fields.push(FieldDef::optional("location", Text, ObservationConditions).table2());
    fields.push(
        FieldDef::optional("habitat", Text, ObservationConditions)
            .with_domain(Domain::Controlled(vocab::habitats()))
            .table2(),
    );
    fields.push(FieldDef::optional("micro_habitat", Text, ObservationConditions).table2());
    fields.push(
        FieldDef::optional("air_temperature_c", Float, ObservationConditions)
            .with_domain(Domain::NumericRange {
                min: -10.0,
                max: 50.0,
            })
            .table2(),
    );
    fields.push(
        FieldDef::optional("atmospheric_conditions", Text, ObservationConditions)
            .with_domain(Domain::Controlled(vocab::atmospheric_conditions()))
            .table2(),
    );

    // --- Row 3: recording features (5 fields in Table II after the
    //     duplicate is folded) ---
    fields.push(FieldDef::optional("recording_device", Text, RecordingFeatures).table2());
    fields.push(FieldDef::optional("microphone_model", Text, RecordingFeatures).table2());
    // Table II prints "Microphone model" twice; the duplicate is folded, so
    // the serial-number stand-in is NOT part of the published 22.
    fields.push(FieldDef::optional(
        "microphone_serial",
        Text,
        RecordingFeatures,
    ));
    fields.push(
        FieldDef::optional("sound_file_format", Text, RecordingFeatures)
            .with_domain(Domain::Controlled(vocab::sound_formats()))
            .table2(),
    );
    fields.push(
        FieldDef::optional("frequency_khz", Float, RecordingFeatures).with_domain(
            Domain::NumericRange {
                min: 0.1,
                max: 400.0,
            },
        ),
    );
    // Table II lists "Frequency (kHz)":
    if let Some(f) = fields.last_mut() {
        f.in_table2 = true;
    }

    // --- The remaining 28 collection-management fields (not in Table II) ---
    let other_text: [&str; 20] = [
        "recordist",
        "recordist_institution",
        "collection_code",
        "catalog_status",
        "original_media",
        "digitization_operator",
        "tape_number",
        "track_number",
        "vocalization_type",
        "identification_confidence",
        "identified_by",
        "subspecies",
        "common_name",
        "life_stage",
        "behaviour_notes",
        "equipment_notes",
        "copyright_holder",
        "usage_restrictions",
        "related_publications",
        "remarks",
    ];
    for name in other_text {
        fields.push(FieldDef::optional(name, Text, Other));
    }
    fields.push(FieldDef::optional("digitization_date", Date, Other));
    fields.push(FieldDef::optional("metadata_entry_date", Date, Other));
    fields.push(
        FieldDef::optional("recording_duration_s", Float, Other).with_domain(
            Domain::NumericRange {
                min: 0.0,
                max: 36_000.0,
            },
        ),
    );
    fields.push(
        FieldDef::optional("sample_rate_hz", Integer, Other).with_domain(Domain::NumericRange {
            min: 8_000.0,
            max: 384_000.0,
        }),
    );
    fields.push(FieldDef::optional("bit_depth", Integer, Other).with_domain(
        Domain::NumericRange {
            min: 8.0,
            max: 32.0,
        },
    ));
    fields.push(
        FieldDef::optional("channels", Integer, Other)
            .with_domain(Domain::NumericRange { min: 1.0, max: 8.0 }),
    );
    fields.push(FieldDef::optional("coordinates", Coordinates, Other));
    fields.push(
        FieldDef::optional("coordinate_uncertainty_m", Float, Other).with_domain(
            Domain::NumericRange {
                min: 0.0,
                max: 1_000_000.0,
            },
        ),
    );

    Schema::new("fnjv", fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::value::{Date as D, Value};

    #[test]
    fn schema_has_51_fields() {
        assert_eq!(schema().len(), 51);
    }

    #[test]
    fn table2_subset_has_22_fields() {
        let n = schema().fields().iter().filter(|f| f.in_table2).count();
        assert_eq!(n, 22);
    }

    #[test]
    fn table2_groups_match_paper_rows() {
        let s = schema();
        let row1 = s
            .fields()
            .iter()
            .filter(|f| f.in_table2 && f.group == FieldGroup::Identification)
            .count();
        let row2 = s
            .fields()
            .iter()
            .filter(|f| f.in_table2 && f.group == FieldGroup::ObservationConditions)
            .count();
        let row3 = s
            .fields()
            .iter()
            .filter(|f| f.in_table2 && f.group == FieldGroup::RecordingFeatures)
            .count();
        // Row 3 lists 5 entries but "Microphone model" twice → 4 distinct.
        assert_eq!((row1, row2, row3), (8, 10, 4));
        assert_eq!(row1 + row2 + row3, 22);
    }

    #[test]
    fn declared_field_lists_exist_in_schema() {
        let s = schema();
        for name in IDENTIFICATION_FIELDS
            .iter()
            .chain(CONDITION_FIELDS.iter())
            .chain(RECORDING_FIELDS.iter())
        {
            assert!(s.field(name).is_some(), "missing field {name}");
        }
    }

    #[test]
    fn realistic_record_validates() {
        let r = Record::new("FNJV-000001")
            .with("phylum", Value::Text("Chordata".into()))
            .with("class", Value::Text("Amphibia".into()))
            .with("order", Value::Text("Anura".into()))
            .with("family", Value::Text("Hylidae".into()))
            .with("genus", Value::Text("Scinax".into()))
            .with("species", Value::Text("Scinax fuscomarginatus".into()))
            .with("collect_date", Value::Date(D::new(1978, 11, 3).unwrap()))
            .with("country", Value::Text("Brazil".into()))
            .with("habitat", Value::Text("Forest".into()));
        assert!(schema().validate(&r).is_empty());
    }

    #[test]
    fn pre_1950_date_violates_domain() {
        let r = Record::new("r").with("collect_date", Value::Date(D::new(1900, 1, 1).unwrap()));
        let v = schema().validate(&r);
        assert!(v.iter().any(|x| matches!(
            x,
            crate::schema::SchemaViolation::Domain { field, .. } if field == "collect_date"
        )));
    }
}
