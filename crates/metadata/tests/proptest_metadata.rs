//! Property tests for the metadata layer: parser round-trips, filter
//! algebra laws and completeness bounds.

use proptest::prelude::*;

use preserva_metadata::completeness;
use preserva_metadata::fnjv;
use preserva_metadata::parse;
use preserva_metadata::query::{Filter, Query};
use preserva_metadata::record::Record;
use preserva_metadata::value::{Date, Value};

fn date_strategy() -> impl Strategy<Value = Date> {
    (1950i32..2020, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| Date::new(y, m, d).expect("day <= 28"))
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        "[a-z0-9]{1,8}",
        proptest::option::of("[A-Z][a-z]{2,8} [a-z]{3,10}"),
        proptest::option::of(date_strategy()),
        proptest::option::of(-10.0f64..45.0),
    )
        .prop_map(|(id, species, date, temp)| {
            let mut r = Record::new(id);
            if let Some(s) = species {
                r.set("species", Value::Text(s));
            }
            if let Some(d) = date {
                r.set("collect_date", Value::Date(d));
            }
            if let Some(t) = temp {
                r.set("air_temperature_c", Value::Float(t));
            }
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every valid date survives ISO round-trip, and the legacy renderers
    /// used by the generator parse back to the same date.
    #[test]
    fn date_roundtrips(d in date_strategy()) {
        prop_assert_eq!(parse::parse_date(&d.to_string()), Some(d));
        let roman = ["I","II","III","IV","V","VI","VII","VIII","IX","X","XI","XII"][(d.month-1) as usize];
        prop_assert_eq!(parse::parse_date(&format!("{}.{roman}.{}", d.day, d.year)), Some(d));
        prop_assert_eq!(parse::parse_date(&format!("{:02}/{:02}/{}", d.day, d.month, d.year)), Some(d));
    }

    /// day_number is strictly monotone in calendar order.
    #[test]
    fn day_number_monotone(a in date_strategy(), b in date_strategy()) {
        prop_assert_eq!(a < b, a.day_number() < b.day_number());
        prop_assert_eq!(a == b, a.day_number() == b.day_number());
    }

    /// Filter algebra: double negation, De Morgan, And/Or identities.
    #[test]
    fn filter_algebra_laws(records in proptest::collection::vec(record_strategy(), 1..20)) {
        let f1 = Filter::Filled { field: "species".into() };
        let f2 = Filter::NumericRange { field: "air_temperature_c".into(), min: 0.0, max: 30.0 };
        for r in &records {
            // double negation
            let nn = Filter::Not(Box::new(Filter::Not(Box::new(f1.clone()))));
            prop_assert_eq!(nn.matches(r), f1.matches(r));
            // De Morgan: !(a && b) == !a || !b
            let lhs = Filter::Not(Box::new(Filter::And(vec![f1.clone(), f2.clone()])));
            let rhs = Filter::Or(vec![
                Filter::Not(Box::new(f1.clone())),
                Filter::Not(Box::new(f2.clone())),
            ]);
            prop_assert_eq!(lhs.matches(r), rhs.matches(r));
            // empty And is true; empty Or is false
            prop_assert!(Filter::And(vec![]).matches(r));
            prop_assert!(!Filter::Or(vec![]).matches(r));
        }
        // Query count ≤ record count and equals run().len().
        let q = Query::new(Filter::Or(vec![f1, f2]));
        prop_assert_eq!(q.count(&records), q.run(&records).len());
        prop_assert!(q.count(&records) <= records.len());
    }

    /// Completeness is always within [0, 1] and monotone under filling a
    /// field.
    #[test]
    fn completeness_bounded_and_monotone(mut r in record_strategy()) {
        let schema = fnjv::schema();
        let before = completeness::record_completeness(&schema, &r, false);
        prop_assert!((0.0..=1.0).contains(&before));
        r.set("country", Value::Text("Brazil".into()));
        let after = completeness::record_completeness(&schema, &r, false);
        prop_assert!(after >= before);
        prop_assert!((0.0..=1.0).contains(&after));
    }

    /// Schema validation is deterministic and stable under repetition.
    #[test]
    fn validation_deterministic(r in record_strategy()) {
        let schema = fnjv::schema();
        let v1 = schema.validate(&r);
        let v2 = schema.validate(&r);
        prop_assert_eq!(v1, v2);
    }
}
