//! Snapshot-pinned reads over the search tables.
//!
//! A [`SearchReader`] holds only config — every method takes the
//! `TableSnapshot` to answer from, so callers (the server handlers in
//! particular) pin exactly one snapshot, answer the whole request from
//! it, and can report the precise LSN alongside the results.

use std::collections::{BTreeMap, BTreeSet};

use preserva_storage::table::TableSnapshot;
use preserva_taxonomy::fuzzy;
use preserva_taxonomy::ngram::{candidate_threshold, grams};

use crate::indexer::Indexer;
use crate::{join_key, tables, SearchConfig, SearchError, SEP};

/// Exclusive upper bound for a prefix scan: the prefix with its last
/// byte incremented (our prefixes always end with [`SEP`] = 0x00, so
/// the increment never carries).
fn prefix_end(prefix: &[u8]) -> Vec<u8> {
    let mut end = prefix.to_vec();
    let last = end.last_mut().expect("prefix never empty");
    debug_assert!(*last < 0xFF);
    *last += 1;
    end
}

/// One token query's result set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchHits {
    /// Records matching every query token (in key order).
    pub ids: Vec<String>,
    /// Total matches before the limit was applied.
    pub total: usize,
}

/// One fuzzy species-name lookup result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyHit {
    /// The winning indexed name — identical to what the linear
    /// `best_match` scan over all indexed names would return.
    pub name: String,
    /// Its edit distance from the query.
    pub distance: usize,
    /// Candidates actually scored (the O(candidates) in the claim).
    pub candidates_scored: usize,
}

/// Facet → value → count.
pub type FacetCounts = BTreeMap<String, BTreeMap<String, u64>>;

/// Read-side of the search layer.
#[derive(Debug, Clone)]
pub struct SearchReader {
    config: SearchConfig,
}

impl SearchReader {
    /// A reader answering under `config` (must match the indexer's).
    pub fn new(config: SearchConfig) -> SearchReader {
        SearchReader { config }
    }

    /// The config queries are interpreted under.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The indexer cursor as of `snap` — pair with `snap.lsn()` to
    /// report exactly how fresh an answer is.
    pub fn cursor_at(&self, snap: &TableSnapshot) -> Result<u64, SearchError> {
        Ok(Indexer::load_state_at(snap)?.cursor)
    }

    /// Record ids whose `field` contains `token`, straight off the
    /// postings table.
    fn token_hits(
        &self,
        snap: &TableSnapshot,
        field: &str,
        token: &str,
    ) -> Result<BTreeSet<Vec<u8>>, SearchError> {
        let mut prefix = join_key(&[field.as_bytes(), token.as_bytes()]);
        prefix.push(SEP);
        let end = prefix_end(&prefix);
        let rows = snap.scan_range(tables::POSTINGS, &prefix, Some(&end))?;
        Ok(rows
            .into_iter()
            .map(|(k, _)| k[prefix.len()..].to_vec())
            .collect())
    }

    /// Records matching EVERY token of `terms` (tokenized like the
    /// index side). `field` restricts the match to one field; `None`
    /// matches a token anywhere in the configured fields. Ids come back
    /// in key order, truncated to `limit` with the pre-limit total.
    pub fn query(
        &self,
        snap: &TableSnapshot,
        field: Option<&str>,
        terms: &str,
        limit: usize,
    ) -> Result<SearchHits, SearchError> {
        let tokens = crate::tokenize(terms);
        if tokens.is_empty() {
            return Ok(SearchHits::default());
        }
        let fields: Vec<&str> = match field {
            Some(f) => vec![f],
            None => self.config.fields.iter().map(String::as_str).collect(),
        };
        let mut matched: Option<BTreeSet<Vec<u8>>> = None;
        for token in &tokens {
            let mut hits = BTreeSet::new();
            for f in &fields {
                hits.extend(self.token_hits(snap, f, token)?);
            }
            matched = Some(match matched {
                None => hits,
                Some(prev) => prev.intersection(&hits).cloned().collect(),
            });
            if matched.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        let matched = matched.unwrap_or_default();
        let total = matched.len();
        let ids = matched
            .into_iter()
            .take(limit)
            .map(|pk| String::from_utf8_lossy(&pk).into_owned())
            .collect();
        Ok(SearchHits { ids, total })
    }

    /// Facet breakdowns from the counter rows alone — the record table
    /// is never touched. `facet` restricts to one facet name.
    pub fn facets(
        &self,
        snap: &TableSnapshot,
        facet: Option<&str>,
    ) -> Result<FacetCounts, SearchError> {
        let rows = match facet {
            Some(f) => {
                let mut prefix = f.as_bytes().to_vec();
                prefix.push(SEP);
                let end = prefix_end(&prefix);
                snap.scan_range(tables::FACETS, &prefix, Some(&end))?
            }
            None => snap.scan(tables::FACETS)?,
        };
        let mut out: FacetCounts = BTreeMap::new();
        for (key, value) in rows {
            let mut parts = key.splitn(2, |&b| b == SEP);
            let name = String::from_utf8_lossy(parts.next().unwrap_or(b"")).into_owned();
            let val = String::from_utf8_lossy(parts.next().unwrap_or(b"")).into_owned();
            let count = String::from_utf8_lossy(&value).parse::<u64>().unwrap_or(0);
            out.entry(name).or_default().insert(val, count);
        }
        Ok(out)
    }

    /// Every indexed species name, in key order (the fallback scan set
    /// and the delta≡full comparison baseline).
    pub fn names(&self, snap: &TableSnapshot) -> Result<Vec<String>, SearchError> {
        Ok(snap
            .scan_keys(tables::NAMES)?
            .into_iter()
            .map(|k| String::from_utf8_lossy(&k).into_owned())
            .collect())
    }

    /// Fuzzy candidates for `query` within `max_distance`, via the
    /// persisted n-gram postings. A provable superset of every indexed
    /// name within budget (see `preserva_taxonomy::ngram`); degenerates
    /// to all names when the count-filtering bound does.
    pub fn fuzzy_candidates(
        &self,
        snap: &TableSnapshot,
        query: &str,
        max_distance: usize,
    ) -> Result<Vec<String>, SearchError> {
        let g = self.config.gram;
        let q = grams(query, g);
        let threshold = match candidate_threshold(q.len(), g, max_distance) {
            Some(t) => t,
            None => return self.names(snap),
        };
        let mut shared: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        for gram in &q {
            let mut prefix = gram.as_bytes().to_vec();
            prefix.push(SEP);
            let end = prefix_end(&prefix);
            for (key, _) in snap.scan_range(tables::NGRAMS, &prefix, Some(&end))? {
                *shared.entry(key[prefix.len()..].to_vec()).or_insert(0) += 1;
            }
        }
        Ok(shared
            .into_iter()
            .filter(|&(_, n)| n >= threshold)
            .map(|(name, _)| String::from_utf8_lossy(&name).into_owned())
            .collect())
    }

    /// The closest indexed species name within `max_distance` —
    /// byte-for-byte the winner `fuzzy::best_match` would pick scanning
    /// ALL indexed names, computed over only the n-gram candidates.
    pub fn fuzzy(
        &self,
        snap: &TableSnapshot,
        query: &str,
        max_distance: usize,
    ) -> Result<Option<FuzzyHit>, SearchError> {
        let candidates = self.fuzzy_candidates(snap, query, max_distance)?;
        let scored = candidates.len();
        Ok(
            fuzzy::best_match(query, candidates.iter().map(String::as_str), max_distance).map(
                |m| FuzzyHit {
                    name: m.candidate.to_string(),
                    distance: m.distance,
                    candidates_scored: scored,
                },
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_end_increments_separator() {
        assert_eq!(prefix_end(b"abc\x00"), b"abc\x01".to_vec());
    }
}
