//! The durable-cursor journal consumer maintaining the search tables.
//!
//! Modeled on the core `Reassessor`: each [`Indexer::run`] pins ONE
//! snapshot, drains the change journal from the stored cursor, diffs
//! every touched record against its persisted [`DocState`], and commits
//! postings, n-grams, facet counters, doc states and the advanced
//! cursor in ONE `WriteSession`. Two consequences fall out:
//!
//! * **Crash atomicity** — postings and cursor land together or not at
//!   all; a reopen either replays the whole journal range again
//!   (idempotent: the diff against the already-updated doc states is
//!   empty) or none of it. The index can never double-apply or skip a
//!   range.
//! * **Single-phase cursor** — search tables are not journaled, so the
//!   run appends nothing to the feed it consumes and there is no
//!   second "bump past own writes" commit to lose.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use preserva_metadata::record::Record;
use preserva_obs::{Counter, Gauge, Histogram, Registry};
use preserva_storage::table::{TableSnapshot, TableStore, WriteSession};
use preserva_storage::{Lsn, ROW_DELETED, ROW_UPSERTED};
use preserva_taxonomy::ngram::grams;
use serde::{Deserialize, Serialize};

use crate::doc::DocState;
use crate::query::SearchReader;
use crate::{join_key, tables, SearchConfig, SearchError};

const STATE_KEY: &[u8] = b"state";

/// Durable cursor state, one JSON row in `__search:meta`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct IndexState {
    /// Highest journal sequence number already folded into the index.
    pub cursor: u64,
    /// Completed (non-noop) index runs.
    pub runs: u64,
}

/// What one [`Indexer::run`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexOutcome {
    /// Cursor before the run.
    pub cursor_before: u64,
    /// Cursor after the run.
    pub cursor_after: u64,
    /// Journal entries pending when the run started.
    pub journal_lag: u64,
    /// Journal entries consumed (all kinds, not just record rows).
    pub entries_consumed: usize,
    /// Records (re)indexed this run.
    pub docs_indexed: usize,
    /// Records removed from the index this run.
    pub docs_removed: usize,
    /// Commit LSN of the run's one input snapshot.
    pub input_lsn: Lsn,
}

impl IndexOutcome {
    /// Whether the run found nothing to do (and committed nothing).
    pub fn is_noop(&self) -> bool {
        self.entries_consumed == 0
    }
}

/// Search instruments, resolved once at construction.
struct SearchMetrics {
    runs: Arc<Counter>,
    index_lag: Arc<Gauge>,
    entries_consumed: Arc<Counter>,
    docs_indexed: Arc<Counter>,
    docs_removed: Arc<Counter>,
    batch_entries: Arc<Histogram>,
    run_seconds: Arc<Histogram>,
}

impl SearchMetrics {
    fn resolve(reg: &Arc<Registry>) -> SearchMetrics {
        SearchMetrics {
            runs: reg.counter(
                "preserva_search_runs_total",
                "Completed (non-noop) search index maintenance runs.",
            ),
            index_lag: reg.gauge(
                "preserva_search_index_lag",
                "Journal entries committed but not yet folded into the \
                 search index (journal head minus indexer cursor).",
            ),
            entries_consumed: reg.counter(
                "preserva_search_entries_consumed_total",
                "Journal entries consumed by search index runs.",
            ),
            docs_indexed: reg.counter(
                "preserva_search_docs_indexed_total",
                "Records (re)indexed by search index runs.",
            ),
            docs_removed: reg.counter(
                "preserva_search_docs_removed_total",
                "Records removed from the search index by index runs.",
            ),
            batch_entries: reg.histogram(
                "preserva_search_delta_batch_entries",
                "Journal entries consumed per search index run.",
                &[1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0],
            ),
            run_seconds: reg.latency_histogram(
                "preserva_search_run_seconds",
                "Latency of search index maintenance runs (drain, diff, commit).",
            ),
        }
    }
}

/// The journal-fed maintainer of the three search index structures.
pub struct Indexer {
    store: Arc<TableStore>,
    records_table: String,
    config: SearchConfig,
    obs: Arc<Registry>,
    metrics: SearchMetrics,
}

impl std::fmt::Debug for Indexer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Indexer")
            .field("records_table", &self.records_table)
            .field("config", &self.config)
            .finish()
    }
}

impl Indexer {
    /// Bind to a store and records table with the default config and a
    /// private metrics registry.
    pub fn new(store: Arc<TableStore>, records_table: &str) -> Indexer {
        Indexer::with_metrics(
            store,
            records_table,
            SearchConfig::default(),
            Arc::new(Registry::new()),
        )
    }

    /// Bind with an explicit config, reporting into `registry`.
    pub fn with_metrics(
        store: Arc<TableStore>,
        records_table: &str,
        config: SearchConfig,
        registry: Arc<Registry>,
    ) -> Indexer {
        let metrics = SearchMetrics::resolve(&registry);
        Indexer {
            store,
            records_table: records_table.to_string(),
            config,
            obs: registry,
            metrics,
        }
    }

    /// The config the index is maintained under.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// A reader bound to this indexer's config.
    pub fn reader(&self) -> SearchReader {
        SearchReader::new(self.config.clone())
    }

    /// The metrics registry this indexer reports to.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    pub(crate) fn load_state_at(snap: &TableSnapshot) -> Result<IndexState, SearchError> {
        match snap.get(tables::META, STATE_KEY)? {
            Some(row) => serde_json::from_slice(&row)
                .map_err(|e| SearchError::codec(tables::META, "state", e)),
            None => Ok(IndexState::default()),
        }
    }

    fn load_state(&self) -> Result<IndexState, SearchError> {
        match self.store.get(tables::META, STATE_KEY)? {
            Some(row) => serde_json::from_slice(&row)
                .map_err(|e| SearchError::codec(tables::META, "state", e)),
            None => Ok(IndexState::default()),
        }
    }

    fn stage_state(session: &mut WriteSession<'_>, state: &IndexState) -> Result<(), SearchError> {
        let bytes =
            serde_json::to_vec(state).map_err(|e| SearchError::codec(tables::META, "state", e))?;
        session.put(tables::META, STATE_KEY, &bytes)?;
        Ok(())
    }

    fn decode_count(row: Option<Vec<u8>>) -> u64 {
        row.and_then(|v| String::from_utf8(v).ok())
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0)
    }

    /// Journal sequence number already folded into the index.
    pub fn cursor(&self) -> Result<u64, SearchError> {
        Ok(self.load_state()?.cursor)
    }

    /// Journal entries committed but not yet indexed — the lag the
    /// `preserva_search_index_lag` gauge reports.
    pub fn journal_lag(&self) -> Result<u64, SearchError> {
        let lag = self
            .store
            .journal_head()
            .saturating_sub(self.load_state()?.cursor);
        self.metrics.index_lag.set(lag);
        Ok(lag)
    }

    /// Drain the journal from the stored cursor and fold the delta into
    /// the search tables, committing everything — postings, n-grams,
    /// facet counters, doc states, cursor — in ONE write session. An
    /// empty feed commits nothing.
    pub fn run(&self) -> Result<IndexOutcome, SearchError> {
        let started = Instant::now();
        let mut state = self.load_state()?;
        let cursor = state.cursor;
        // Pin the input: every read below sees this one LSN.
        let snap = self.store.snapshot();

        let mut entries = Vec::new();
        let mut pos = cursor;
        loop {
            let batch = snap.read_journal(pos, 4096)?;
            if batch.is_empty() {
                break;
            }
            pos = batch.last().expect("non-empty").seq;
            entries.extend(batch);
        }
        let head = entries.last().map_or(cursor, |e| e.seq);
        let lag = head.saturating_sub(cursor);
        self.metrics.index_lag.set(lag);

        let mut outcome = IndexOutcome {
            cursor_before: cursor,
            cursor_after: cursor,
            journal_lag: lag,
            entries_consumed: entries.len(),
            input_lsn: snap.lsn(),
            ..Default::default()
        };
        if entries.is_empty() {
            self.obs
                .trace("search", "change feed empty; index up to date".to_string());
            self.metrics.run_seconds.observe_duration(started.elapsed());
            return Ok(outcome);
        }

        // The set of records to re-derive; the journal's op kinds don't
        // matter because the new truth is read from the pinned snapshot.
        let mut touched: BTreeSet<Vec<u8>> = BTreeSet::new();
        for e in &entries {
            if e.table == self.records_table && (e.kind == ROW_UPSERTED || e.kind == ROW_DELETED) {
                touched.insert(e.key.clone());
            }
        }

        let mut session = self.store.session();
        let mut facet_delta: BTreeMap<(String, String), i64> = BTreeMap::new();
        let mut name_delta: BTreeMap<String, i64> = BTreeMap::new();
        for pk in &touched {
            let old = match snap.get(tables::DOCS, pk)? {
                Some(row) => serde_json::from_slice::<DocState>(&row).map_err(|e| {
                    SearchError::codec(tables::DOCS, String::from_utf8_lossy(pk), e)
                })?,
                None => DocState::default(),
            };
            let new = match snap.get(&self.records_table, pk)? {
                Some(row) => {
                    let record = serde_json::from_slice::<Record>(&row).map_err(|e| {
                        SearchError::codec(tables::DOCS, String::from_utf8_lossy(pk), e)
                    })?;
                    Some(DocState::extract(&record, &self.config))
                }
                None => None,
            };
            let empty = DocState::default();
            let new_ref = new.as_ref().unwrap_or(&empty);

            // Inverted-index postings: retract what only the old state
            // had, assert what only the new state has.
            for (field, toks) in &old.tokens {
                let kept = new_ref.tokens.get(field);
                for t in toks {
                    if !kept.is_some_and(|k| k.contains(t)) {
                        session.delete(
                            tables::POSTINGS,
                            &join_key(&[field.as_bytes(), t.as_bytes(), pk]),
                        )?;
                    }
                }
            }
            for (field, toks) in &new_ref.tokens {
                let had = old.tokens.get(field);
                for t in toks {
                    if !had.is_some_and(|h| h.contains(t)) {
                        session.put(
                            tables::POSTINGS,
                            &join_key(&[field.as_bytes(), t.as_bytes(), pk]),
                            b"",
                        )?;
                    }
                }
            }

            for f in old.facets.difference(&new_ref.facets) {
                *facet_delta.entry(f.clone()).or_insert(0) -= 1;
            }
            for f in new_ref.facets.difference(&old.facets) {
                *facet_delta.entry(f.clone()).or_insert(0) += 1;
            }

            if old.name != new_ref.name {
                if let Some(n) = &old.name {
                    *name_delta.entry(n.clone()).or_insert(0) -= 1;
                }
                if let Some(n) = &new_ref.name {
                    *name_delta.entry(n.clone()).or_insert(0) += 1;
                }
            }

            match &new {
                Some(d) => {
                    let bytes = serde_json::to_vec(d).map_err(|e| {
                        SearchError::codec(tables::DOCS, String::from_utf8_lossy(pk), e)
                    })?;
                    session.put(tables::DOCS, pk, &bytes)?;
                    outcome.docs_indexed += 1;
                }
                None => {
                    if old != DocState::default() {
                        session.delete(tables::DOCS, pk)?;
                        outcome.docs_removed += 1;
                    }
                }
            }
        }

        // Facet counters: one read-modify-write per touched (facet,
        // value), against the pinned snapshot (each key staged once).
        for ((facet, value), delta) in facet_delta {
            if delta == 0 {
                continue;
            }
            let key = join_key(&[facet.as_bytes(), value.as_bytes()]);
            let current = Self::decode_count(snap.get(tables::FACETS, &key)?) as i64;
            let next = (current + delta).max(0) as u64;
            if next == 0 {
                session.delete(tables::FACETS, &key)?;
            } else {
                session.put(tables::FACETS, &key, next.to_string().as_bytes())?;
            }
        }

        // Species-name refcounts drive n-gram membership: grams appear
        // when a name gains its first reference, disappear with its last.
        for (name, delta) in name_delta {
            if delta == 0 {
                continue;
            }
            let key = name.as_bytes();
            let current = Self::decode_count(snap.get(tables::NAMES, key)?);
            let next = (current as i64 + delta).max(0) as u64;
            if next == 0 {
                if current > 0 {
                    for gram in grams(&name, self.config.gram) {
                        session.delete(tables::NGRAMS, &join_key(&[gram.as_bytes(), key]))?;
                    }
                    session.delete(tables::NAMES, key)?;
                }
                continue;
            }
            if current == 0 {
                for gram in grams(&name, self.config.gram) {
                    session.put(tables::NGRAMS, &join_key(&[gram.as_bytes(), key]), b"")?;
                }
            }
            session.put(tables::NAMES, key, next.to_string().as_bytes())?;
        }

        state.cursor = head;
        state.runs += 1;
        Self::stage_state(&mut session, &state)?;

        // Input fully captured: unpin before committing so the fold
        // horizon never waits on us.
        drop(snap);
        session.commit()?;

        outcome.cursor_after = state.cursor;
        self.metrics.runs.inc();
        self.metrics.entries_consumed.add(entries.len() as u64);
        self.metrics.docs_indexed.add(outcome.docs_indexed as u64);
        self.metrics.docs_removed.add(outcome.docs_removed as u64);
        self.metrics.batch_entries.observe(entries.len() as f64);
        self.metrics
            .index_lag
            .set(self.store.journal_head().saturating_sub(state.cursor));
        self.metrics.run_seconds.observe_duration(started.elapsed());
        self.obs.trace(
            "search",
            format!(
                "index run consumed {} entries: {} docs indexed, {} removed (cursor {} -> {})",
                entries.len(),
                outcome.docs_indexed,
                outcome.docs_removed,
                cursor,
                state.cursor
            ),
        );
        Ok(outcome)
    }

    /// Drop every search table and re-derive the index by replaying the
    /// journal from zero. The wipe is one commit (resetting the cursor
    /// with it), the replay a normal [`run`](Self::run) — so a crash
    /// between the two leaves a valid empty index that the next run
    /// completes.
    pub fn rebuild(&self) -> Result<IndexOutcome, SearchError> {
        let snap = self.store.snapshot();
        let mut session = self.store.session();
        for table in [
            tables::POSTINGS,
            tables::DOCS,
            tables::NGRAMS,
            tables::NAMES,
            tables::FACETS,
        ] {
            for key in snap.scan_keys(table)? {
                session.delete(table, &key)?;
            }
        }
        let runs = Self::load_state_at(&snap)?.runs;
        Self::stage_state(&mut session, &IndexState { cursor: 0, runs })?;
        drop(snap);
        session.commit()?;
        self.obs.trace(
            "search",
            "index wiped; replaying journal from zero".to_string(),
        );
        self.run()
    }
}
