//! The tokenizer feeding the inverted index.
//!
//! Deliberately tiny and deterministic: lowercase-fold, split on any
//! non-alphanumeric character, drop empties. Postings are set-valued per
//! (field, record), so duplicates within one field collapse — the index
//! answers "does this record's field mention this word", not ranking.

use std::collections::BTreeSet;

/// Distinct lowercase tokens of `text`.
pub fn tokenize(text: &str) -> BTreeSet<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s).into_iter().collect()
    }

    #[test]
    fn splits_and_folds() {
        assert_eq!(toks("Hyla faber"), ["faber", "hyla"]);
        assert_eq!(toks("São   Paulo"), ["paulo", "são"]);
        assert_eq!(toks("FNJV-0031"), ["0031", "fnjv"]);
    }

    #[test]
    fn dedupes_and_drops_empties() {
        assert_eq!(toks("a a  A ..  "), ["a"]);
        assert!(toks("  ,;  ").is_empty());
        assert!(toks("").is_empty());
    }
}
