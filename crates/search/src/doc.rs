//! Per-record indexed state.
//!
//! The journal names *which* record changed, not what its old field
//! values were — so the indexer persists, per record, exactly what it
//! contributed to each index. On update or delete the stored
//! [`DocState`] is the retraction source: the diff against the new
//! state is O(old + new tokens), never a table scan.

use std::collections::{BTreeMap, BTreeSet};

use preserva_metadata::record::Record;
use serde::{Deserialize, Serialize};

use crate::{SearchConfig, QUALITY_FIELDS};

/// What one record currently contributes to the indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocState {
    /// Distinct tokens per indexed field (only non-empty fields appear).
    pub tokens: BTreeMap<String, BTreeSet<String>>,
    /// Facet memberships: `(facet, value)` pairs.
    pub facets: BTreeSet<(String, String)>,
    /// Species name covered by the n-gram index, if any.
    pub name: Option<String>,
}

/// Quality band from the filled fraction of [`QUALITY_FIELDS`].
pub fn quality_band(record: &Record) -> &'static str {
    let filled = QUALITY_FIELDS
        .iter()
        .filter(|f| record.is_filled(f))
        .count();
    let fraction = filled as f64 / QUALITY_FIELDS.len() as f64;
    if fraction >= 0.9 {
        "high"
    } else if fraction >= 0.6 {
        "medium"
    } else {
        "low"
    }
}

impl DocState {
    /// Extract the indexed state of `record` under `config`.
    pub fn extract(record: &Record, config: &SearchConfig) -> DocState {
        let mut tokens = BTreeMap::new();
        for field in &config.fields {
            if let Some(value) = record.get(field) {
                let text = match value.as_text() {
                    Some(t) => t.to_string(),
                    // Non-text values (dates, coordinates, numbers)
                    // still deserve lookup by their rendered form.
                    None => format!("{value:?}"),
                };
                let toks = crate::tokenize(&text);
                if !toks.is_empty() {
                    tokens.insert(field.clone(), toks);
                }
            }
        }

        let mut facets = BTreeSet::new();
        let family = record
            .get_text("family")
            .map(|f| f.trim().to_lowercase())
            .filter(|f| !f.is_empty())
            .unwrap_or_else(|| "(none)".to_string());
        facets.insert(("family".to_string(), family));
        facets.insert((
            "georeferenced".to_string(),
            if record.is_filled("coordinates") {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ));
        facets.insert(("quality".to_string(), quality_band(record).to_string()));

        let name = record
            .get_text(&config.name_field)
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(str::to_string);

        DocState {
            tokens,
            facets,
            name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::value::{Coordinates, Value};

    fn record() -> Record {
        Record::new("FNJV-1")
            .with("species", Value::Text("Hyla faber".into()))
            .with("family", Value::Text("Hylidae".into()))
            .with("state", Value::Text("São Paulo".into()))
            .with(
                "coordinates",
                Value::Coordinates(Coordinates::new(-22.8, -47.1).unwrap()),
            )
    }

    #[test]
    fn extract_tokens_facets_and_name() {
        let d = DocState::extract(&record(), &SearchConfig::default());
        assert!(d.tokens["species"].contains("faber"));
        assert!(d.tokens["state"].contains("paulo"));
        assert!(!d.tokens.contains_key("city"), "absent fields stay out");
        assert!(d
            .facets
            .contains(&("family".to_string(), "hylidae".to_string())));
        assert!(d
            .facets
            .contains(&("georeferenced".to_string(), "yes".to_string())));
        assert_eq!(d.name.as_deref(), Some("Hyla faber"));
    }

    #[test]
    fn missing_family_and_coordinates_still_facet() {
        let r = Record::new("r").with("species", Value::Text("Scinax ruber".into()));
        let d = DocState::extract(&r, &SearchConfig::default());
        assert!(d
            .facets
            .contains(&("family".to_string(), "(none)".to_string())));
        assert!(d
            .facets
            .contains(&("georeferenced".to_string(), "no".to_string())));
        assert!(d
            .facets
            .contains(&("quality".to_string(), "low".to_string())));
    }

    #[test]
    fn quality_bands_track_completeness() {
        let mut r = Record::new("r");
        assert_eq!(quality_band(&r), "low");
        for f in &QUALITY_FIELDS[..6] {
            r.set(f, Value::Text("x".into()));
        }
        assert_eq!(quality_band(&r), "medium"); // 6/10
        for f in &QUALITY_FIELDS[6..9] {
            r.set(f, Value::Text("x".into()));
        }
        assert_eq!(quality_band(&r), "high"); // 9/10
    }

    #[test]
    fn state_roundtrips_through_json() {
        let d = DocState::extract(&record(), &SearchConfig::default());
        let bytes = serde_json::to_vec(&d).unwrap();
        assert_eq!(serde_json::from_slice::<DocState>(&bytes).unwrap(), d);
    }
}
