//! Property tests for OPM invariants (DESIGN.md §7): inference
//! monotonicity/idempotence, closure correctness, serialization fidelity.

use proptest::prelude::*;

use preserva_opm::edge::Edge;
use preserva_opm::graph::OpmGraph;
use preserva_opm::inference;
use preserva_opm::model::{Artifact, Process};
use preserva_opm::serialize;
use preserva_opm::validate;

/// Build a random bipartite-ish provenance graph: `n_art` artifacts,
/// `n_proc` processes, and used/generated edges drawn from index pairs.
fn random_graph(
    n_art: usize,
    n_proc: usize,
    used: &[(usize, usize)],
    generated: &[(usize, usize)],
) -> OpmGraph {
    let mut g = OpmGraph::new();
    for i in 0..n_art {
        g.add_artifact(Artifact::new(format!("a:{i}"), format!("artifact {i}")));
    }
    for i in 0..n_proc {
        g.add_process(Process::new(format!("p:{i}"), format!("process {i}")));
    }
    for &(p, a) in used {
        g.add_edge(Edge::used(
            format!("p:{}", p % n_proc).as_str().into(),
            format!("a:{}", a % n_art).as_str().into(),
            Some("in"),
        ))
        .unwrap();
    }
    for &(a, p) in generated {
        g.add_edge(Edge::was_generated_by(
            format!("a:{}", a % n_art).as_str().into(),
            format!("p:{}", p % n_proc).as_str().into(),
            Some("out"),
        ))
        .unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Saturation reaches a fixpoint and a second run adds nothing.
    #[test]
    fn saturation_idempotent(
        used in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
        generated in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
    ) {
        let mut g = random_graph(6, 6, &used, &generated);
        inference::saturate(&mut g);
        let count = g.edges.len();
        let added = inference::saturate(&mut g);
        prop_assert_eq!(added, 0);
        prop_assert_eq!(g.edges.len(), count);
    }

    /// The derivation closure is monotone: adding an edge never removes
    /// pairs from the closure.
    #[test]
    fn closure_monotone(
        used in proptest::collection::vec((0usize..5, 0usize..5), 1..10),
        generated in proptest::collection::vec((0usize..5, 0usize..5), 1..10),
        extra in (0usize..5, 0usize..5),
    ) {
        let g1 = random_graph(5, 5, &used, &generated);
        let before = inference::derivation_closure(&g1);
        let mut g2 = g1.clone();
        let (ea, ec) = extra;
        if ea != ec {
            g2.add_edge(Edge::was_derived_from(
                format!("a:{ea}").as_str().into(),
                format!("a:{ec}").as_str().into(),
            )).unwrap();
        }
        let after = inference::derivation_closure(&g2);
        for (k, v) in &before {
            let bigger = after.get(k).cloned().unwrap_or_default();
            prop_assert!(v.is_subset(&bigger), "closure shrank for {k:?}");
        }
    }

    /// JSON round-trip is the identity on random graphs (post-saturation,
    /// to include inferred edges too).
    #[test]
    fn json_roundtrip_identity(
        used in proptest::collection::vec((0usize..4, 0usize..4), 0..8),
        generated in proptest::collection::vec((0usize..4, 0usize..4), 0..8),
    ) {
        let mut g = random_graph(4, 4, &used, &generated);
        inference::saturate(&mut g);
        let back = serialize::from_json(&serialize::to_json(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    /// The validator never panics, and single-generation graphs validate.
    #[test]
    fn validator_total(
        used in proptest::collection::vec((0usize..5, 0usize..5), 0..10),
        generated_arts in proptest::collection::vec(0usize..5, 0..5),
    ) {
        // Give each artifact at most one generating process.
        let generated: Vec<(usize, usize)> = generated_arts
            .iter()
            .copied()
            .enumerate()
            .map(|(i, a)| (a, i % 5))
            .collect::<std::collections::BTreeMap<_, _>>() // dedup by artifact
            .into_iter()
            .collect();
        let g = random_graph(5, 5, &used, &generated);
        let report = validate::validate(&g);
        prop_assert!(
            report.errors.iter().all(|v| !matches!(v, validate::Violation::MultipleGeneration { .. })),
            "no artifact has two generators by construction"
        );
    }
}
