//! Graph serialization: JSON (interchange, via serde) and GraphViz DOT
//! (inspection). JSON is what the Provenance Manager persists into the
//! provenance repository.

use crate::edge::EdgeKind;
use crate::graph::OpmGraph;

/// Serialize a graph to pretty JSON.
pub fn to_json(g: &OpmGraph) -> String {
    serde_json::to_string_pretty(g).expect("OPM graphs are always serializable")
}

/// Parse a graph from JSON.
pub fn from_json(s: &str) -> Result<OpmGraph, serde_json::Error> {
    serde_json::from_str(s)
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the graph as GraphViz DOT. Artifacts are ellipses, processes
/// boxes, agents octagons — the conventional OPM pictography.
pub fn to_dot(g: &OpmGraph) -> String {
    let mut out = String::from("digraph opm {\n  rankdir=BT;\n");
    for (id, a) in &g.artifacts {
        out.push_str(&format!(
            "  \"{}\" [shape=ellipse,label=\"{}\"];\n",
            dot_escape(id.as_str()),
            dot_escape(&a.label)
        ));
    }
    for (id, p) in &g.processes {
        out.push_str(&format!(
            "  \"{}\" [shape=box,label=\"{}\"];\n",
            dot_escape(id.as_str()),
            dot_escape(&p.label)
        ));
    }
    for (id, ag) in &g.agents {
        out.push_str(&format!(
            "  \"{}\" [shape=octagon,label=\"{}\"];\n",
            dot_escape(id.as_str()),
            dot_escape(&ag.label)
        ));
    }
    for e in &g.edges {
        let style = match e.kind {
            EdgeKind::WasDerivedFrom | EdgeKind::WasTriggeredBy => ",style=dashed",
            _ => "",
        };
        let label = match &e.role {
            Some(r) => format!("{}({})", e.kind.spec_name(), r),
            None => e.kind.spec_name().to_string(),
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
            dot_escape(e.effect.as_str()),
            dot_escape(e.cause.as_str()),
            dot_escape(&label),
            style
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::model::{Agent, Artifact, Process};

    fn sample() -> OpmGraph {
        let mut g = OpmGraph::new();
        g.add_artifact(Artifact::new("a:in", "input \"quoted\""));
        g.add_process(Process::new("p:run", "run"));
        g.add_agent(Agent::new("ag:u", "user"));
        g.add_edge(Edge::used("p:run".into(), "a:in".into(), Some("data")))
            .unwrap();
        g.add_edge(Edge::was_controlled_by(
            "p:run".into(),
            "ag:u".into(),
            Some("op"),
        ))
        .unwrap();
        g
    }

    #[test]
    fn json_roundtrip_preserves_graph() {
        let g = sample();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dot_contains_nodes_edges_and_escapes() {
        let dot = to_dot(&sample());
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=octagon"));
        assert!(dot.contains("used(data)"));
        assert!(dot.contains("\\\"quoted\\\""));
        assert!(dot.starts_with("digraph opm {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn bad_json_is_error_not_panic() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"artifacts\": 3}").is_err());
    }
}
