//! The OPM graph container: nodes, edges, accounts and traversal queries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::edge::{Edge, EdgeKind};
use crate::model::{Account, Agent, Artifact, NodeId, Process};

/// Error raised when an edge references a node the graph doesn't contain,
/// or connects nodes of the wrong kinds for its edge kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node the graph does not contain.
    UnknownNode(NodeId),
    /// An edge endpoint has the wrong node kind for its edge kind.
    WrongNodeKind {
        /// The offending edge kind (spec name).
        edge: &'static str,
        /// The node kind that position requires.
        expected: &'static str,
        /// The node actually referenced.
        got: NodeId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "edge references unknown node {id}"),
            GraphError::WrongNodeKind {
                edge,
                expected,
                got,
            } => {
                write!(f, "{edge} edge expects a {expected} endpoint, got {got}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A complete OPM provenance graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct OpmGraph {
    /// Artifacts by id.
    pub artifacts: BTreeMap<NodeId, Artifact>,
    /// Processes by id.
    pub processes: BTreeMap<NodeId, Process>,
    /// Agents by id.
    pub agents: BTreeMap<NodeId, Agent>,
    /// All causal edges, in insertion order.
    pub edges: Vec<Edge>,
    /// Declared accounts (edges may also mention accounts implicitly).
    pub accounts: BTreeSet<Account>,
}

impl OpmGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an artifact, returning its id.
    pub fn add_artifact(&mut self, a: Artifact) -> NodeId {
        let id = a.id.clone();
        self.artifacts.insert(id.clone(), a);
        id
    }

    /// Insert a process, returning its id.
    pub fn add_process(&mut self, p: Process) -> NodeId {
        let id = p.id.clone();
        self.processes.insert(id.clone(), p);
        id
    }

    /// Insert an agent, returning its id.
    pub fn add_agent(&mut self, ag: Agent) -> NodeId {
        let id = ag.id.clone();
        self.agents.insert(id.clone(), ag);
        id
    }

    /// Declare an account.
    pub fn add_account(&mut self, acc: Account) {
        self.accounts.insert(acc);
    }

    fn check_kind(
        &self,
        id: &NodeId,
        want_artifact: bool,
        want_process: bool,
        want_agent: bool,
        edge: &'static str,
        expected: &'static str,
    ) -> Result<(), GraphError> {
        let is_artifact = self.artifacts.contains_key(id);
        let is_process = self.processes.contains_key(id);
        let is_agent = self.agents.contains_key(id);
        if !is_artifact && !is_process && !is_agent {
            return Err(GraphError::UnknownNode(id.clone()));
        }
        if (want_artifact && is_artifact)
            || (want_process && is_process)
            || (want_agent && is_agent)
        {
            Ok(())
        } else {
            Err(GraphError::WrongNodeKind {
                edge,
                expected,
                got: id.clone(),
            })
        }
    }

    /// Add an edge after checking endpoint existence and kinds.
    pub fn add_edge(&mut self, e: Edge) -> Result<(), GraphError> {
        match e.kind {
            EdgeKind::Used => {
                self.check_kind(&e.effect, false, true, false, "used", "process")?;
                self.check_kind(&e.cause, true, false, false, "used", "artifact")?;
            }
            EdgeKind::WasGeneratedBy => {
                self.check_kind(&e.effect, true, false, false, "wasGeneratedBy", "artifact")?;
                self.check_kind(&e.cause, false, true, false, "wasGeneratedBy", "process")?;
            }
            EdgeKind::WasControlledBy => {
                self.check_kind(&e.effect, false, true, false, "wasControlledBy", "process")?;
                self.check_kind(&e.cause, false, false, true, "wasControlledBy", "agent")?;
            }
            EdgeKind::WasTriggeredBy => {
                self.check_kind(&e.effect, false, true, false, "wasTriggeredBy", "process")?;
                self.check_kind(&e.cause, false, true, false, "wasTriggeredBy", "process")?;
            }
            EdgeKind::WasDerivedFrom => {
                self.check_kind(&e.effect, true, false, false, "wasDerivedFrom", "artifact")?;
                self.check_kind(&e.cause, true, false, false, "wasDerivedFrom", "artifact")?;
            }
        }
        for acc in &e.accounts {
            self.accounts.insert(acc.clone());
        }
        self.edges.push(e);
        Ok(())
    }

    /// All edges of a given kind.
    pub fn edges_of_kind(&self, kind: EdgeKind) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Edges whose effect is `node`.
    pub fn edges_from(&self, node: &NodeId) -> impl Iterator<Item = &Edge> {
        let node = node.clone();
        self.edges.iter().filter(move |e| e.effect == node)
    }

    /// Edges whose cause is `node`.
    pub fn edges_to(&self, node: &NodeId) -> impl Iterator<Item = &Edge> {
        let node = node.clone();
        self.edges.iter().filter(move |e| e.cause == node)
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.artifacts.len() + self.processes.len() + self.agents.len()
    }

    /// The *lineage* of a node: every node reachable by following causal
    /// edges from effect to cause (i.e. everything that contributed to it),
    /// excluding the start node itself.
    pub fn lineage(&self, start: &NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(start.clone());
        while let Some(n) = queue.pop_front() {
            for e in self.edges_from(&n) {
                if seen.insert(e.cause.clone()) {
                    queue.push_back(e.cause.clone());
                }
            }
        }
        seen.remove(start);
        seen
    }

    /// The *impact* of a node: every node whose lineage includes it.
    pub fn impact(&self, start: &NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(start.clone());
        while let Some(n) = queue.pop_front() {
            for e in self.edges_to(&n) {
                if seen.insert(e.effect.clone()) {
                    queue.push_back(e.effect.clone());
                }
            }
        }
        seen.remove(start);
        seen
    }

    /// Restrict the graph to one account: keeps edges in the account plus
    /// every node either retained edge endpoint mentions.
    pub fn account_view(&self, account: &Account) -> OpmGraph {
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| e.is_in_account(Some(account)))
            .cloned()
            .collect();
        let mut used_nodes = BTreeSet::new();
        for e in &edges {
            used_nodes.insert(e.effect.clone());
            used_nodes.insert(e.cause.clone());
        }
        OpmGraph {
            artifacts: self
                .artifacts
                .iter()
                .filter(|(id, _)| used_nodes.contains(*id))
                .map(|(id, a)| (id.clone(), a.clone()))
                .collect(),
            processes: self
                .processes
                .iter()
                .filter(|(id, _)| used_nodes.contains(*id))
                .map(|(id, p)| (id.clone(), p.clone()))
                .collect(),
            agents: self
                .agents
                .iter()
                .filter(|(id, _)| used_nodes.contains(*id))
                .map(|(id, a)| (id.clone(), a.clone()))
                .collect(),
            edges,
            accounts: std::iter::once(account.clone()).collect(),
        }
    }

    /// Merge another graph into this one (union semantics; duplicate edges
    /// are kept only once).
    pub fn merge(&mut self, other: &OpmGraph) {
        for (id, a) in &other.artifacts {
            self.artifacts
                .entry(id.clone())
                .or_insert_with(|| a.clone());
        }
        for (id, p) in &other.processes {
            self.processes
                .entry(id.clone())
                .or_insert_with(|| p.clone());
        }
        for (id, a) in &other.agents {
            self.agents.entry(id.clone()).or_insert_with(|| a.clone());
        }
        for e in &other.edges {
            if !self.edges.contains(e) {
                self.edges.push(e.clone());
            }
        }
        for acc in &other.accounts {
            self.accounts.insert(acc.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// input -used- check; report -wasGeneratedBy- check; curator controls.
    fn case_study_graph() -> OpmGraph {
        let mut g = OpmGraph::new();
        g.add_artifact(Artifact::new("a:names", "species names"));
        g.add_artifact(Artifact::new("a:report", "report"));
        g.add_process(Process::new("p:check", "outdated-name check"));
        g.add_agent(Agent::new("ag:curator", "curator"));
        g.add_edge(Edge::used("p:check".into(), "a:names".into(), Some("in")))
            .unwrap();
        g.add_edge(Edge::was_generated_by(
            "a:report".into(),
            "p:check".into(),
            Some("out"),
        ))
        .unwrap();
        g.add_edge(Edge::was_controlled_by(
            "p:check".into(),
            "ag:curator".into(),
            Some("expert"),
        ))
        .unwrap();
        g
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = OpmGraph::new();
        g.add_process(Process::new("p:1", "p"));
        let err = g
            .add_edge(Edge::used("p:1".into(), "a:missing".into(), None))
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(_)));
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut g = OpmGraph::new();
        g.add_artifact(Artifact::new("a:1", "a"));
        g.add_artifact(Artifact::new("a:2", "b"));
        // `used` requires a process effect; a:1 is an artifact.
        let err = g
            .add_edge(Edge::used("a:1".into(), "a:2".into(), None))
            .unwrap_err();
        assert!(matches!(err, GraphError::WrongNodeKind { .. }));
    }

    #[test]
    fn lineage_walks_effect_to_cause() {
        let g = case_study_graph();
        let lin = g.lineage(&"a:report".into());
        let ids: Vec<&str> = lin.iter().map(|n| n.as_str()).collect();
        assert_eq!(ids, vec!["a:names", "ag:curator", "p:check"]);
    }

    #[test]
    fn impact_is_inverse_of_lineage() {
        let g = case_study_graph();
        let imp = g.impact(&"a:names".into());
        assert!(imp.contains(&"p:check".into()));
        assert!(imp.contains(&"a:report".into()));
        assert!(!imp.contains(&"a:names".into()));
    }

    #[test]
    fn account_view_filters_edges_and_nodes() {
        let mut g = case_study_graph();
        let acc = Account::new("alt");
        g.add_artifact(Artifact::new("a:other", "other"));
        g.add_process(Process::new("p:other", "other"));
        g.add_edge(Edge::used("p:other".into(), "a:other".into(), None).in_account(acc.clone()))
            .unwrap();
        let view = g.account_view(&acc);
        assert_eq!(view.edges.len(), 1);
        assert_eq!(view.node_count(), 2);
        assert!(view.artifacts.contains_key(&"a:other".into()));
    }

    #[test]
    fn merge_unions_without_duplicates() {
        let mut g1 = case_study_graph();
        let g2 = case_study_graph();
        let before = g1.edges.len();
        g1.merge(&g2);
        assert_eq!(g1.edges.len(), before);
        let mut g3 = OpmGraph::new();
        g3.add_artifact(Artifact::new("a:new", "new"));
        g1.merge(&g3);
        assert!(g1.artifacts.contains_key(&"a:new".into()));
    }

    #[test]
    fn edges_of_kind_filters() {
        let g = case_study_graph();
        assert_eq!(g.edges_of_kind(EdgeKind::Used).count(), 1);
        assert_eq!(g.edges_of_kind(EdgeKind::WasDerivedFrom).count(), 0);
    }
}
