//! OPM completion rules and multi-step ("starred") edge inference.
//!
//! The v1.1 spec defines inferred dependencies:
//!
//! * **artifact-introduction** (completion rule): `a₂ wasGeneratedBy p` and
//!   `p used a₁` ⟹ `a₂ wasDerivedFrom a₁` *may* be inferred (weakly — the
//!   spec says the process may not actually have used a₁ to make a₂; we
//!   expose it as an explicit inference the caller opts into).
//! * **process-introduction**: `p₂ used a` and `a wasGeneratedBy p₁` ⟹
//!   `p₂ wasTriggeredBy p₁`.
//! * **multi-step edges**: `wasDerivedFrom*` and `used*`/`wasGeneratedBy*`
//!   transitive closures.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::edge::{Edge, EdgeKind};
use crate::graph::OpmGraph;
use crate::model::NodeId;

/// Apply the artifact-introduction completion rule: for every process `p`,
/// every generated artifact is inferred to derive from every used artifact.
/// Returns the new edges (not yet inserted into the graph).
pub fn infer_derivations(g: &OpmGraph) -> Vec<Edge> {
    let mut used_by: BTreeMap<&NodeId, Vec<&NodeId>> = BTreeMap::new();
    for e in g.edges_of_kind(EdgeKind::Used) {
        used_by.entry(&e.effect).or_default().push(&e.cause);
    }
    let mut out = Vec::new();
    let existing: BTreeSet<(NodeId, NodeId)> = g
        .edges_of_kind(EdgeKind::WasDerivedFrom)
        .map(|e| (e.effect.clone(), e.cause.clone()))
        .collect();
    for gen in g.edges_of_kind(EdgeKind::WasGeneratedBy) {
        if let Some(inputs) = used_by.get(&gen.cause) {
            for input in inputs {
                if gen.effect != **input
                    && !existing.contains(&(gen.effect.clone(), (*input).clone()))
                {
                    out.push(Edge::was_derived_from(gen.effect.clone(), (*input).clone()));
                }
            }
        }
    }
    out
}

/// Apply the process-introduction completion rule: `p₂ used a` and
/// `a wasGeneratedBy p₁` ⟹ `p₂ wasTriggeredBy p₁`.
pub fn infer_triggers(g: &OpmGraph) -> Vec<Edge> {
    let mut generated_by: BTreeMap<&NodeId, Vec<&NodeId>> = BTreeMap::new();
    for e in g.edges_of_kind(EdgeKind::WasGeneratedBy) {
        generated_by.entry(&e.effect).or_default().push(&e.cause);
    }
    let existing: BTreeSet<(NodeId, NodeId)> = g
        .edges_of_kind(EdgeKind::WasTriggeredBy)
        .map(|e| (e.effect.clone(), e.cause.clone()))
        .collect();
    let mut out = Vec::new();
    for used in g.edges_of_kind(EdgeKind::Used) {
        if let Some(producers) = generated_by.get(&used.cause) {
            for p1 in producers {
                if used.effect != **p1 && !existing.contains(&(used.effect.clone(), (*p1).clone()))
                {
                    out.push(Edge::was_triggered_by(used.effect.clone(), (*p1).clone()));
                }
            }
        }
    }
    out
}

/// Multi-step derivation: the transitive closure of `wasDerivedFrom`
/// (single-step edges plus the completion-rule derivations). Returns, for
/// each artifact, the set of artifacts it (transitively) derives from.
pub fn derivation_closure(g: &OpmGraph) -> BTreeMap<NodeId, BTreeSet<NodeId>> {
    let mut direct: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for e in g.edges_of_kind(EdgeKind::WasDerivedFrom) {
        direct
            .entry(e.effect.clone())
            .or_default()
            .insert(e.cause.clone());
    }
    for e in infer_derivations(g) {
        direct.entry(e.effect).or_default().insert(e.cause);
    }
    let artifacts: Vec<NodeId> = direct.keys().cloned().collect();
    let mut closure = BTreeMap::new();
    for a in artifacts {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = direct
            .get(&a)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        while let Some(n) = queue.pop_front() {
            if seen.insert(n.clone()) {
                if let Some(next) = direct.get(&n) {
                    queue.extend(next.iter().cloned());
                }
            }
        }
        seen.remove(&a); // an artifact never "derives from itself"
        closure.insert(a, seen);
    }
    closure
}

/// Saturate the graph: insert all completion-rule edges until a fixpoint.
/// Returns the number of edges added. Because each rule only *reads*
/// `used`/`wasGeneratedBy` edges (which are never added), one pass of each
/// rule reaches the fixpoint; the loop guards against future rules.
pub fn saturate(g: &mut OpmGraph) -> usize {
    let mut added = 0;
    loop {
        let mut new_edges = infer_derivations(g);
        new_edges.extend(infer_triggers(g));
        if new_edges.is_empty() {
            break;
        }
        for e in new_edges {
            g.add_edge(e)
                .expect("inferred edges reference existing nodes");
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Artifact, Process};

    /// a1 -> p1 -> a2 -> p2 -> a3 (pipeline of two steps).
    fn pipeline() -> OpmGraph {
        let mut g = OpmGraph::new();
        for a in ["a:1", "a:2", "a:3"] {
            g.add_artifact(Artifact::new(a, a));
        }
        for p in ["p:1", "p:2"] {
            g.add_process(Process::new(p, p));
        }
        g.add_edge(Edge::used("p:1".into(), "a:1".into(), None))
            .unwrap();
        g.add_edge(Edge::was_generated_by("a:2".into(), "p:1".into(), None))
            .unwrap();
        g.add_edge(Edge::used("p:2".into(), "a:2".into(), None))
            .unwrap();
        g.add_edge(Edge::was_generated_by("a:3".into(), "p:2".into(), None))
            .unwrap();
        g
    }

    #[test]
    fn derivations_inferred_per_process() {
        let g = pipeline();
        let d = infer_derivations(&g);
        let pairs: BTreeSet<(String, String)> = d
            .iter()
            .map(|e| (e.effect.to_string(), e.cause.to_string()))
            .collect();
        assert!(pairs.contains(&("a:2".into(), "a:1".into())));
        assert!(pairs.contains(&("a:3".into(), "a:2".into())));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn triggers_inferred_across_shared_artifact() {
        let g = pipeline();
        let t = infer_triggers(&g);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].effect.as_str(), "p:2");
        assert_eq!(t[0].cause.as_str(), "p:1");
    }

    #[test]
    fn closure_spans_pipeline() {
        let g = pipeline();
        let c = derivation_closure(&g);
        let a3 = c.get(&"a:3".into()).unwrap();
        assert!(a3.contains(&"a:2".into()));
        assert!(a3.contains(&"a:1".into()));
    }

    #[test]
    fn saturate_reaches_fixpoint_and_is_idempotent() {
        let mut g = pipeline();
        let added = saturate(&mut g);
        assert_eq!(added, 3); // 2 derivations + 1 trigger
        let again = saturate(&mut g);
        assert_eq!(again, 0);
    }

    #[test]
    fn inference_skips_existing_edges() {
        let mut g = pipeline();
        g.add_edge(Edge::was_derived_from("a:2".into(), "a:1".into()))
            .unwrap();
        let d = infer_derivations(&g);
        assert_eq!(d.len(), 1); // only a:3 <- a:2 remains to infer
    }

    #[test]
    fn self_loops_never_inferred() {
        let mut g = OpmGraph::new();
        g.add_artifact(Artifact::new("a:x", "x"));
        g.add_process(Process::new("p:id", "identity"));
        // p uses a:x and regenerates a:x (an in-place "update").
        g.add_edge(Edge::used("p:id".into(), "a:x".into(), None))
            .unwrap();
        g.add_edge(Edge::was_generated_by("a:x".into(), "p:id".into(), None))
            .unwrap();
        assert!(infer_derivations(&g).is_empty());
        assert!(infer_triggers(&g).is_empty());
    }

    #[test]
    fn closure_handles_cycles_without_hanging() {
        let mut g = OpmGraph::new();
        g.add_artifact(Artifact::new("a:1", "1"));
        g.add_artifact(Artifact::new("a:2", "2"));
        g.add_edge(Edge::was_derived_from("a:1".into(), "a:2".into()))
            .unwrap();
        g.add_edge(Edge::was_derived_from("a:2".into(), "a:1".into()))
            .unwrap();
        let c = derivation_closure(&g);
        assert!(c[&NodeId::new("a:1")].contains(&"a:2".into()));
        assert!(c[&NodeId::new("a:2")].contains(&"a:1".into()));
    }
}
