//! Linked Data export — the paper's §V: "provide support to connect
//! curated metadata with Linked Data initiatives … allow cross-
//! referencing scientific papers across distinct research communities".
//!
//! OPM graphs serialize to N-Triples using the OPM vocabulary namespace
//! (`opm:`) plus RDFS labels; annotations become literal-valued
//! predicates in a local namespace. The output is line-oriented and
//! deterministic (sorted), so exports diff cleanly across curation runs.

use crate::edge::EdgeKind;
use crate::graph::OpmGraph;
use crate::model::{Annotations, NodeId};

/// Namespace prefixes used in the export.
pub const OPM_NS: &str = "http://openprovenance.org/model/opmo#";
/// RDFS `label` predicate IRI.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// RDF `type` predicate IRI.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// Local namespace for preserva nodes and annotation predicates.
pub const PRESERVA_NS: &str = "https://preserva.example.org/ns#";

fn escape_literal(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Percent-encode the characters N-Triples forbids in IRIs.
fn encode_iri_part(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '<' => out.push_str("%3C"),
            '>' => out.push_str("%3E"),
            '"' => out.push_str("%22"),
            '{' => out.push_str("%7B"),
            '}' => out.push_str("%7D"),
            '|' => out.push_str("%7C"),
            '^' => out.push_str("%5E"),
            '`' => out.push_str("%60"),
            '\\' => out.push_str("%5C"),
            other => out.push(other),
        }
    }
    out
}

fn node_iri(id: &NodeId) -> String {
    format!("<{}node/{}>", PRESERVA_NS, encode_iri_part(id.as_str()))
}

fn triple(subject: &str, predicate: &str, object: &str) -> String {
    format!("{subject} <{predicate}> {object} .")
}

fn literal(value: &str) -> String {
    format!("\"{}\"", escape_literal(value))
}

fn annotation_triples(out: &mut Vec<String>, subject: &str, ann: &Annotations) {
    for (k, v) in ann {
        let pred = format!("{}annotation/{}", PRESERVA_NS, encode_iri_part(k));
        out.push(triple(subject, &pred, &literal(v)));
    }
}

/// The OPM-vocabulary property name for an edge kind.
fn edge_property(kind: EdgeKind) -> String {
    format!("{}{}", OPM_NS, kind.spec_name())
}

/// Export the graph as sorted N-Triples.
pub fn to_ntriples(g: &OpmGraph) -> String {
    let mut lines = Vec::new();
    for (id, a) in &g.artifacts {
        let s = node_iri(id);
        lines.push(triple(&s, RDF_TYPE, &format!("<{OPM_NS}Artifact>")));
        lines.push(triple(&s, RDFS_LABEL, &literal(&a.label)));
        annotation_triples(&mut lines, &s, &a.annotations);
    }
    for (id, p) in &g.processes {
        let s = node_iri(id);
        lines.push(triple(&s, RDF_TYPE, &format!("<{OPM_NS}Process>")));
        lines.push(triple(&s, RDFS_LABEL, &literal(&p.label)));
        annotation_triples(&mut lines, &s, &p.annotations);
    }
    for (id, a) in &g.agents {
        let s = node_iri(id);
        lines.push(triple(&s, RDF_TYPE, &format!("<{OPM_NS}Agent>")));
        lines.push(triple(&s, RDFS_LABEL, &literal(&a.label)));
        annotation_triples(&mut lines, &s, &a.annotations);
    }
    for e in &g.edges {
        lines.push(triple(
            &node_iri(&e.effect),
            &edge_property(e.kind),
            &node_iri(&e.cause),
        ));
    }
    lines.sort();
    lines.dedup();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Count of triples an export would produce (cheap, for reporting).
pub fn triple_count(g: &OpmGraph) -> usize {
    let node_triples = |ann: &Annotations| 2 + ann.len();
    g.artifacts
        .values()
        .map(|a| node_triples(&a.annotations))
        .sum::<usize>()
        + g.processes
            .values()
            .map(|p| node_triples(&p.annotations))
            .sum::<usize>()
        + g.agents
            .values()
            .map(|a| node_triples(&a.annotations))
            .sum::<usize>()
        + g.edges.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::model::{Artifact, Process};

    fn graph() -> OpmGraph {
        let mut g = OpmGraph::new();
        g.add_artifact(
            Artifact::new("a:names", "FNJV \"species\" names")
                .with_annotation("Q(reputation)", "1"),
        );
        g.add_process(Process::new("p:check", "outdated-name check"));
        g.add_edge(Edge::used("p:check".into(), "a:names".into(), Some("in")))
            .unwrap();
        g
    }

    #[test]
    fn export_contains_types_labels_edges() {
        let nt = to_ntriples(&graph());
        assert!(nt.contains("opmo#Artifact>"));
        assert!(nt.contains("opmo#Process>"));
        assert!(nt.contains("opmo#used>"));
        assert!(nt.contains("rdf-schema#label>"));
        assert!(nt.contains("annotation/Q(reputation)>"));
    }

    #[test]
    fn every_line_is_a_terminated_triple() {
        let nt = to_ntriples(&graph());
        for line in nt.lines() {
            assert!(line.ends_with(" ."), "unterminated: {line}");
            assert!(line.starts_with('<'), "bad subject: {line}");
        }
    }

    #[test]
    fn literals_escaped_and_iris_encoded() {
        let nt = to_ntriples(&graph());
        // The label contained quotes; they must be escaped.
        assert!(nt.contains("FNJV \\\"species\\\" names"));
        // Node ids with ':' are fine but spaces would be encoded.
        let mut g = graph();
        g.add_artifact(Artifact::new("a:with space", "x"));
        let nt2 = to_ntriples(&g);
        assert!(nt2.contains("a:with%20space"));
        assert!(!nt2.contains("a:with space>"));
    }

    #[test]
    fn export_is_sorted_and_deterministic() {
        let nt1 = to_ntriples(&graph());
        let nt2 = to_ntriples(&graph());
        assert_eq!(nt1, nt2);
        let lines: Vec<&str> = nt1.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn triple_count_matches_export() {
        let g = graph();
        assert_eq!(to_ntriples(&g).lines().count(), triple_count(&g));
    }
}
