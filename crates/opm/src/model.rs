//! OPM node kinds: artifacts, processes and agents.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifier of any OPM node. IDs are opaque strings; by convention the
/// workflow layer prefixes them (`a:` artifact, `p:` process, `ag:` agent).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub String);

impl NodeId {
    /// Wrap a string as a node id.
    pub fn new(id: impl Into<String>) -> Self {
        NodeId(id.into())
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId(s.to_string())
    }
}

/// Free-form key→value annotations attached to nodes and edges.
///
/// The paper's Workflow Adapter stores quality annotations (e.g.
/// `Q(reputation) = "1"`) here, exactly mirroring Listing 1.
pub type Annotations = BTreeMap<String, String>;

/// An immutable piece of state — a dataset, a metadata record set, a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artifact {
    /// Unique node id.
    pub id: NodeId,
    /// Human-readable label.
    pub label: String,
    #[serde(default)]
    /// Free-form annotations (incl. quality annotations).
    pub annotations: Annotations,
}

impl Artifact {
    /// Create an artifact with no annotations.
    pub fn new(id: impl Into<String>, label: impl Into<String>) -> Self {
        Artifact {
            id: NodeId::new(id),
            label: label.into(),
            annotations: Annotations::new(),
        }
    }

    /// Attach one annotation (builder style).
    pub fn with_annotation(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.annotations.insert(key.into(), value.into());
        self
    }
}

/// An action performed on or caused by artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Unique node id.
    pub id: NodeId,
    /// Human-readable label.
    pub label: String,
    #[serde(default)]
    /// Free-form annotations (incl. quality annotations).
    pub annotations: Annotations,
}

impl Process {
    /// Create a process with no annotations.
    pub fn new(id: impl Into<String>, label: impl Into<String>) -> Self {
        Process {
            id: NodeId::new(id),
            label: label.into(),
            annotations: Annotations::new(),
        }
    }

    /// Attach one annotation (builder style).
    pub fn with_annotation(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.annotations.insert(key.into(), value.into());
        self
    }
}

/// A contextual entity controlling processes (a curator, a service, a
/// workflow engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agent {
    /// Unique node id.
    pub id: NodeId,
    /// Human-readable label.
    pub label: String,
    #[serde(default)]
    /// Free-form annotations (incl. quality annotations).
    pub annotations: Annotations,
}

impl Agent {
    /// Create an agent with no annotations.
    pub fn new(id: impl Into<String>, label: impl Into<String>) -> Self {
        Agent {
            id: NodeId::new(id),
            label: label.into(),
            annotations: Annotations::new(),
        }
    }

    /// Attach one annotation (builder style).
    pub fn with_annotation(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.annotations.insert(key.into(), value.into());
        self
    }
}

/// Account name: one alternative description of an execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Account(pub String);

impl Account {
    /// Wrap a string as an account name.
    pub fn new(name: impl Into<String>) -> Self {
        Account(name.into())
    }
}

impl std::fmt::Display for Account {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_attach_annotations() {
        let a = Artifact::new("a:1", "input").with_annotation("Q(reputation)", "1");
        assert_eq!(a.annotations.get("Q(reputation)").unwrap(), "1");
        let p = Process::new("p:1", "check").with_annotation("host", "local");
        assert_eq!(p.annotations.len(), 1);
        let ag = Agent::new("ag:1", "curator").with_annotation("role", "biologist");
        assert_eq!(ag.annotations.get("role").unwrap(), "biologist");
    }

    #[test]
    fn node_id_display_and_conversion() {
        let id: NodeId = "a:x".into();
        assert_eq!(id.to_string(), "a:x");
        assert_eq!(id.as_str(), "a:x");
    }

    #[test]
    fn serde_roundtrip() {
        let a = Artifact::new("a:1", "input").with_annotation("k", "v");
        let json = serde_json::to_string(&a).unwrap();
        let back: Artifact = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
