//! The five OPM causal edge kinds.
//!
//! Directionality follows the spec: an edge points from the *effect* to the
//! *cause* (a `used` edge points from the consuming process back to the
//! artifact that already existed).

use serde::{Deserialize, Serialize};

use crate::model::{Account, Annotations, NodeId};

/// Discriminates the five causal dependency kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// process → artifact, with a role.
    Used,
    /// artifact → process, with a role.
    WasGeneratedBy,
    /// process → agent, with a role.
    WasControlledBy,
    /// process → process.
    WasTriggeredBy,
    /// artifact → artifact.
    WasDerivedFrom,
}

impl EdgeKind {
    /// The spec's lowercase-camel name.
    pub fn spec_name(self) -> &'static str {
        match self {
            EdgeKind::Used => "used",
            EdgeKind::WasGeneratedBy => "wasGeneratedBy",
            EdgeKind::WasControlledBy => "wasControlledBy",
            EdgeKind::WasTriggeredBy => "wasTriggeredBy",
            EdgeKind::WasDerivedFrom => "wasDerivedFrom",
        }
    }
}

/// A causal dependency between two nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Which of the five causal kinds this edge is.
    pub kind: EdgeKind,
    /// Effect node (edge source).
    pub effect: NodeId,
    /// Cause node (edge destination).
    pub cause: NodeId,
    /// Role qualifier, mandatory for `used` / `wasGeneratedBy` /
    /// `wasControlledBy` in the spec; we default it to `"undefined"` when
    /// the caller passes `None`, as the spec permits.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub role: Option<String>,
    /// Accounts this edge belongs to (empty = the implicit default account).
    #[serde(default)]
    pub accounts: Vec<Account>,
    #[serde(default)]
    /// Free-form annotations on the dependency.
    pub annotations: Annotations,
}

impl Edge {
    fn new(kind: EdgeKind, effect: NodeId, cause: NodeId, role: Option<&str>) -> Edge {
        Edge {
            kind,
            effect,
            cause,
            role: role.map(str::to_string),
            accounts: Vec::new(),
            annotations: Annotations::new(),
        }
    }

    /// `process used artifact (role)`.
    pub fn used(process: NodeId, artifact: NodeId, role: Option<&str>) -> Edge {
        Edge::new(EdgeKind::Used, process, artifact, role)
    }

    /// `artifact wasGeneratedBy process (role)`.
    pub fn was_generated_by(artifact: NodeId, process: NodeId, role: Option<&str>) -> Edge {
        Edge::new(EdgeKind::WasGeneratedBy, artifact, process, role)
    }

    /// `process wasControlledBy agent (role)`.
    pub fn was_controlled_by(process: NodeId, agent: NodeId, role: Option<&str>) -> Edge {
        Edge::new(EdgeKind::WasControlledBy, process, agent, role)
    }

    /// `process2 wasTriggeredBy process1`.
    pub fn was_triggered_by(effect: NodeId, cause: NodeId) -> Edge {
        Edge::new(EdgeKind::WasTriggeredBy, effect, cause, None)
    }

    /// `artifact2 wasDerivedFrom artifact1`.
    pub fn was_derived_from(effect: NodeId, cause: NodeId) -> Edge {
        Edge::new(EdgeKind::WasDerivedFrom, effect, cause, None)
    }

    /// Assign the edge to an account (builder style).
    pub fn in_account(mut self, account: Account) -> Edge {
        if !self.accounts.contains(&account) {
            self.accounts.push(account);
        }
        self
    }

    /// Attach one annotation (builder style).
    pub fn with_annotation(mut self, key: impl Into<String>, value: impl Into<String>) -> Edge {
        self.annotations.insert(key.into(), value.into());
        self
    }

    /// Whether this edge belongs to `account` (edges with no explicit
    /// account belong to the default account only).
    pub fn is_in_account(&self, account: Option<&Account>) -> bool {
        match account {
            None => true, // every edge is visible in the union view
            Some(acc) => self.accounts.contains(acc),
        }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.role {
            Some(r) => write!(
                f,
                "{} -{}({})-> {}",
                self.effect,
                self.kind.spec_name(),
                r,
                self.cause
            ),
            None => write!(
                f,
                "{} -{}-> {}",
                self.effect,
                self.kind.spec_name(),
                self.cause
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let e = Edge::used("p:1".into(), "a:1".into(), Some("in"));
        assert_eq!(e.kind, EdgeKind::Used);
        assert_eq!(e.effect.as_str(), "p:1");
        assert_eq!(e.cause.as_str(), "a:1");
        let g = Edge::was_generated_by("a:2".into(), "p:1".into(), Some("out"));
        assert_eq!(g.effect.as_str(), "a:2");
        assert_eq!(g.cause.as_str(), "p:1");
    }

    #[test]
    fn display_includes_role() {
        let e = Edge::used("p:1".into(), "a:1".into(), Some("in"));
        assert_eq!(e.to_string(), "p:1 -used(in)-> a:1");
        let d = Edge::was_derived_from("a:2".into(), "a:1".into());
        assert_eq!(d.to_string(), "a:2 -wasDerivedFrom-> a:1");
    }

    #[test]
    fn account_membership() {
        let acc = Account::new("curation-2013");
        let e = Edge::was_triggered_by("p:2".into(), "p:1".into()).in_account(acc.clone());
        assert!(e.is_in_account(Some(&acc)));
        assert!(e.is_in_account(None));
        assert!(!e.is_in_account(Some(&Account::new("other"))));
    }

    #[test]
    fn in_account_is_idempotent() {
        let acc = Account::new("a");
        let e = Edge::was_derived_from("a:2".into(), "a:1".into())
            .in_account(acc.clone())
            .in_account(acc);
        assert_eq!(e.accounts.len(), 1);
    }

    #[test]
    fn spec_names_match_opm() {
        assert_eq!(EdgeKind::Used.spec_name(), "used");
        assert_eq!(EdgeKind::WasGeneratedBy.spec_name(), "wasGeneratedBy");
        assert_eq!(EdgeKind::WasControlledBy.spec_name(), "wasControlledBy");
        assert_eq!(EdgeKind::WasTriggeredBy.spec_name(), "wasTriggeredBy");
        assert_eq!(EdgeKind::WasDerivedFrom.spec_name(), "wasDerivedFrom");
    }

    #[test]
    fn serde_roundtrip() {
        let e = Edge::used("p:1".into(), "a:1".into(), Some("in"))
            .in_account(Account::new("acc"))
            .with_annotation("t", "0");
        let json = serde_json::to_string(&e).unwrap();
        let back: Edge = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
