#![warn(missing_docs)]

//! `preserva-opm` — an implementation of the Open Provenance Model (OPM)
//! core specification v1.1 (Moreau et al., FGCS 2011), the provenance
//! interchange model the paper's Provenance Manager consumes from Taverna.
//!
//! OPM describes a past execution as a directed graph of three node kinds —
//! [`model::Artifact`] (immutable piece of state), [`model::Process`]
//! (action) and [`model::Agent`] (contextual controller) — connected by
//! five causal [`edge::Edge`] kinds:
//!
//! | edge | from → to | reading |
//! |---|---|---|
//! | `used(r)` | process → artifact | the process consumed the artifact in role *r* |
//! | `wasGeneratedBy(r)` | artifact → process | the artifact was produced by the process in role *r* |
//! | `wasControlledBy(r)` | process → agent | the agent controlled the process |
//! | `wasTriggeredBy` | process₂ → process₁ | process₁ caused process₂ to start |
//! | `wasDerivedFrom` | artifact₂ → artifact₁ | artifact₁ influenced artifact₂ |
//!
//! Edges may belong to *accounts* (alternative descriptions of the same
//! execution). [`inference`] implements the spec's completion rules and
//! multi-step (starred) transitive edges; [`validate`] enforces graph
//! legality; [`serialize`] round-trips graphs through JSON and exports
//! GraphViz DOT.
//!
//! # Example
//!
//! ```
//! use preserva_opm::graph::OpmGraph;
//! use preserva_opm::model::{Artifact, Process};
//! use preserva_opm::edge::Edge;
//!
//! let mut g = OpmGraph::new();
//! let names = g.add_artifact(Artifact::new("a:names", "FNJV species names"));
//! let check = g.add_process(Process::new("p:check", "Outdated name detection"));
//! let report = g.add_artifact(Artifact::new("a:report", "Updated-name report"));
//! g.add_edge(Edge::used(check.clone(), names.clone(), Some("input"))).unwrap();
//! g.add_edge(Edge::was_generated_by(report.clone(), check, Some("output"))).unwrap();
//! // The completion rule infers report -wasDerivedFrom-> names.
//! let derived = preserva_opm::inference::infer_derivations(&g);
//! assert_eq!(derived.len(), 1);
//! ```

pub mod edge;
pub mod graph;
pub mod inference;
pub mod model;
pub mod rdf;
pub mod serialize;
pub mod template;
pub mod validate;

pub use edge::{Edge, EdgeKind};
pub use graph::OpmGraph;
pub use model::{Agent, Artifact, NodeId, Process};
