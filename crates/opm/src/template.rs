//! Template/binding split for structural sharing of per-run graphs.
//!
//! Every run of the same workflow exports an OPM graph with the same
//! *shape*: the node ids, labels, edges and quality annotations are all
//! derived from the workflow definition; only the run id woven into the
//! ids plus a handful of volatile annotations (artifact value previews,
//! run status, retry counts) differ from run to run. [`extract`] splits
//! a graph into that run-agnostic *skeleton* — content-addressed by
//! [`content_hash`] so identical skeletons are stored once — and a
//! compact per-run [`Bindings`] record; [`rehydrate`] inverts the split
//! exactly.
//!
//! The split is **conservative**: `extract` verifies losslessness by
//! rehydrating its own output and comparing with the original, and
//! returns `None` whenever the roundtrip is not bit-perfect (run id
//! absent from the graph, a string that already contains the slot
//! marker, …). Callers fall back to materialized storage in that case,
//! so correctness never depends on the substitution heuristics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::graph::OpmGraph;
use crate::model::{Account, Agent, Annotations, Artifact, NodeId, Process};

/// Marker substituted for the run id inside skeleton strings. Chosen to
/// be visibly artificial and vanishingly unlikely in real ids or labels;
/// [`extract`] refuses graphs that already contain it.
pub const RUN_SLOT: &str = "\u{ab}run\u{bb}"; // «run»

/// Annotation keys whose values are per-run, not workflow-derived: these
/// move from the skeleton into [`Bindings`] so that runs with different
/// inputs still share one skeleton.
pub const VOLATILE_KEYS: &[&str] = &["value", "run_id", "status", "attempts"];

/// Per-run residue of the template split: everything [`rehydrate`] needs
/// to reconstruct the exact original graph from a shared skeleton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bindings {
    /// The run id substituted back into every [`RUN_SLOT`].
    pub run_id: String,
    /// Volatile annotations by *templated* node id (i.e. the id as it
    /// appears in the skeleton, slot marker included).
    #[serde(default)]
    pub annotations: BTreeMap<String, Annotations>,
}

/// A run-agnostic skeleton with its content address.
#[derive(Debug, Clone, PartialEq)]
pub struct Extracted {
    /// The shared skeleton (store once per distinct hash).
    pub skeleton: OpmGraph,
    /// Stable content address of the skeleton.
    pub hash: String,
    /// The per-run residue (store once per run).
    pub bindings: Bindings,
}

/// FNV-1a over bytes; the same function the storage sharding router uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable content address of a skeleton: FNV-1a over its canonical JSON
/// (all node maps are `BTreeMap`s, so serialization order is
/// deterministic), suffixed with the byte length to narrow collisions.
pub fn content_hash(skeleton: &OpmGraph) -> Option<String> {
    let bytes = serde_json::to_vec(skeleton).ok()?;
    Some(format!("{:016x}-{:x}", fnv1a(&bytes), bytes.len()))
}

/// Substitute every occurrence of `from` with `to` across all strings of
/// the graph: ids, labels, roles, accounts, annotation keys and values.
fn substitute(graph: &OpmGraph, from: &str, to: &str) -> OpmGraph {
    let sub = |s: &str| s.replace(from, to);
    let sub_anns = |anns: &Annotations| -> Annotations {
        anns.iter().map(|(k, v)| (sub(k), sub(v))).collect()
    };
    let mut out = OpmGraph::new();
    for a in graph.artifacts.values() {
        out.artifacts.insert(
            NodeId::new(sub(a.id.as_str())),
            Artifact {
                id: NodeId::new(sub(a.id.as_str())),
                label: sub(&a.label),
                annotations: sub_anns(&a.annotations),
            },
        );
    }
    for p in graph.processes.values() {
        out.processes.insert(
            NodeId::new(sub(p.id.as_str())),
            Process {
                id: NodeId::new(sub(p.id.as_str())),
                label: sub(&p.label),
                annotations: sub_anns(&p.annotations),
            },
        );
    }
    for ag in graph.agents.values() {
        out.agents.insert(
            NodeId::new(sub(ag.id.as_str())),
            Agent {
                id: NodeId::new(sub(ag.id.as_str())),
                label: sub(&ag.label),
                annotations: sub_anns(&ag.annotations),
            },
        );
    }
    for e in &graph.edges {
        let mut e2 = e.clone();
        e2.effect = NodeId::new(sub(e.effect.as_str()));
        e2.cause = NodeId::new(sub(e.cause.as_str()));
        e2.role = e.role.as_deref().map(sub);
        e2.accounts = e.accounts.iter().map(|a| Account::new(sub(&a.0))).collect();
        e2.annotations = sub_anns(&e.annotations);
        out.edges.push(e2);
    }
    out.accounts = graph
        .accounts
        .iter()
        .map(|a| Account::new(sub(&a.0)))
        .collect();
    out
}

/// Move [`VOLATILE_KEYS`] annotations out of every node into a bindings
/// map keyed by node id, leaving the graph's structural annotations.
fn strip_volatile(graph: &mut OpmGraph) -> BTreeMap<String, Annotations> {
    let mut moved: BTreeMap<String, Annotations> = BTreeMap::new();
    let mut strip = |id: &NodeId, anns: &mut Annotations| {
        let mut taken = Annotations::new();
        for key in VOLATILE_KEYS {
            if let Some(v) = anns.remove(*key) {
                taken.insert((*key).to_string(), v);
            }
        }
        if !taken.is_empty() {
            moved.insert(id.as_str().to_string(), taken);
        }
    };
    for a in graph.artifacts.values_mut() {
        strip(&a.id.clone(), &mut a.annotations);
    }
    for p in graph.processes.values_mut() {
        strip(&p.id.clone(), &mut p.annotations);
    }
    for ag in graph.agents.values_mut() {
        strip(&ag.id.clone(), &mut ag.annotations);
    }
    moved
}

/// Split `graph` into a run-agnostic skeleton and per-run bindings, or
/// `None` when the split would not be lossless (empty run id, run id not
/// present in the graph, slot marker already present, or any roundtrip
/// mismatch). The skeleton's annotations bindings are keyed by the
/// *templated* node ids, so two runs with identical structure hash to
/// the same skeleton even though their volatile values differ.
pub fn extract(graph: &OpmGraph, run_id: &str) -> Option<Extracted> {
    if run_id.is_empty() {
        return None;
    }
    let serialized = serde_json::to_string(graph).ok()?;
    if serialized.contains(RUN_SLOT) || !serialized.contains(run_id) {
        return None;
    }
    // Strip volatile annotations BEFORE substituting, so bindings keep
    // the original values verbatim (a `run_id` annotation's value is the
    // run id itself and must not be slot-substituted). Binding keys are
    // then templated to match the skeleton's ids.
    let mut work = graph.clone();
    let volatile = strip_volatile(&mut work);
    let skeleton = substitute(&work, run_id, RUN_SLOT);
    let bindings = Bindings {
        run_id: run_id.to_string(),
        annotations: volatile
            .into_iter()
            .map(|(id, anns)| (id.replace(run_id, RUN_SLOT), anns))
            .collect(),
    };
    // Conservative: a split that does not roundtrip bit-perfectly is no
    // split at all. Guards against pathological run ids (substrings of
    // structural strings) without needing to enumerate them.
    if rehydrate(&skeleton, &bindings) != *graph {
        return None;
    }
    let hash = content_hash(&skeleton)?;
    Some(Extracted {
        skeleton,
        hash,
        bindings,
    })
}

/// Reconstruct the full per-run graph from a shared skeleton and its
/// per-run bindings — the exact inverse of [`extract`].
pub fn rehydrate(skeleton: &OpmGraph, bindings: &Bindings) -> OpmGraph {
    let mut graph = substitute(skeleton, RUN_SLOT, &bindings.run_id);
    for (templated_id, anns) in &bindings.annotations {
        let id = NodeId::new(templated_id.replace(RUN_SLOT, &bindings.run_id));
        let target = graph
            .artifacts
            .get_mut(&id)
            .map(|a| &mut a.annotations)
            .or_else(|| graph.processes.get_mut(&id).map(|p| &mut p.annotations))
            .or_else(|| graph.agents.get_mut(&id).map(|ag| &mut ag.annotations));
        if let Some(target) = target {
            for (k, v) in anns {
                target.insert(k.clone(), v.clone());
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    /// A graph shaped like the wfms exporter's output for `run`.
    fn run_graph(run: &str, value: &str) -> OpmGraph {
        let mut g = OpmGraph::new();
        g.add_artifact(
            Artifact::new(format!("a:{run}:in:x"), "workflow input x")
                .with_annotation("value", value)
                .with_annotation("Q(reputation)", "1"),
        );
        g.add_artifact(
            Artifact::new(format!("a:{run}:out:y"), "workflow output y")
                .with_annotation("value", value),
        );
        g.add_process(
            Process::new(format!("p:{run}:id"), "identity").with_annotation("attempts", "1"),
        );
        g.add_agent(
            Agent::new(format!("ag:{run}:engine"), "wfms engine")
                .with_annotation("run_id", run)
                .with_annotation("status", "succeeded"),
        );
        g.add_edge(Edge::used(
            format!("p:{run}:id").as_str().into(),
            format!("a:{run}:in:x").as_str().into(),
            Some("x"),
        ))
        .unwrap();
        g.add_edge(Edge::was_generated_by(
            format!("a:{run}:out:y").as_str().into(),
            format!("p:{run}:id").as_str().into(),
            Some("y"),
        ))
        .unwrap();
        g.add_edge(Edge::was_controlled_by(
            format!("p:{run}:id").as_str().into(),
            format!("ag:{run}:engine").as_str().into(),
            Some("engine"),
        ))
        .unwrap();
        g
    }

    #[test]
    fn extract_then_rehydrate_is_identity() {
        let g = run_graph("run-00aa-000001", "42");
        let ex = extract(&g, "run-00aa-000001").expect("extractable");
        assert_eq!(rehydrate(&ex.skeleton, &ex.bindings), g);
    }

    #[test]
    fn same_workflow_different_runs_share_one_skeleton() {
        let g1 = run_graph("run-00aa-000001", "42");
        let g2 = run_graph("run-77bb-000009", "1337");
        let e1 = extract(&g1, "run-00aa-000001").unwrap();
        let e2 = extract(&g2, "run-77bb-000009").unwrap();
        assert_eq!(e1.hash, e2.hash);
        assert_eq!(e1.skeleton, e2.skeleton);
        assert_ne!(e1.bindings, e2.bindings);
    }

    #[test]
    fn skeleton_contains_no_run_id_and_no_volatile_values() {
        let g = run_graph("run-00aa-000001", "secret-payload");
        let ex = extract(&g, "run-00aa-000001").unwrap();
        let json = serde_json::to_string(&ex.skeleton).unwrap();
        assert!(!json.contains("run-00aa-000001"));
        assert!(!json.contains("secret-payload"));
        assert!(json.contains(RUN_SLOT));
    }

    #[test]
    fn graphs_without_the_run_id_fall_back() {
        let g = run_graph("run-00aa-000001", "42");
        assert!(extract(&g, "some-other-run").is_none());
        assert!(extract(&g, "").is_none());
    }

    #[test]
    fn slot_marker_collision_falls_back() {
        let mut g = run_graph("run-00aa-000001", "42");
        g.add_artifact(Artifact::new(format!("a:weird:{RUN_SLOT}"), "collider"));
        assert!(extract(&g, "run-00aa-000001").is_none());
    }

    #[test]
    fn bindings_round_trip_through_serde() {
        let g = run_graph("run-00aa-000001", "42");
        let ex = extract(&g, "run-00aa-000001").unwrap();
        let json = serde_json::to_string(&ex.bindings).unwrap();
        let back: Bindings = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ex.bindings);
        assert_eq!(rehydrate(&ex.skeleton, &back), g);
    }

    #[test]
    fn structural_annotation_differences_change_the_hash() {
        let g1 = run_graph("run-00aa-000001", "42");
        let mut g2 = run_graph("run-77bb-000009", "42");
        g2.artifacts
            .iter_mut()
            .next()
            .unwrap()
            .1
            .annotations
            .insert("Q(accuracy)".into(), "0.9".into());
        let e1 = extract(&g1, "run-00aa-000001").unwrap();
        let e2 = extract(&g2, "run-77bb-000009").unwrap();
        assert_ne!(e1.hash, e2.hash);
    }
}
