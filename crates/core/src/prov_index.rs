//! The cross-run provenance index: query captured runs without loading
//! graphs.
//!
//! `provenance_graphs` is journaled, so every capture emits a
//! `row-upserted` event into the change feed. [`ProvIndex`] trails that
//! feed with the same durable-cursor machinery the reassessor uses:
//! each [`refresh`](ProvIndex::refresh) drains the entries since the
//! cursor under one pinned snapshot, derives index rows for every newly
//! captured run, and commits rows + advanced cursor in ONE storage
//! batch — a crash never leaves a partially-indexed run, and replaying
//! an un-advanced cursor just re-derives identical rows.
//!
//! Two index tables serve the paper's cross-run questions from
//! key-range scans alone (no graph loads, no rehydration):
//!
//! - `prov_idx_artifact`: `artifact_key ++ 0 ++ seq_be ++ run_id` →
//!   `flags ++ run_id` — "all runs that used source X after journal
//!   seq S" is one bounded range scan, already in capture order.
//! - `prov_idx_workflow`: `workflow_id ++ 0 ++ artifact_key ++ 0 ++
//!   run_id` → `seq_be` — "runs of workflow W that touched artifact A"
//!   is one prefix scan.
//!
//! Artifact keys are run-agnostic: the run id inside an exported node id
//! (`a:<run>:in:x`) is replaced with `*`, so the same logical endpoint
//! collates across runs. Journal sequence numbers stand in for LSNs in
//! "after" filters — both advance monotonically per commit, and
//! [`preserva_storage::table::CommitReceipt`] carries the mapping.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use preserva_obs::{Counter, Gauge, Histogram, Registry};
use preserva_opm::graph::OpmGraph;
use preserva_storage::journal::ROW_UPSERTED;
use preserva_storage::table::TableStore;
use serde::{Deserialize, Serialize};

use crate::provenance_manager::{ProvenanceError, ProvenanceManager, PROVENANCE_TABLE};
use crate::repository::CodecError;

/// Table holding the index cursor, one JSON row.
pub const PROV_INDEX_META_TABLE: &str = "prov_index_meta";
/// Artifact → runs index table.
pub const PROV_IDX_ARTIFACT_TABLE: &str = "prov_idx_artifact";
/// (Workflow, artifact) → runs index table.
pub const PROV_IDX_WORKFLOW_TABLE: &str = "prov_idx_workflow";

const STATE_KEY: &[u8] = b"state";
const SEP: u8 = 0x00;
/// Flag bit: the run consumed this artifact (a `used` edge), not merely
/// produced or carried it.
const FLAG_USED: u8 = 0x01;

/// Durable cursor state.
#[derive(Debug, Default, Serialize, Deserialize)]
struct IndexState {
    /// Last journal sequence number whose effects are indexed.
    cursor: u64,
    /// Total runs indexed over the table's lifetime.
    runs: u64,
}

/// What one [`ProvIndex::refresh`] did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// Cursor before the refresh.
    pub cursor_before: u64,
    /// Cursor after (journal head of the consumed slice).
    pub cursor_after: u64,
    /// Journal entries consumed (all kinds, not just captures).
    pub entries_consumed: usize,
    /// Runs newly indexed by this refresh.
    pub runs_indexed: usize,
}

struct IndexMetrics {
    lag: Arc<Gauge>,
    indexed_runs: Arc<Counter>,
    refresh_seconds: Arc<Histogram>,
}

impl IndexMetrics {
    fn resolve(reg: &Arc<Registry>) -> IndexMetrics {
        IndexMetrics {
            lag: reg.gauge(
                "preserva_prov_index_lag",
                "Journal entries pending behind the cross-run provenance \
                 index cursor.",
            ),
            indexed_runs: reg.counter(
                "preserva_prov_indexed_runs_total",
                "Runs added to the cross-run provenance index.",
            ),
            refresh_seconds: reg.latency_histogram(
                "preserva_prov_index_refresh_seconds",
                "Latency of incremental provenance index refreshes.",
            ),
        }
    }
}

/// The incremental cross-run index over a shared store + manager.
pub struct ProvIndex {
    store: Arc<TableStore>,
    manager: Arc<ProvenanceManager>,
    obs: Arc<Registry>,
    metrics: IndexMetrics,
}

impl std::fmt::Debug for ProvIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvIndex").finish()
    }
}

impl ProvIndex {
    /// Create over the manager's store, reporting into the manager's
    /// metrics registry.
    pub fn new(manager: Arc<ProvenanceManager>) -> Self {
        let store = manager.store().clone();
        let obs = manager.metrics_registry().clone();
        let metrics = IndexMetrics::resolve(&obs);
        ProvIndex {
            store,
            manager,
            obs,
            metrics,
        }
    }

    fn load_state(&self) -> Result<IndexState, ProvenanceError> {
        match self.store.get(PROV_INDEX_META_TABLE, STATE_KEY)? {
            Some(bytes) => serde_json::from_slice(&bytes).map_err(|e| {
                ProvenanceError::Codec(CodecError::new(PROV_INDEX_META_TABLE, "state", e))
            }),
            None => Ok(IndexState::default()),
        }
    }

    /// The index cursor: every capture journaled at or below this
    /// sequence number is fully indexed.
    pub fn cursor(&self) -> Result<u64, ProvenanceError> {
        Ok(self.load_state()?.cursor)
    }

    /// Journal entries (all kinds) between the cursor and the head.
    pub fn lag(&self) -> Result<u64, ProvenanceError> {
        Ok(self
            .store
            .journal_head()
            .saturating_sub(self.load_state()?.cursor))
    }

    /// Run-agnostic key for an exported node id: the run id is replaced
    /// with `*` so one logical endpoint collates across runs.
    pub fn artifact_key(id: &str, run_id: &str) -> String {
        if run_id.is_empty() {
            id.to_string()
        } else {
            id.replace(run_id, "*")
        }
    }

    /// Consume the journal since the cursor and index every newly
    /// captured run. Index rows and the advanced cursor commit as ONE
    /// storage batch.
    pub fn refresh(&self) -> Result<RefreshOutcome, ProvenanceError> {
        let started = Instant::now();
        let mut state = self.load_state()?;
        let cursor = state.cursor;
        let snap = self.store.snapshot();

        let mut entries_consumed = 0usize;
        // Newly captured runs in feed order, deduplicated on the latest
        // seq (identical re-captures never re-emit, but be safe).
        let mut run_seqs: Vec<(String, u64)> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut pos = cursor;
        loop {
            let batch = snap.read_journal(pos, 4096)?;
            if batch.is_empty() {
                break;
            }
            pos = batch.last().expect("non-empty").seq;
            entries_consumed += batch.len();
            for e in batch {
                if e.table == PROVENANCE_TABLE && e.kind == ROW_UPSERTED {
                    if let Ok(run_id) = String::from_utf8(e.key) {
                        if seen.insert(run_id.clone()) {
                            run_seqs.push((run_id, e.seq));
                        }
                    }
                }
            }
        }
        let head = pos;
        let mut outcome = RefreshOutcome {
            cursor_before: cursor,
            cursor_after: cursor,
            entries_consumed,
            runs_indexed: 0,
        };
        if entries_consumed == 0 {
            self.metrics.lag.set(0);
            self.metrics
                .refresh_seconds
                .observe_duration(started.elapsed());
            return Ok(outcome);
        }

        let mut session = self.store.session();
        for (run_id, seq) in &run_seqs {
            let graph = self.manager.load_graph(run_id)?;
            // Workflow id comes from the trace; trace-less graphs (e.g.
            // reassessment runs staged without a trace) index by
            // artifact only.
            let workflow_id = match self.manager.load_trace(run_id) {
                Ok(t) => Some(t.workflow_id),
                Err(ProvenanceError::UnknownRun(_)) => None,
                Err(e) => return Err(e),
            };
            let used: BTreeSet<String> = graph
                .edges_of_kind(preserva_opm::edge::EdgeKind::Used)
                .map(|e| e.cause.as_str().to_string())
                .collect();
            for artifact in graph.artifacts.keys() {
                let key = Self::artifact_key(artifact.as_str(), run_id);
                let flags: u8 = if used.contains(artifact.as_str()) {
                    FLAG_USED
                } else {
                    0
                };
                let mut idx_key = key.clone().into_bytes();
                idx_key.push(SEP);
                idx_key.extend_from_slice(&seq.to_be_bytes());
                idx_key.extend_from_slice(run_id.as_bytes());
                let mut value = vec![flags];
                value.extend_from_slice(run_id.as_bytes());
                session.put(PROV_IDX_ARTIFACT_TABLE, &idx_key, &value)?;
                if let Some(wf) = &workflow_id {
                    let mut wkey = wf.clone().into_bytes();
                    wkey.push(SEP);
                    wkey.extend_from_slice(key.as_bytes());
                    wkey.push(SEP);
                    wkey.extend_from_slice(run_id.as_bytes());
                    session.put(PROV_IDX_WORKFLOW_TABLE, &wkey, &seq.to_be_bytes())?;
                }
            }
            self.metrics.indexed_runs.inc();
        }
        state.cursor = head;
        state.runs += run_seqs.len() as u64;
        let state_json = serde_json::to_vec(&state).map_err(|e| {
            ProvenanceError::Codec(CodecError::new(PROV_INDEX_META_TABLE, "state", e))
        })?;
        session.put(PROV_INDEX_META_TABLE, STATE_KEY, &state_json)?;
        session.commit()?;

        outcome.cursor_after = head;
        outcome.runs_indexed = run_seqs.len();
        self.metrics
            .lag
            .set(self.store.journal_head().saturating_sub(head));
        self.metrics
            .refresh_seconds
            .observe_duration(started.elapsed());
        self.obs.trace(
            "prov-index",
            format!(
                "indexed {} runs from {} journal entries (cursor {} -> {})",
                outcome.runs_indexed, entries_consumed, cursor, head
            ),
        );
        Ok(outcome)
    }

    /// Range bounds covering `artifact_key`'s slice with journal seq
    /// strictly greater than `after_seq`.
    fn artifact_bounds(artifact_key: &str, after_seq: u64) -> (Vec<u8>, Vec<u8>) {
        let mut start = artifact_key.as_bytes().to_vec();
        start.push(SEP);
        start.extend_from_slice(&(after_seq.saturating_add(1)).to_be_bytes());
        let mut end = artifact_key.as_bytes().to_vec();
        end.push(SEP + 1);
        (start, end)
    }

    /// Runs that *used* (consumed) `artifact_key`, captured after journal
    /// seq `after_seq` (0 = since forever), in capture order. Index-only:
    /// one bounded range scan, no graph loads.
    pub fn runs_using_artifact(
        &self,
        artifact_key: &str,
        after_seq: u64,
    ) -> Result<Vec<String>, ProvenanceError> {
        self.scan_artifact(artifact_key, after_seq, true)
    }

    /// Runs that touched (used or produced) `artifact_key` after
    /// `after_seq`, in capture order.
    pub fn runs_touching_artifact(
        &self,
        artifact_key: &str,
        after_seq: u64,
    ) -> Result<Vec<String>, ProvenanceError> {
        self.scan_artifact(artifact_key, after_seq, false)
    }

    fn scan_artifact(
        &self,
        artifact_key: &str,
        after_seq: u64,
        used_only: bool,
    ) -> Result<Vec<String>, ProvenanceError> {
        let (start, end) = Self::artifact_bounds(artifact_key, after_seq);
        let rows = self
            .store
            .scan_range(PROV_IDX_ARTIFACT_TABLE, &start, Some(&end))?;
        let mut out = Vec::new();
        for (_, value) in rows {
            if value.is_empty() {
                continue;
            }
            if used_only && value[0] & FLAG_USED == 0 {
                continue;
            }
            if let Ok(run) = String::from_utf8(value[1..].to_vec()) {
                out.push(run);
            }
        }
        Ok(out)
    }

    /// Runs of workflow `workflow_id` that touched `artifact_key`, in
    /// run-id order. One prefix scan on the workflow index.
    pub fn runs_of_workflow_touching(
        &self,
        workflow_id: &str,
        artifact_key: &str,
    ) -> Result<Vec<String>, ProvenanceError> {
        let mut prefix = workflow_id.as_bytes().to_vec();
        prefix.push(SEP);
        prefix.extend_from_slice(artifact_key.as_bytes());
        prefix.push(SEP);
        let mut end = prefix.clone();
        *end.last_mut().expect("non-empty") = SEP + 1;
        let rows = self
            .store
            .scan_range(PROV_IDX_WORKFLOW_TABLE, &prefix, Some(&end))?;
        Ok(rows
            .into_iter()
            .filter_map(|(k, _)| String::from_utf8(k[prefix.len()..].to_vec()).ok())
            .collect())
    }

    /// Distinct runs of workflow `workflow_id`, in run-id order.
    pub fn runs_of_workflow(&self, workflow_id: &str) -> Result<Vec<String>, ProvenanceError> {
        let mut prefix = workflow_id.as_bytes().to_vec();
        prefix.push(SEP);
        let mut end = workflow_id.as_bytes().to_vec();
        end.push(SEP + 1);
        let rows = self
            .store
            .scan_range(PROV_IDX_WORKFLOW_TABLE, &prefix, Some(&end))?;
        let mut runs: BTreeSet<String> = BTreeSet::new();
        for (k, _) in rows {
            // key = workflow ++ 0 ++ artifact_key ++ 0 ++ run_id
            if let Some(pos) = k[prefix.len()..].iter().rposition(|b| *b == SEP) {
                if let Ok(run) = String::from_utf8(k[prefix.len() + pos + 1..].to_vec()) {
                    runs.insert(run);
                }
            }
        }
        Ok(runs.into_iter().collect())
    }

    /// Brute-force reference answer for
    /// [`runs_using_artifact`](Self::runs_using_artifact) at `after_seq
    /// == 0`: load and walk every stored graph. Exists so benches and
    /// tests can demonstrate the index agrees with (and outruns) the
    /// graph-by-graph scan.
    pub fn scan_runs_using_artifact(
        &self,
        artifact_key: &str,
    ) -> Result<Vec<String>, ProvenanceError> {
        let mut out = Vec::new();
        for run_id in self.manager.run_ids()? {
            let graph: OpmGraph = self.manager.load_graph(&run_id)?;
            let hit = graph
                .edges_of_kind(preserva_opm::edge::EdgeKind::Used)
                .any(|e| Self::artifact_key(e.cause.as_str(), &run_id) == artifact_key);
            if hit {
                out.push(run_id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::{Processor, Workflow};
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use preserva_wfms::trace::ExecutionTrace;
    use serde_json::json;

    fn manager(name: &str) -> Arc<ProvenanceManager> {
        let dir =
            std::env::temp_dir().join(format!("preserva-pidx-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        Arc::new(ProvenanceManager::new(store))
    }

    fn workflow(id: &str) -> (ServiceRegistry, Workflow) {
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new(id, "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        (r, w)
    }

    fn run_of(id: &str, input: i64) -> (Workflow, ExecutionTrace) {
        let (r, w) = workflow(id);
        let e = WfEngine::new(r, EngineConfig::default());
        let t = e.run(&w, &port("x", json!(input))).unwrap();
        (w, t)
    }

    #[test]
    fn indexed_queries_agree_with_graph_scans() {
        let pm = manager("agree");
        let idx = ProvIndex::new(pm.clone());
        let mut wa_runs = Vec::new();
        for i in 0..5 {
            let (w, t) = run_of("wa", i);
            pm.capture(&w, &t).unwrap();
            wa_runs.push(t.run_id);
        }
        let (w, t) = run_of("wb", 99);
        pm.capture(&w, &t).unwrap();
        let wb_run = t.run_id;

        let out = idx.refresh().unwrap();
        assert_eq!(out.runs_indexed, 6);

        // The shared input endpoint of every run: a:<run>:in:x -> a:*:in:x.
        let key = "a:*:in:x";
        let mut indexed = idx.runs_using_artifact(key, 0).unwrap();
        let mut scanned = idx.scan_runs_using_artifact(key).unwrap();
        indexed.sort();
        scanned.sort();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 6);

        // Per-workflow restriction.
        let mut of_wa = idx.runs_of_workflow_touching("wa", key).unwrap();
        of_wa.sort();
        let mut expect = wa_runs.clone();
        expect.sort();
        assert_eq!(of_wa, expect);
        assert_eq!(idx.runs_of_workflow("wb").unwrap(), vec![wb_run]);

        // Processor-output artifacts are touched but not used.
        let out_key = "a:*:p.out";
        assert!(idx.runs_using_artifact(out_key, 0).unwrap().is_empty());
        assert_eq!(idx.runs_touching_artifact(out_key, 0).unwrap().len(), 6);
    }

    #[test]
    fn after_seq_filters_older_captures() {
        let pm = manager("after");
        let idx = ProvIndex::new(pm.clone());
        let (w, t1) = run_of("wa", 1);
        pm.capture(&w, &t1).unwrap();
        idx.refresh().unwrap();
        let boundary = idx.cursor().unwrap();
        let (w2, t2) = run_of("wa", 2);
        pm.capture(&w2, &t2).unwrap();
        idx.refresh().unwrap();
        let recent = idx.runs_using_artifact("a:*:in:x", boundary).unwrap();
        assert_eq!(recent, vec![t2.run_id.clone()]);
        let all = idx.runs_using_artifact("a:*:in:x", 0).unwrap();
        assert_eq!(all, vec![t1.run_id, t2.run_id], "capture order preserved");
    }

    #[test]
    fn refresh_is_incremental_and_idempotent() {
        let pm = manager("incremental");
        let idx = ProvIndex::new(pm.clone());
        let (w, t) = run_of("wa", 1);
        pm.capture(&w, &t).unwrap();
        let first = idx.refresh().unwrap();
        assert_eq!(first.runs_indexed, 1);
        let second = idx.refresh().unwrap();
        assert_eq!(second.runs_indexed, 0);
        assert_eq!(second.entries_consumed, 0, "cursor fully advanced");
        assert_eq!(idx.lag().unwrap(), 0);
        let text = pm.metrics_registry().render_prometheus();
        assert!(text.contains("preserva_prov_index_lag"), "{text}");
        assert!(
            text.contains("preserva_prov_indexed_runs_total 1"),
            "{text}"
        );
    }

    #[test]
    fn index_survives_reopen_with_cursor() {
        let dir = std::env::temp_dir().join(format!("preserva-pidx-{}-reopen", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run_id;
        {
            let store = Arc::new(TableStore::new(Arc::new(
                Engine::open(&dir, EngineOptions::default()).unwrap(),
            )));
            let pm = Arc::new(ProvenanceManager::new(store));
            let idx = ProvIndex::new(pm.clone());
            let (w, t) = run_of("wa", 1);
            pm.capture(&w, &t).unwrap();
            idx.refresh().unwrap();
            run_id = t.run_id;
        }
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        let pm = Arc::new(ProvenanceManager::new(store));
        let idx = ProvIndex::new(pm);
        assert_eq!(
            idx.runs_using_artifact("a:*:in:x", 0).unwrap(),
            vec![run_id]
        );
        assert_eq!(idx.refresh().unwrap().runs_indexed, 0, "cursor persisted");
        std::fs::remove_dir_all(&dir).ok();
    }
}
