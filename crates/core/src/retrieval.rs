//! Indexed metadata-based retrieval over the data repository — the
//! paper's motivating access path ("our work is geared towards supporting
//! metadata-based retrieval", §IV). The catalog maintains secondary
//! indexes on the fields FNJV users query most (species, genus, state,
//! collection year) and plans queries through them when possible.

use std::sync::Arc;

use preserva_metadata::query::{Filter, Query};
use preserva_metadata::record::Record;
use preserva_metadata::value::Value;
use preserva_storage::table::{CommitReceipt, IndexDef, TableStore, WriteSession};
use preserva_storage::StorageError;
use preserva_taxonomy::name::ScientificName;

use crate::repository::{decode_row, CodecError, Repository, RepositoryError};

/// Table holding catalog records (shares the architecture's data
/// repository naming).
pub const CATALOG_TABLE: &str = "catalog";

/// Errors from the catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A stored record failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Storage(e) => write!(f, "catalog storage: {e}"),
            CatalogError::Codec(e) => write!(f, "catalog codec: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Storage(e) => Some(e),
            CatalogError::Codec(e) => Some(e),
        }
    }
}

impl From<StorageError> for CatalogError {
    fn from(e: StorageError) -> Self {
        CatalogError::Storage(e)
    }
}

impl From<RepositoryError> for CatalogError {
    fn from(e: RepositoryError) -> Self {
        match e {
            RepositoryError::Storage(e) => CatalogError::Storage(e),
            RepositoryError::Codec(e) => CatalogError::Codec(e),
        }
    }
}

fn decode(row: &[u8]) -> Option<Record> {
    decode_row(row)
}

fn text_field_extractor(field: &'static str) -> impl Fn(&[u8]) -> Option<Vec<u8>> {
    move |row: &[u8]| {
        let r = decode(row)?;
        let s = r.get_text(field)?;
        if s.trim().is_empty() {
            return None;
        }
        Some(s.trim().to_lowercase().into_bytes())
    }
}

/// Canonical-species extractor: dirty spellings index under the parsed
/// binomial, so index lookups behave like the query layer's normalized
/// text equality.
fn species_extractor(row: &[u8]) -> Option<Vec<u8>> {
    let r = decode(row)?;
    let name = ScientificName::parse(r.get_text("species")?)?;
    Some(name.canonical().to_lowercase().into_bytes())
}

fn year_extractor(row: &[u8]) -> Option<Vec<u8>> {
    let r = decode(row)?;
    match r.get("collect_date")? {
        Value::Date(d) => Some(format!("{:04}", d.year).into_bytes()),
        _ => None, // legacy text dates are not year-indexable until curated
    }
}

/// The record catalog: an indexed view over the data repository. Row
/// encoding is delegated to a [`Repository<Record>`]; the catalog adds
/// index registration and query planning on top.
pub struct RecordCatalog {
    repo: Repository<Record>,
}

impl std::fmt::Debug for RecordCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordCatalog")
            .field("table", &self.repo.table())
            .finish()
    }
}

impl RecordCatalog {
    /// Open the catalog over a store (table [`CATALOG_TABLE`]),
    /// (re-)registering its indexes and backfilling them from existing
    /// rows.
    pub fn open(store: Arc<TableStore>) -> Result<RecordCatalog, CatalogError> {
        Self::open_on(store, CATALOG_TABLE)
    }

    /// Open the catalog over a caller-chosen table (e.g. the
    /// architecture's `records` data repository).
    pub fn open_on(store: Arc<TableStore>, table: &str) -> Result<RecordCatalog, CatalogError> {
        store.create_index(table, IndexDef::new("species", species_extractor))?;
        store.create_index(table, IndexDef::new("genus", text_field_extractor("genus")))?;
        store.create_index(table, IndexDef::new("state", text_field_extractor("state")))?;
        store.create_index(table, IndexDef::new("year", year_extractor))?;
        // The data repository is the change-feed's source of truth: every
        // committed write to it must land in the journal so delta
        // reassessment can see it.
        store.mark_journaled(table)?;
        Ok(RecordCatalog {
            repo: Repository::new(store, table, |r: &Record| r.id.clone()),
        })
    }

    fn store(&self) -> &Arc<TableStore> {
        self.repo.store()
    }

    fn table(&self) -> &str {
        self.repo.table()
    }

    /// Insert or update a record (indexes maintained atomically). The
    /// receipt carries the journal sequence number the write was assigned.
    pub fn insert(&self, record: &Record) -> Result<CommitReceipt, CatalogError> {
        Ok(self.repo.save(record)?)
    }

    /// Bulk insert: all records land in ONE storage commit, index
    /// maintenance included. The receipt spans the whole batch's journal
    /// sequence range.
    pub fn insert_all(&self, records: &[Record]) -> Result<CommitReceipt, CatalogError> {
        Ok(self.repo.save_all(records)?)
    }

    /// Bulk insert FRESH records through the direct-run fast path: the
    /// batch is sorted and written straight into one level-1 run —
    /// indexes and journal events included — bypassing the WAL and
    /// memtable. Duplicate ids within the batch collapse to the last
    /// record (one journal event per id); ids that already exist in the
    /// catalog are not supported on this path (use
    /// [`insert_all`](Self::insert_all), which retracts stale index
    /// entries).
    pub fn insert_all_bulk(&self, records: &[Record]) -> Result<CommitReceipt, CatalogError> {
        Ok(self.repo.bulk_save_all(records)?)
    }

    /// Stage a record into a caller-owned session so it commits
    /// atomically with writes to other repositories.
    pub fn stage(
        &self,
        session: &mut WriteSession<'_>,
        record: &Record,
    ) -> Result<(), CatalogError> {
        Ok(self.repo.stage(session, record)?)
    }

    /// Load one record by id.
    pub fn get(&self, id: &str) -> Result<Option<Record>, CatalogError> {
        Ok(self.repo.get(id)?)
    }

    /// Every record, in id order.
    pub fn all(&self) -> Result<Vec<Record>, CatalogError> {
        Ok(self.repo.load_all()?)
    }

    /// Every record as of a pinned snapshot, in id order — one consistent
    /// view even while writers keep committing.
    pub fn all_at(
        &self,
        snap: &preserva_storage::table::TableSnapshot,
    ) -> Result<Vec<Record>, CatalogError> {
        Ok(self.repo.load_all_at(snap)?)
    }

    /// Number of records.
    pub fn len(&self) -> Result<usize, CatalogError> {
        Ok(self.repo.len()?)
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> Result<bool, CatalogError> {
        Ok(self.repo.is_empty()?)
    }

    fn load_by_pks(&self, pks: Vec<Vec<u8>>) -> Result<Vec<Record>, CatalogError> {
        let mut out = Vec::with_capacity(pks.len());
        for pk in pks {
            if let Some(row) = self.store().get(self.table(), &pk)? {
                if let Some(r) = decode(&row) {
                    out.push(r);
                }
            }
        }
        Ok(out)
    }

    /// Records of one species (index lookup; dirty spellings included via
    /// canonical indexing).
    pub fn by_species(&self, name: &str) -> Result<Vec<Record>, CatalogError> {
        let Some(canonical) = ScientificName::parse(name) else {
            return Ok(Vec::new());
        };
        let pks = self.store().lookup(
            self.table(),
            "species",
            canonical.canonical().to_lowercase().as_bytes(),
        )?;
        self.load_by_pks(pks)
    }

    /// Records collected in `year` (typed dates only).
    pub fn by_year(&self, year: i32) -> Result<Vec<Record>, CatalogError> {
        let pks = self
            .store()
            .lookup(self.table(), "year", format!("{year:04}").as_bytes())?;
        self.load_by_pks(pks)
    }

    /// Find the index-accelerable conjunct of a filter, if any:
    /// `(index_name, key)`.
    fn plan(filter: &Filter) -> Option<(&'static str, Vec<u8>)> {
        match filter {
            Filter::TextEq { field, value } => match field.as_str() {
                "species" => ScientificName::parse(value)
                    .map(|n| ("species", n.canonical().to_lowercase().into_bytes())),
                "genus" => Some(("genus", value.trim().to_lowercase().into_bytes())),
                "state" => Some(("state", value.trim().to_lowercase().into_bytes())),
                _ => None,
            },
            Filter::And(fs) => fs.iter().find_map(Self::plan),
            _ => None,
        }
    }

    /// Run a query: index-accelerated when a species/genus/state equality
    /// conjunct exists, full scan otherwise. The complete filter is always
    /// re-applied to candidates.
    pub fn query(&self, query: &Query) -> Result<Vec<Record>, CatalogError> {
        let candidates = match Self::plan(&query.filter) {
            Some((index, key)) => {
                let pks = self.store().lookup(self.table(), index, &key)?;
                self.load_by_pks(pks)?
            }
            None => self
                .store()
                .scan(self.table())?
                .into_iter()
                .filter_map(|(_, row)| decode(&row))
                .collect(),
        };
        let it = candidates.into_iter().filter(|r| query.filter.matches(r));
        Ok(match query.limit {
            Some(n) => it.take(n).collect(),
            None => it.collect(),
        })
    }

    /// Count matches.
    pub fn count(&self, query: &Query) -> Result<usize, CatalogError> {
        Ok(self.query(query)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::value::{Coordinates, Date};
    use preserva_storage::engine::{Engine, EngineOptions};

    fn catalog(name: &str) -> RecordCatalog {
        let dir =
            std::env::temp_dir().join(format!("preserva-catalog-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        RecordCatalog::open(store).unwrap()
    }

    fn sample() -> Vec<Record> {
        vec![
            Record::new("1")
                .with("species", Value::Text("Hyla faber".into()))
                .with("genus", Value::Text("Hyla".into()))
                .with("state", Value::Text("São Paulo".into()))
                .with("collect_date", Value::Date(Date::new(1982, 3, 15).unwrap())),
            Record::new("2")
                .with("species", Value::Text("  hyla   FABER ".into())) // dirty
                .with("genus", Value::Text("Hyla".into()))
                .with("state", Value::Text("Amazonas".into())),
            Record::new("3")
                .with("species", Value::Text("Scinax ruber".into()))
                .with("genus", Value::Text("Scinax".into()))
                .with("state", Value::Text("São Paulo".into()))
                .with("collect_date", Value::Date(Date::new(1990, 6, 1).unwrap()))
                .with(
                    "coordinates",
                    Value::Coordinates(Coordinates::new(-22.9, -47.0).unwrap()),
                ),
        ]
    }

    #[test]
    fn species_index_catches_dirty_spellings() {
        let c = catalog("species");
        c.insert_all(&sample()).unwrap();
        let hits = c.by_species("HYLA FABER").unwrap();
        let ids: Vec<&str> = hits.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["1", "2"]);
        assert!(c.by_species("???").unwrap().is_empty());
    }

    #[test]
    fn year_index_typed_dates_only() {
        let c = catalog("year");
        c.insert_all(&sample()).unwrap();
        assert_eq!(c.by_year(1982).unwrap().len(), 1);
        assert_eq!(c.by_year(1990).unwrap().len(), 1);
        assert!(c.by_year(2000).unwrap().is_empty());
    }

    #[test]
    fn query_planner_uses_index_and_reapplies_filter() {
        let c = catalog("plan");
        c.insert_all(&sample()).unwrap();
        // species index narrows to 2 candidates; the state conjunct then
        // filters to 1.
        let q = Query::new(Filter::And(vec![
            Filter::species("Hyla faber"),
            Filter::TextEq {
                field: "state".into(),
                value: "São Paulo".into(),
            },
        ]));
        let hits = c.query(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "1");
    }

    #[test]
    fn unindexed_query_falls_back_to_scan() {
        let c = catalog("scan");
        c.insert_all(&sample()).unwrap();
        let q = Query::new(Filter::Filled {
            field: "coordinates".into(),
        });
        let hits = c.query(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "3");
    }

    #[test]
    fn index_agrees_with_scan_semantics() {
        let c = catalog("agree");
        c.insert_all(&sample()).unwrap();
        let q = Query::new(Filter::species("Hyla faber"));
        let via_index = c.query(&q).unwrap();
        // Force the scan path by wrapping in an Or (not plannable).
        let q_scan = Query::new(Filter::Or(vec![Filter::species("Hyla faber")]));
        let via_scan = c.query(&q_scan).unwrap();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn update_moves_index_entries() {
        let c = catalog("update");
        let mut r = Record::new("x")
            .with("species", Value::Text("Hyla faber".into()))
            .with("genus", Value::Text("Hyla".into()));
        c.insert(&r).unwrap();
        assert_eq!(c.by_species("Hyla faber").unwrap().len(), 1);
        r.set("species", Value::Text("Boana faber".into()));
        c.insert(&r).unwrap();
        assert!(c.by_species("Hyla faber").unwrap().is_empty());
        assert_eq!(c.by_species("Boana faber").unwrap().len(), 1);
        assert_eq!(c.len().unwrap(), 1);
    }

    #[test]
    fn insert_all_is_a_single_commit() {
        let c = catalog("one-commit");
        let before = c.store().engine().stats().commits;
        c.insert_all(&sample()).unwrap();
        assert_eq!(
            c.store().engine().stats().commits,
            before + 1,
            "bulk ingest must cost one commit regardless of record count"
        );
        // Index maintenance rode along in the same commit.
        assert_eq!(c.by_species("Hyla faber").unwrap().len(), 2);
    }

    #[test]
    fn inserts_thread_journal_sequence_numbers() {
        let c = catalog("receipts");
        let receipt = c.insert_all(&sample()).unwrap();
        assert_eq!(receipt.entries(), 3, "one journal event per record");
        let single = c
            .insert(&Record::new("4").with("species", Value::Text("Hyla faber".into())))
            .unwrap();
        assert_eq!(single.first_seq, receipt.last_seq + 1);
        assert_eq!(single.head(), Some(c.store().journal_head()));
        // The change feed records exactly the catalog writes, in order.
        let feed = c.store().read_journal(0, 100).unwrap();
        assert_eq!(feed.len(), 4);
        assert!(feed
            .iter()
            .all(|e| e.table == CATALOG_TABLE && e.kind == preserva_storage::ROW_UPSERTED));
    }

    #[test]
    fn empty_insert_all_is_a_clean_noop() {
        let c = catalog("empty-batch");
        let commits = c.store().engine().stats().commits;
        let wal_appends = c
            .store()
            .engine()
            .metrics_registry()
            .counter("preserva_storage_wal_appends_total", "");
        let appends_before = wal_appends.get();
        let head_lsn = c.store().engine().committed_lsn();
        let receipt = c.insert_all(&[]).unwrap();
        assert_eq!(c.store().engine().stats().commits, commits, "no commit");
        assert_eq!(wal_appends.get(), appends_before, "no WAL frame at all");
        assert_eq!(
            c.store().engine().committed_lsn(),
            head_lsn,
            "no LSN burned"
        );
        assert_eq!(receipt.entries(), 0);
        assert_eq!((receipt.first_seq, receipt.last_seq), (0, 0));
        assert_eq!(receipt.lsn, head_lsn, "empty receipt pins the current head");
        assert_eq!(c.store().journal_head(), 0);
    }

    #[test]
    fn single_record_batch_has_a_one_entry_range() {
        let c = catalog("single-batch");
        let receipt = c
            .insert_all(&[Record::new("only").with("species", Value::Text("Hyla faber".into()))])
            .unwrap();
        assert_eq!(receipt.entries(), 1);
        assert_eq!(receipt.first_seq, receipt.last_seq);
        assert_eq!(receipt.head(), Some(c.store().journal_head()));
    }

    #[test]
    fn duplicate_id_within_batch_journals_once() {
        let c = catalog("dup-batch");
        let receipt = c
            .insert_all(&[
                Record::new("x").with("species", Value::Text("Hyla faber".into())),
                Record::new("x").with("species", Value::Text("Boana faber".into())),
            ])
            .unwrap();
        // Last write wins — one journal event, one index entry.
        assert_eq!(receipt.entries(), 1, "one journal event per id");
        assert_eq!(c.len().unwrap(), 1);
        assert!(c.by_species("Hyla faber").unwrap().is_empty());
        assert_eq!(c.by_species("Boana faber").unwrap().len(), 1);
        let feed = c.store().read_journal(0, 10).unwrap();
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn bulk_insert_agrees_with_session_insert() {
        let session = catalog("bulk-vs-session-a");
        let bulk = catalog("bulk-vs-session-b");
        session.insert_all(&sample()).unwrap();
        let receipt = bulk.insert_all_bulk(&sample()).unwrap();
        assert_eq!(receipt.entries(), 3);
        assert_eq!(bulk.len().unwrap(), session.len().unwrap());
        for q in [
            Query::new(Filter::species("Hyla faber")),
            Query::new(Filter::TextEq {
                field: "state".into(),
                value: "São Paulo".into(),
            }),
        ] {
            assert_eq!(
                bulk.query(&q).unwrap(),
                session.query(&q).unwrap(),
                "bulk and session ingest must be indistinguishable to readers"
            );
        }
        assert_eq!(
            bulk.store().read_journal(0, 100).unwrap().len(),
            session.store().read_journal(0, 100).unwrap().len()
        );
    }

    #[test]
    fn get_and_counts() {
        let c = catalog("get");
        assert!(c.is_empty().unwrap());
        c.insert_all(&sample()).unwrap();
        assert_eq!(c.len().unwrap(), 3);
        assert_eq!(c.get("2").unwrap().unwrap().id, "2");
        assert!(c.get("missing").unwrap().is_none());
        let q = Query::new(Filter::TextEq {
            field: "genus".into(),
            value: "hyla".into(),
        });
        assert_eq!(c.count(&q).unwrap(), 2);
    }
}
