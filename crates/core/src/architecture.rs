//! The [`Architecture`] facade: one value owning every box of Figure 1,
//! sharing a single durable storage engine between the data, workflow and
//! provenance repositories (the figure's "database management system").

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use preserva_metadata::record::Record;
use preserva_quality::model::QualityModel;
use preserva_quality::report::QualityReport;
use preserva_storage::engine::{Engine as StorageEngine, EngineOptions};
use preserva_storage::table::TableStore;
use preserva_wfms::breaker::BreakerSnapshot;
use preserva_wfms::engine::{Engine as WfEngine, EngineConfig, EngineStats, RunError};
use preserva_wfms::model::Workflow;
use preserva_wfms::repository::WorkflowRepository;
use preserva_wfms::services::{PortMap, ServiceRegistry};
use preserva_wfms::spec;
use preserva_wfms::trace::ExecutionTrace;

use crate::adapter::WorkflowAdapter;
use crate::provenance_manager::{ProvenanceError, ProvenanceManager};
use crate::quality_manager::{DataQualityManager, QualityManagerError};
use crate::repository::{CodecError, RepositoryError};
use crate::retrieval::{CatalogError, RecordCatalog};
use crate::roles::EndUser;

/// Table storing observation records (the data repository), keyed by
/// record id, JSON-encoded.
pub const RECORDS_TABLE: &str = "records";
/// Table storing published workflow specs (XML), keyed by `id@version`.
pub const WORKFLOWS_TABLE: &str = "workflows";
/// Table storing the latest published version per workflow id — written
/// in the same commit as the spec itself, so a reader never sees a
/// pointer without its spec (or the reverse).
pub const WORKFLOW_VERSIONS_TABLE: &str = "workflow_versions";

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum ArchitectureError {
    /// Underlying storage failure.
    Storage(preserva_storage::StorageError),
    /// A workflow run failed.
    Run(RunError),
    /// Provenance capture or lookup failed.
    Provenance(ProvenanceError),
    /// Quality assessment failed.
    Quality(QualityManagerError),
    /// Record catalog failure.
    Catalog(CatalogError),
    /// No published workflow with that id.
    UnknownWorkflow(String),
    /// A stored value failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchitectureError::Storage(e) => write!(f, "architecture storage: {e}"),
            ArchitectureError::Run(e) => write!(f, "workflow run failed: {e}"),
            ArchitectureError::Provenance(e) => write!(f, "{e}"),
            ArchitectureError::Quality(e) => write!(f, "{e}"),
            ArchitectureError::Catalog(e) => write!(f, "{e}"),
            ArchitectureError::UnknownWorkflow(id) => write!(f, "unknown workflow {id:?}"),
            ArchitectureError::Codec(e) => write!(f, "architecture codec: {e}"),
        }
    }
}

impl std::error::Error for ArchitectureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchitectureError::Storage(e) => Some(e),
            ArchitectureError::Run(e) => Some(e),
            ArchitectureError::Provenance(e) => Some(e),
            ArchitectureError::Quality(e) => Some(e),
            ArchitectureError::Catalog(e) => Some(e),
            ArchitectureError::Codec(e) => Some(e),
            ArchitectureError::UnknownWorkflow(_) => None,
        }
    }
}

impl From<preserva_storage::StorageError> for ArchitectureError {
    fn from(e: preserva_storage::StorageError) -> Self {
        ArchitectureError::Storage(e)
    }
}

impl From<RunError> for ArchitectureError {
    fn from(e: RunError) -> Self {
        ArchitectureError::Run(e)
    }
}

impl From<CodecError> for ArchitectureError {
    fn from(e: CodecError) -> Self {
        ArchitectureError::Codec(e)
    }
}

impl From<RepositoryError> for ArchitectureError {
    fn from(e: RepositoryError) -> Self {
        match e {
            RepositoryError::Storage(e) => ArchitectureError::Storage(e),
            RepositoryError::Codec(e) => ArchitectureError::Codec(e),
        }
    }
}

impl From<ProvenanceError> for ArchitectureError {
    fn from(e: ProvenanceError) -> Self {
        ArchitectureError::Provenance(e)
    }
}

impl From<QualityManagerError> for ArchitectureError {
    fn from(e: QualityManagerError) -> Self {
        ArchitectureError::Quality(e)
    }
}

impl From<CatalogError> for ArchitectureError {
    fn from(e: CatalogError) -> Self {
        ArchitectureError::Catalog(e)
    }
}

/// The assembled architecture.
pub struct Architecture {
    store: Arc<TableStore>,
    workflow_repository: WorkflowRepository,
    wf_engine: WfEngine,
    adapter: WorkflowAdapter,
    provenance: Arc<ProvenanceManager>,
    quality: DataQualityManager,
    catalog: RecordCatalog,
}

impl std::fmt::Debug for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Architecture").finish()
    }
}

impl Architecture {
    /// Open (or create) an architecture instance rooted at `dir`, with the
    /// services workflows may invoke.
    pub fn open(
        dir: &Path,
        registry: ServiceRegistry,
        engine_config: EngineConfig,
    ) -> Result<Architecture, ArchitectureError> {
        let storage = Arc::new(StorageEngine::open(dir, EngineOptions::default())?);
        let store = Arc::new(TableStore::new(storage));
        let provenance = Arc::new(ProvenanceManager::new(store.clone()));
        let quality = DataQualityManager::new(store.clone(), provenance.clone());
        let catalog = RecordCatalog::open_on(store.clone(), RECORDS_TABLE)?;
        // The WFMS engine reports every top-level run to the provenance
        // manager through the sink seam — capture is not a facade concern.
        let wf_engine = WfEngine::new(registry, engine_config).with_sink(provenance.clone());
        Ok(Architecture {
            store,
            workflow_repository: WorkflowRepository::new(),
            wf_engine,
            adapter: WorkflowAdapter::new(),
            provenance,
            quality,
            catalog,
        })
    }

    /// The shared table store (data repository access).
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    /// The Workflow Adapter.
    pub fn adapter(&self) -> &WorkflowAdapter {
        &self.adapter
    }

    /// The Provenance Manager.
    pub fn provenance(&self) -> &Arc<ProvenanceManager> {
        &self.provenance
    }

    /// The Data Quality Manager.
    pub fn quality_manager(&self) -> &DataQualityManager {
        &self.quality
    }

    /// Mutable access for registering end-user quality models.
    pub fn quality_manager_mut(&mut self) -> &mut DataQualityManager {
        &mut self.quality
    }

    /// The workflow repository.
    pub fn workflow_repository(&self) -> &WorkflowRepository {
        &self.workflow_repository
    }

    /// Execution counters of the embedded WFMS engine (runs, retries,
    /// timeouts, breaker activity, pool high-water marks).
    pub fn engine_stats(&self) -> EngineStats {
        self.wf_engine.stats()
    }

    /// Per-service circuit-breaker snapshots, by service name.
    pub fn breaker_snapshots(&self) -> Vec<(String, BreakerSnapshot)> {
        self.wf_engine.registry().breaker_snapshots()
    }

    /// Publish a workflow: versioned in the repository and persisted (as
    /// the Listing-1 XML format) through the storage engine. The spec row
    /// and the latest-version pointer commit as one storage batch.
    pub fn publish_workflow(&self, workflow: Workflow) -> Result<u32, ArchitectureError> {
        let xml = spec::to_xml(&workflow);
        let id = workflow.id.clone();
        let version = self.workflow_repository.publish(workflow);
        let mut session = self.store.session();
        session.put(
            WORKFLOWS_TABLE,
            format!("{id}@{version}").as_bytes(),
            xml.as_bytes(),
        )?;
        session.put(
            WORKFLOW_VERSIONS_TABLE,
            id.as_bytes(),
            version.to_string().as_bytes(),
        )?;
        session.commit()?;
        Ok(version)
    }

    /// The latest persisted version of a published workflow, read from the
    /// version-pointer table.
    pub fn published_version(&self, workflow_id: &str) -> Result<Option<u32>, ArchitectureError> {
        Ok(self
            .store
            .get(WORKFLOW_VERSIONS_TABLE, workflow_id.as_bytes())?
            .and_then(|v| String::from_utf8(v).ok())
            .and_then(|s| s.parse().ok()))
    }

    /// Run the latest version of a published workflow. Provenance capture
    /// happens inside the engine via its sink (the provenance manager), so
    /// failed runs are captured too — their traces matter for reliability
    /// assessment.
    pub fn run_workflow(
        &self,
        workflow_id: &str,
        inputs: &PortMap,
    ) -> Result<ExecutionTrace, ArchitectureError> {
        let workflow = self
            .workflow_repository
            .latest(workflow_id)
            .ok_or_else(|| ArchitectureError::UnknownWorkflow(workflow_id.to_string()))?;
        self.wf_engine
            .run(&workflow, inputs)
            .map_err(|(err, _trace)| ArchitectureError::Run(err))
    }

    /// Assess a finished run for an end user (registering `model` first
    /// when provided), publishing the report.
    pub fn assess_run(
        &mut self,
        user: &EndUser,
        model: Option<QualityModel>,
        subject: &str,
        run_id: &str,
        external_facts: &BTreeMap<String, f64>,
    ) -> Result<QualityReport, ArchitectureError> {
        if let Some(m) = model {
            self.quality.register_model(user, m);
        }
        let trace = self.provenance.load_trace(run_id)?;
        let workflow = self
            .workflow_repository
            .latest(&trace.workflow_id)
            .ok_or_else(|| ArchitectureError::UnknownWorkflow(trace.workflow_id.clone()))?;
        Ok(self
            .quality
            .assess_run(user, subject, run_id, &workflow, external_facts)?)
    }

    /// Health-check a published workflow against the current service
    /// registry (workflow decay — §V: "workflows may also decay").
    pub fn check_workflow_health(
        &self,
        workflow_id: &str,
        current_year: i32,
        max_annotation_age_years: i32,
    ) -> Result<preserva_wfms::decay::WorkflowHealth, ArchitectureError> {
        let workflow = self
            .workflow_repository
            .latest(workflow_id)
            .ok_or_else(|| ArchitectureError::UnknownWorkflow(workflow_id.to_string()))?;
        Ok(preserva_wfms::decay::check(
            &workflow,
            self.wf_engine.registry(),
            current_year,
            max_annotation_age_years,
        ))
    }

    /// Export a stored run's provenance as Linked Data (N-Triples) — the
    /// §V direction of connecting curated metadata to Linked Data
    /// initiatives.
    pub fn export_provenance_rdf(&self, run_id: &str) -> Result<String, ArchitectureError> {
        let graph = self.provenance.load_graph(run_id)?;
        Ok(preserva_opm::rdf::to_ntriples(&graph))
    }

    /// The indexed record catalog over the data repository
    /// (metadata-based retrieval, §IV).
    pub fn catalog(&self) -> &RecordCatalog {
        &self.catalog
    }

    /// Persist observation records into the data repository (indexed by
    /// species/genus/state/year for retrieval). All records — and their
    /// index entries — land in ONE storage commit.
    pub fn save_records(&self, records: &[Record]) -> Result<(), ArchitectureError> {
        self.catalog.insert_all(records)?;
        Ok(())
    }

    /// Load every observation record.
    pub fn load_records(&self) -> Result<Vec<Record>, ArchitectureError> {
        Ok(self.catalog.all()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::value::Value;
    use preserva_quality::dimension::Dimension;
    use preserva_wfms::model::Processor;
    use preserva_wfms::services::port;
    use serde_json::json;

    fn arch(name: &str) -> Architecture {
        let dir =
            std::env::temp_dir().join(format!("preserva-arch-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = ServiceRegistry::new();
        registry.register_fn("echo", |i: &PortMap| Ok(port("out", i["in"].clone())));
        Architecture::open(&dir, registry, EngineConfig::default()).unwrap()
    }

    fn echo_workflow() -> Workflow {
        Workflow::new("wf-echo", "echo")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "echo", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y")
    }

    #[test]
    fn publish_run_assess_cycle() {
        let mut a = arch("cycle");
        let mut w = echo_workflow();
        a.adapter()
            .annotate_processor(
                &mut w,
                "p",
                &[("reputation", 1.0), ("availability", 0.9)],
                &crate::roles::ProcessDesigner::new("expert", "IC"),
                "2013-11-12",
            )
            .unwrap();
        a.publish_workflow(w).unwrap();
        let trace = a
            .run_workflow("wf-echo", &port("x", json!("data")))
            .unwrap();
        assert!(trace.succeeded());

        let user = EndUser::new("Dr. Toledo", "IB");
        let mut facts = BTreeMap::new();
        facts.insert("names_checked".to_string(), 100.0);
        facts.insert("names_correct".to_string(), 93.0);
        let report = a
            .assess_run(&user, None, "echo-data", &trace.run_id, &facts)
            .unwrap();
        assert_eq!(report.score(&Dimension::accuracy()), Some(0.93));
        assert_eq!(report.score(&Dimension::reputation()), Some(1.0));

        // The provenance repository holds the run.
        assert_eq!(a.provenance().run_ids().unwrap(), vec![trace.run_id]);
        // The report is published.
        assert_eq!(a.quality_manager().reports().unwrap().len(), 1);
    }

    #[test]
    fn unknown_workflow_is_error() {
        let a = arch("unknown");
        assert!(matches!(
            a.run_workflow("missing", &PortMap::new()),
            Err(ArchitectureError::UnknownWorkflow(_))
        ));
    }

    #[test]
    fn failed_runs_still_captured() {
        let a = arch("failed");
        a.publish_workflow(echo_workflow()).unwrap();
        // Missing input → run fails fast, but a trace is still stored.
        let err = a.run_workflow("wf-echo", &PortMap::new()).unwrap_err();
        assert!(matches!(err, ArchitectureError::Run(_)));
        assert_eq!(a.provenance().run_ids().unwrap().len(), 1);
    }

    #[test]
    fn records_roundtrip_through_data_repository() {
        let a = arch("records");
        let records = vec![
            Record::new("FNJV-1").with("species", Value::Text("Hyla faber".into())),
            Record::new("FNJV-2").with("species", Value::Text("Scinax ruber".into())),
        ];
        a.save_records(&records).unwrap();
        let loaded = a.load_records().unwrap();
        assert_eq!(loaded, records);
    }

    #[test]
    fn workflow_versions_accumulate() {
        let a = arch("versions");
        assert_eq!(a.publish_workflow(echo_workflow()).unwrap(), 1);
        assert_eq!(a.publish_workflow(echo_workflow()).unwrap(), 2);
        assert_eq!(a.workflow_repository().version_count("wf-echo"), 2);
        // Persisted XML copies exist for both versions, and the version
        // pointer tracks the latest.
        assert_eq!(a.store().count(WORKFLOWS_TABLE).unwrap(), 2);
        assert_eq!(a.published_version("wf-echo").unwrap(), Some(2));
        assert_eq!(a.published_version("missing").unwrap(), None);
    }

    #[test]
    fn publish_commits_spec_and_version_pointer_together() {
        let a = arch("atomic-publish");
        let before = a.store().engine().stats().commits;
        a.publish_workflow(echo_workflow()).unwrap();
        assert_eq!(
            a.store().engine().stats().commits,
            before + 1,
            "spec row + version pointer must be one commit"
        );
    }

    #[test]
    fn ingest_is_one_commit_regardless_of_record_count() {
        let a = arch("ingest-commits");
        let records: Vec<Record> = (0..50)
            .map(|i| {
                Record::new(format!("FNJV-{i:03}"))
                    .with("species", Value::Text("Hyla faber".into()))
            })
            .collect();
        let before = a.store().engine().stats().commits;
        a.save_records(&records).unwrap();
        assert_eq!(a.store().engine().stats().commits, before + 1);
        assert_eq!(a.catalog().len().unwrap(), 50);
    }

    #[test]
    fn run_capture_is_one_commit_via_the_sink() {
        let a = arch("run-commits");
        a.publish_workflow(echo_workflow()).unwrap();
        let before = a.store().engine().stats().commits;
        let trace = a.run_workflow("wf-echo", &port("x", json!("v"))).unwrap();
        assert_eq!(
            a.store().engine().stats().commits,
            before + 1,
            "one run's provenance (graph + trace) must be one commit"
        );
        // Capture went through the engine's sink, not a facade call.
        assert!(a.provenance().load_graph(&trace.run_id).is_ok());
        assert!(a.provenance().load_trace(&trace.run_id).is_ok());
    }
}
