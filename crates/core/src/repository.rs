//! The typed repository layer: one place where table payloads are
//! encoded and decoded, shared by every manager in this crate.
//!
//! The paper's Figure 1 puts a single "database management system"
//! behind the data, workflow and provenance repositories. This module is
//! the code-level analogue: a [`Repository<T>`] binds a table name, a key
//! extractor and the JSON codec, so managers speak in domain types and
//! never touch raw bytes or `serde_json` themselves. Writes that must be
//! atomic across repositories stage into one
//! [`preserva_storage::table::WriteSession`] and commit as a single
//! storage batch.

use std::marker::PhantomData;
use std::sync::Arc;

use preserva_storage::table::{CommitReceipt, TableSnapshot, TableStore, WriteSession};
use preserva_storage::StorageError;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// A payload failed to encode or decode, with the table/key context a
/// curator needs to find the damaged row.
#[derive(Debug)]
pub struct CodecError {
    /// Table the payload lives in.
    pub table: String,
    /// Row key involved.
    pub key: String,
    /// The underlying codec failure.
    pub source: Box<dyn std::error::Error + Send + Sync>,
}

impl CodecError {
    /// Build from any underlying error.
    pub fn new(
        table: &str,
        key: impl Into<String>,
        source: impl Into<Box<dyn std::error::Error + Send + Sync>>,
    ) -> Self {
        CodecError {
            table: table.to_string(),
            key: key.into(),
            source: source.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "codec failure at {}/{}: {}",
            self.table, self.key, self.source
        )
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Errors from a [`Repository`].
#[derive(Debug)]
pub enum RepositoryError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A payload failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepositoryError::Storage(e) => write!(f, "repository storage: {e}"),
            RepositoryError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RepositoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepositoryError::Storage(e) => Some(e),
            RepositoryError::Codec(e) => Some(e),
        }
    }
}

impl From<StorageError> for RepositoryError {
    fn from(e: StorageError) -> Self {
        RepositoryError::Storage(e)
    }
}

impl From<CodecError> for RepositoryError {
    fn from(e: CodecError) -> Self {
        RepositoryError::Codec(e)
    }
}

/// Decode a raw table row into a domain type, `None` on damage. Index
/// extractors use this so row parsing stays inside the repository layer.
pub fn decode_row<T: DeserializeOwned>(row: &[u8]) -> Option<T> {
    serde_json::from_slice(row).ok()
}

/// A typed view over one table: table name + key extractor + codec.
pub struct Repository<T> {
    store: Arc<TableStore>,
    table: String,
    key_of: fn(&T) -> String,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Repository<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Repository")
            .field("table", &self.table)
            .finish()
    }
}

impl<T: Serialize + DeserializeOwned> Repository<T> {
    /// Bind a table on a shared store with a key extractor.
    pub fn new(store: Arc<TableStore>, table: impl Into<String>, key_of: fn(&T) -> String) -> Self {
        Repository {
            store,
            table: table.into(),
            key_of,
            _marker: PhantomData,
        }
    }

    /// The table this repository is bound to.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The shared store (for sessions spanning repositories).
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    fn encode(&self, value: &T) -> Result<(String, Vec<u8>), RepositoryError> {
        let key = (self.key_of)(value);
        let bytes =
            serde_json::to_vec(value).map_err(|e| CodecError::new(&self.table, key.clone(), e))?;
        Ok((key, bytes))
    }

    fn decode(&self, key: &[u8], row: &[u8]) -> Result<T, RepositoryError> {
        serde_json::from_slice(row)
            .map_err(|e| CodecError::new(&self.table, String::from_utf8_lossy(key), e).into())
    }

    /// Persist one value (its own commit). The returned receipt carries
    /// the journal sequence numbers assigned to the write when the table
    /// is journaled (empty receipt otherwise).
    pub fn save(&self, value: &T) -> Result<CommitReceipt, RepositoryError> {
        let mut session = self.store.session();
        self.stage(&mut session, value)?;
        Ok(session.commit()?)
    }

    /// Persist many values in ONE storage commit (a single session),
    /// returning the journal sequence range the batch was assigned.
    pub fn save_all(&self, values: &[T]) -> Result<CommitReceipt, RepositoryError> {
        let mut session = self.store.session();
        for value in values {
            self.stage(&mut session, value)?;
        }
        Ok(session.commit()?)
    }

    /// Persist many FRESH values through the storage bulk-load fast
    /// path: rows, index entries and journal events are written
    /// straight into one sorted run (`TableStore::bulk_load`), skipping
    /// the WAL and memtable. Orders of magnitude faster than
    /// [`save_all`](Self::save_all) for archive-scale ingest, but the
    /// keys must not already exist — bulk rows shadow old versions
    /// without retracting their index entries. Updates belong in
    /// sessions.
    pub fn bulk_save_all(&self, values: &[T]) -> Result<CommitReceipt, RepositoryError> {
        let mut rows = Vec::with_capacity(values.len());
        for value in values {
            let (key, bytes) = self.encode(value)?;
            rows.push((key.into_bytes(), bytes));
        }
        Ok(self.store.bulk_load(&self.table, rows)?)
    }

    /// Stage one value into a caller-owned session, so a write can commit
    /// atomically with writes to other repositories.
    pub fn stage(&self, session: &mut WriteSession<'_>, value: &T) -> Result<(), RepositoryError> {
        let (key, bytes) = self.encode(value)?;
        session.put(&self.table, key.as_bytes(), &bytes)?;
        Ok(())
    }

    /// Load one value by key.
    pub fn get(&self, key: &str) -> Result<Option<T>, RepositoryError> {
        match self.store.get(&self.table, key.as_bytes())? {
            Some(row) => Ok(Some(self.decode(key.as_bytes(), &row)?)),
            None => Ok(None),
        }
    }

    /// Load one value by raw key bytes.
    pub fn get_raw(&self, key: &[u8]) -> Result<Option<T>, RepositoryError> {
        match self.store.get(&self.table, key)? {
            Some(row) => Ok(Some(self.decode(key, &row)?)),
            None => Ok(None),
        }
    }

    /// Every stored value, in key order.
    pub fn load_all(&self) -> Result<Vec<T>, RepositoryError> {
        self.store
            .scan(&self.table)?
            .into_iter()
            .map(|(k, row)| self.decode(&k, &row))
            .collect()
    }

    /// Every stored key, in order.
    pub fn keys(&self) -> Result<Vec<String>, RepositoryError> {
        Ok(self
            .store
            .scan(&self.table)?
            .into_iter()
            .filter_map(|(k, _)| String::from_utf8(k).ok())
            .collect())
    }

    /// Load one value by key as of a pinned snapshot.
    pub fn get_at(&self, snap: &TableSnapshot, key: &str) -> Result<Option<T>, RepositoryError> {
        match snap.get(&self.table, key.as_bytes())? {
            Some(row) => Ok(Some(self.decode(key.as_bytes(), &row)?)),
            None => Ok(None),
        }
    }

    /// Every stored value as of a pinned snapshot, in key order. Several
    /// repositories reading through the SAME snapshot see one consistent
    /// cross-table state, no matter what commits land meanwhile.
    pub fn load_all_at(&self, snap: &TableSnapshot) -> Result<Vec<T>, RepositoryError> {
        snap.scan(&self.table)?
            .into_iter()
            .map(|(k, row)| self.decode(&k, &row))
            .collect()
    }

    /// Number of stored values as of a pinned snapshot.
    pub fn len_at(&self, snap: &TableSnapshot) -> Result<usize, RepositoryError> {
        Ok(snap.count(&self.table)?)
    }

    /// Number of stored values.
    pub fn len(&self) -> Result<usize, RepositoryError> {
        Ok(self.store.count(&self.table)?)
    }

    /// Whether the table holds no values.
    pub fn is_empty(&self) -> Result<bool, RepositoryError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        id: String,
        value: i64,
    }

    fn store(name: &str) -> Arc<TableStore> {
        let dir =
            std::env::temp_dir().join(format!("preserva-repo-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )))
    }

    fn repo(name: &str) -> Repository<Row> {
        Repository::new(store(name), "rows", |r: &Row| r.id.clone())
    }

    #[test]
    fn save_get_roundtrip() {
        let r = repo("roundtrip");
        let row = Row {
            id: "a".into(),
            value: 7,
        };
        r.save(&row).unwrap();
        assert_eq!(r.get("a").unwrap(), Some(row));
        assert_eq!(r.get("missing").unwrap(), None);
    }

    #[test]
    fn save_all_is_one_commit() {
        let r = repo("batch");
        let rows: Vec<Row> = (0..20)
            .map(|i| Row {
                id: format!("r{i:02}"),
                value: i,
            })
            .collect();
        let before = r.store().engine().stats().commits;
        r.save_all(&rows).unwrap();
        assert_eq!(r.store().engine().stats().commits, before + 1);
        assert_eq!(r.load_all().unwrap(), rows);
        assert_eq!(r.len().unwrap(), 20);
    }

    #[test]
    fn stage_spans_repositories_atomically() {
        let s = store("span");
        let rows: Repository<Row> = Repository::new(s.clone(), "rows", |r| r.id.clone());
        let others: Repository<Row> = Repository::new(s.clone(), "others", |r| r.id.clone());
        let before = s.engine().stats().commits;
        let mut session = s.session();
        rows.stage(
            &mut session,
            &Row {
                id: "x".into(),
                value: 1,
            },
        )
        .unwrap();
        others
            .stage(
                &mut session,
                &Row {
                    id: "y".into(),
                    value: 2,
                },
            )
            .unwrap();
        session.commit().unwrap();
        assert_eq!(s.engine().stats().commits, before + 1);
        assert!(rows.get("x").unwrap().is_some());
        assert!(others.get("y").unwrap().is_some());
    }

    #[test]
    fn decode_failure_names_table_and_key() {
        let r = repo("damage");
        r.store().put("rows", b"bad", b"not json").unwrap();
        let err = r.get("bad").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("rows"),
            "message {msg:?} should name the table"
        );
        assert!(msg.contains("bad"), "message {msg:?} should name the key");
        assert!(
            std::error::Error::source(&err).is_some(),
            "codec errors keep their source chain"
        );
    }
}
