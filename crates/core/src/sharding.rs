//! Sharded record catalog: hash-partitioned engine shards behind a thin
//! router, for archive-scale parallel ingest.
//!
//! The paper's preservation archive is loaded in observatory-scale bulk
//! (Gray et al.) and then served read-mostly. One storage engine
//! serializes all writers behind one WAL lock; a [`ShardedCatalog`]
//! removes that ceiling by hash-partitioning records across N fully
//! independent engines — each with its own WAL, memtable, run tree,
//! journal and metrics — and running per-shard ingest, flush and
//! compaction in parallel on the wfms worker pool
//! ([`preserva_wfms::pool::scoped_run`]). Reads route by the same hash
//! (point lookups touch one shard; queries fan out and merge), and
//! stats/journal heads are reported per shard plus merged.
//!
//! Shard membership is determined by `fnv1a(record id) % N`, so a
//! catalog must be reopened with the same shard count it was created
//! with; the router persists nothing itself — each shard directory is a
//! complete, self-describing engine.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use preserva_metadata::query::Query;
use preserva_metadata::record::Record;
use preserva_storage::engine::{Engine, EngineOptions, EngineStats};
use preserva_storage::table::{CommitReceipt, TableStore};
use preserva_wfms::pool::scoped_run;

use crate::architecture::RECORDS_TABLE;
use crate::retrieval::{CatalogError, RecordCatalog};

/// FNV-1a over the record id — the shard routing hash. Stable across
/// processes and platforms (no `RandomState`), so a reopened catalog
/// routes every id to the shard that holds it.
fn route_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One shard: an independent engine + table store + record catalog.
struct Shard {
    dir: PathBuf,
    store: Arc<TableStore>,
    catalog: RecordCatalog,
}

/// Outcome of a sharded ingest: per-shard receipts plus the totals.
#[derive(Debug, Clone, Default)]
pub struct ShardedIngest {
    /// Records routed and committed.
    pub records: u64,
    /// Shards that received at least one record.
    pub shards_used: usize,
    /// `(shard index, receipt)` for every shard that committed.
    pub receipts: Vec<(usize, CommitReceipt)>,
}

impl ShardedIngest {
    /// Journal events appended across all shards.
    pub fn journal_events(&self) -> u64 {
        self.receipts.iter().map(|(_, r)| r.entries()).sum()
    }
}

/// A record catalog hash-partitioned across N independent engine
/// shards. See the module docs for the routing and parallelism model.
pub struct ShardedCatalog {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardedCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedCatalog {
    /// Open (creating if absent) `shards` engine shards under `root`,
    /// one subdirectory each (`shard-000`, `shard-001`, …), every shard
    /// carrying the full catalog index set and change journal. `shards`
    /// is clamped to at least 1. Reopen with the same count — routing
    /// is `hash % N`.
    pub fn open(
        root: &Path,
        shards: usize,
        options: EngineOptions,
    ) -> Result<ShardedCatalog, CatalogError> {
        let n = shards.max(1);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let dir = root.join(format!("shard-{i:03}"));
            let store = Arc::new(TableStore::new(Arc::new(Engine::open(
                &dir,
                options.clone(),
            )?)));
            let catalog = RecordCatalog::open_on(store.clone(), RECORDS_TABLE)?;
            out.push(Shard {
                dir,
                store,
                catalog,
            });
        }
        Ok(ShardedCatalog { shards: out })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Directory of shard `i` (for tooling and tests).
    pub fn shard_dir(&self, i: usize) -> &Path {
        &self.shards[i].dir
    }

    /// Home shard of a record id (stable FNV-1a routing, `hash % N`).
    pub fn shard_of(&self, id: &str) -> usize {
        (route_hash(id) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard's catalog, for callers that partition
    /// work themselves (per-shard writers, benches, repair tools).
    /// Writes through it MUST target ids that [`shard_of`](Self::shard_of)
    /// routes to `i`, or routed reads will miss them.
    pub fn catalog_of(&self, i: usize) -> &RecordCatalog {
        &self.shards[i].catalog
    }

    /// Partition `records` by routing hash, preserving input order
    /// within each shard.
    fn partition<'a>(&self, records: &'a [Record]) -> Vec<Vec<&'a Record>> {
        let mut parts: Vec<Vec<&Record>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for r in records {
            parts[self.shard_of(&r.id)].push(r);
        }
        parts
    }

    /// Ingest `records` across all shards in parallel — one worker per
    /// shard on the wfms pool. With `bulk = true` each shard commits
    /// through the direct-run fast path
    /// ([`RecordCatalog::insert_all_bulk`]; fresh ids only); otherwise
    /// through one ordinary session commit per shard.
    pub fn ingest(&self, records: &[Record], bulk: bool) -> Result<ShardedIngest, CatalogError> {
        let parts = self.partition(records);
        let jobs: Vec<(usize, Vec<Record>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, p)| (i, p.into_iter().cloned().collect()))
            .collect();
        let (results, _report) = scoped_run(self.shards.len(), &jobs, |(i, recs)| {
            let catalog = &self.shards[*i].catalog;
            let receipt = if bulk {
                catalog.insert_all_bulk(recs)?
            } else {
                catalog.insert_all(recs)?
            };
            Ok::<(usize, u64, CommitReceipt), CatalogError>((*i, recs.len() as u64, receipt))
        });
        let mut out = ShardedIngest::default();
        for res in results {
            let (i, n, receipt) = res?;
            out.records += n;
            out.shards_used += 1;
            out.receipts.push((i, receipt));
        }
        out.receipts.sort_by_key(|(i, _)| *i);
        Ok(out)
    }

    /// Load one record: a single point lookup on its home shard.
    pub fn get(&self, id: &str) -> Result<Option<Record>, CatalogError> {
        self.shards[self.shard_of(id)].catalog.get(id)
    }

    /// Run a query on every shard in parallel and merge the hits in id
    /// order, re-applying the query's limit to the merged set.
    pub fn query(&self, query: &Query) -> Result<Vec<Record>, CatalogError> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let (results, _) = scoped_run(self.shards.len(), &idx, |i| {
            self.shards[*i].catalog.query(query)
        });
        let mut merged = Vec::new();
        for res in results {
            merged.extend(res?);
        }
        merged.sort_by(|a, b| a.id.cmp(&b.id));
        if let Some(n) = query.limit {
            merged.truncate(n);
        }
        Ok(merged)
    }

    /// Total records across all shards.
    pub fn len(&self) -> Result<usize, CatalogError> {
        let mut total = 0;
        for s in &self.shards {
            total += s.catalog.len()?;
        }
        Ok(total)
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> Result<bool, CatalogError> {
        Ok(self.len()? == 0)
    }

    /// Journal head of every shard, in shard order. The merged head of
    /// a sharded catalog is this whole vector — cursors are per shard.
    pub fn journal_heads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.store.journal_head()).collect()
    }

    /// Engine stats summed across shards (`torn_tail_discarded` ORs).
    pub fn merged_stats(&self) -> EngineStats {
        let mut merged = EngineStats::default();
        for s in &self.shards {
            let st = s.store.engine().stats();
            merged.puts += st.puts;
            merged.deletes += st.deletes;
            merged.gets += st.gets;
            merged.scans += st.scans;
            merged.commits += st.commits;
            merged.checkpoints += st.checkpoints;
            merged.compactions += st.compactions;
            merged.recovered_records += st.recovered_records;
            merged.recovered_from_snapshot += st.recovered_from_snapshot;
            merged.torn_tail_discarded |= st.torn_tail_discarded;
        }
        merged
    }

    /// Flush every shard's memtable in parallel.
    pub fn checkpoint_all(&self) -> Result<(), CatalogError> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let (results, _) = scoped_run(self.shards.len(), &idx, |i| {
            self.shards[*i].store.engine().checkpoint()
        });
        for res in results {
            res?;
        }
        Ok(())
    }

    /// Force a full compaction on every shard in parallel.
    pub fn compact_all(&self) -> Result<(), CatalogError> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let (results, _) = scoped_run(self.shards.len(), &idx, |i| {
            self.shards[*i].store.engine().compact()
        });
        for res in results {
            res?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::query::Filter;
    use preserva_metadata::value::Value;

    fn tmproot(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("preserva-shard-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(format!("rec-{i:05}"))
                    .with("species", Value::Text("Hyla faber".into()))
                    .with(
                        "state",
                        Value::Text(if i % 2 == 0 { "SP" } else { "AM" }.into()),
                    )
            })
            .collect()
    }

    #[test]
    fn sharded_ingest_routes_and_merges() {
        let root = tmproot("route");
        let cat = ShardedCatalog::open(&root, 4, EngineOptions::default()).unwrap();
        let recs = records(200);
        let out = cat.ingest(&recs, true).unwrap();
        assert_eq!(out.records, 200);
        assert!(out.shards_used > 1, "200 ids must spread over 4 shards");
        assert_eq!(out.journal_events(), 200, "every record journaled once");
        assert_eq!(cat.len().unwrap(), 200);
        // Point reads route to the owning shard.
        assert_eq!(cat.get("rec-00123").unwrap().unwrap().id, "rec-00123");
        assert!(cat.get("missing").unwrap().is_none());
        // Fan-out query merges in id order and honors the limit.
        let q = Query::new(Filter::TextEq {
            field: "state".into(),
            value: "SP".into(),
        });
        let hits = cat.query(&q).unwrap();
        assert_eq!(hits.len(), 100);
        assert!(hits.windows(2).all(|w| w[0].id < w[1].id));
        let limited = cat
            .query(&Query {
                limit: Some(7),
                ..q
            })
            .unwrap();
        assert_eq!(limited.len(), 7);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopened_catalog_routes_identically() {
        let root = tmproot("reopen");
        {
            let cat = ShardedCatalog::open(&root, 3, EngineOptions::default()).unwrap();
            cat.ingest(&records(60), true).unwrap();
            cat.checkpoint_all().unwrap();
        }
        let cat = ShardedCatalog::open(&root, 3, EngineOptions::default()).unwrap();
        assert_eq!(cat.len().unwrap(), 60);
        for i in 0..60 {
            let id = format!("rec-{i:05}");
            assert_eq!(cat.get(&id).unwrap().unwrap().id, id, "stable routing");
        }
        let heads = cat.journal_heads();
        assert_eq!(heads.len(), 3);
        assert_eq!(
            heads.iter().sum::<u64>(),
            60,
            "journal heads recovered per shard"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn merged_stats_aggregate_across_shards() {
        let root = tmproot("stats");
        let cat = ShardedCatalog::open(&root, 2, EngineOptions::default()).unwrap();
        let before = cat.merged_stats();
        cat.ingest(&records(40), false).unwrap();
        let stats = cat.merged_stats();
        assert_eq!(
            stats.commits - before.commits,
            2,
            "session mode: one commit per shard touched"
        );
        assert!(stats.puts - before.puts >= 40);
        cat.compact_all().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn single_shard_is_a_plain_catalog() {
        let root = tmproot("one");
        let cat = ShardedCatalog::open(&root, 0, EngineOptions::default()).unwrap();
        assert_eq!(cat.shard_count(), 1, "shard count clamps to 1");
        let out = cat.ingest(&records(10), true).unwrap();
        assert_eq!(out.shards_used, 1);
        assert_eq!(cat.len().unwrap(), 10);
        std::fs::remove_dir_all(&root).ok();
    }
}
