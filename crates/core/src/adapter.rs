//! The Workflow Adapter: "allows experts to add quality information to a
//! workflow specification … without changing the workflow model" (§III).
//!
//! Concretely: annotations are *appended* to processors or to the
//! workflow; the dataflow graph (processors, ports, links) is never
//! touched, and the adapter enforces that by construction — it only ever
//! pushes [`AnnotationAssertion`]s.

use preserva_wfms::annotation::AnnotationAssertion;
use preserva_wfms::model::Workflow;

use crate::roles::ProcessDesigner;

/// Error annotating a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdapterError {
    /// The workflow has no processor with the given name.
    UnknownProcessor(String),
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdapterError::UnknownProcessor(p) => {
                write!(f, "workflow has no processor named {p:?}")
            }
        }
    }
}

impl std::error::Error for AdapterError {}

/// The adapter. Stateless: it acts on workflow values and records who
/// asserted what.
#[derive(Debug, Default)]
pub struct WorkflowAdapter;

impl WorkflowAdapter {
    /// Create an adapter.
    pub fn new() -> Self {
        WorkflowAdapter
    }

    /// Attach quality annotations (`Q(name): value;` pairs) to a
    /// processor, asserted by `designer` at `date`.
    pub fn annotate_processor(
        &self,
        workflow: &mut Workflow,
        processor: &str,
        quality: &[(&str, f64)],
        designer: &ProcessDesigner,
        date: &str,
    ) -> Result<(), AdapterError> {
        let assertion = AnnotationAssertion::quality(quality, date, &designer.name);
        let p = workflow
            .processor_mut(processor)
            .ok_or_else(|| AdapterError::UnknownProcessor(processor.to_string()))?;
        p.annotations.push(assertion);
        Ok(())
    }

    /// Attach quality annotations at the workflow level.
    pub fn annotate_workflow(
        &self,
        workflow: &mut Workflow,
        quality: &[(&str, f64)],
        designer: &ProcessDesigner,
        date: &str,
    ) {
        workflow
            .annotations
            .push(AnnotationAssertion::quality(quality, date, &designer.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_wfms::annotation::merged_quality;
    use preserva_wfms::model::Processor;

    fn workflow() -> Workflow {
        Workflow::new("w", "w").with_processor(Processor::service("col", "svc", &["in"], &["out"]))
    }

    fn designer() -> ProcessDesigner {
        ProcessDesigner::new("expert", "IC/Unicamp")
    }

    #[test]
    fn annotates_processor_without_changing_model() {
        let mut w = workflow();
        let before_links = w.links.clone();
        let before_kind = w.processor("col").unwrap().kind.clone();
        WorkflowAdapter::new()
            .annotate_processor(
                &mut w,
                "col",
                &[("reputation", 1.0), ("availability", 0.9)],
                &designer(),
                "2013-11-12",
            )
            .unwrap();
        // Quality attached…
        let q = merged_quality(&w.processor("col").unwrap().annotations);
        assert_eq!(q.get("reputation"), Some(&1.0));
        assert_eq!(q.get("availability"), Some(&0.9));
        // …and the model untouched.
        assert_eq!(w.links, before_links);
        assert_eq!(w.processor("col").unwrap().kind, before_kind);
        assert_eq!(w.processors.len(), 1);
    }

    #[test]
    fn unknown_processor_is_error() {
        let mut w = workflow();
        let err = WorkflowAdapter::new()
            .annotate_processor(&mut w, "ghost", &[], &designer(), "2013")
            .unwrap_err();
        assert_eq!(err, AdapterError::UnknownProcessor("ghost".into()));
    }

    #[test]
    fn workflow_level_annotations() {
        let mut w = workflow();
        WorkflowAdapter::new().annotate_workflow(
            &mut w,
            &[("timeliness", 0.8)],
            &designer(),
            "2013",
        );
        let q = merged_quality(&w.annotations);
        assert_eq!(q.get("timeliness"), Some(&0.8));
    }

    #[test]
    fn assertions_record_the_designer() {
        let mut w = workflow();
        WorkflowAdapter::new()
            .annotate_processor(&mut w, "col", &[("reputation", 1.0)], &designer(), "2013")
            .unwrap();
        assert_eq!(w.processor("col").unwrap().annotations[0].creator, "expert");
    }
}
