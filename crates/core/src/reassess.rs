//! Change-feed-driven incremental reassessment.
//!
//! The write path journals every committed mutation (see
//! `preserva_storage::journal`); this module is the consumer side: a
//! [`Reassessor`] keeps a durable cursor into that feed and, on each
//! [`run`](Reassessor::run), distills the entries since the cursor into
//! a [`DeltaPlan`](preserva_curation::delta::DeltaPlan), re-runs only
//! the affected curation passes on only the touched records, re-checks
//! only the species names whose checklist status (or record references)
//! changed, and folds the results into a persistent
//! [`ContributionLedger`] so quality ratios update in O(changes) instead
//! of O(collection).
//!
//! Everything a run decides — curated rows, the record→name map, name
//! reference counts, the ledger, the advanced cursor and the OPM graph
//! describing the run — commits in **one** write session: recovery never
//! sees a half-applied reassessment. The OPM graph's cause artifact is
//! the journal slice itself, so provenance answers "*why* was this
//! record reprocessed" with the exact change that triggered it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use preserva_curation::delta::{self, TouchedFields};
use preserva_curation::log::CurationLog;
use preserva_curation::outdated::{NameCheckOutcome, OutdatedNameDetector, OutdatedNameReport};
use preserva_curation::pipeline::CurationPipeline;
use preserva_curation::review::ReviewQueue;
use preserva_metadata::record::Record;
use preserva_obs::{Counter, Gauge, Histogram, Registry};
use preserva_opm::edge::Edge;
use preserva_opm::graph::OpmGraph;
use preserva_opm::model::{Agent, Artifact, Process};
use preserva_quality::ledger::{Contribution, ContributionLedger};
use preserva_storage::table::{CommitReceipt, TableSnapshot, TableStore, WriteSession};
use preserva_storage::{Lsn, StorageError};
use preserva_taxonomy::checklist::Checklist;
use preserva_taxonomy::diff::ChecklistDiff;
use preserva_taxonomy::name::ScientificName;
use preserva_taxonomy::service::ColService;
use serde::{Deserialize, Serialize};

use crate::provenance_manager::{ProvenanceError, ProvenanceManager};
use crate::repository::CodecError;

/// Table holding the reassessment cursor/state and the serialized ledger.
pub const REASSESS_META_TABLE: &str = "reassess_meta";
/// Table mapping record id → canonical species name as of the last run.
pub const REASSESS_NAMES_TABLE: &str = "reassess_names";
/// Table mapping canonical species name → number of referencing records.
pub const REASSESS_REFS_TABLE: &str = "reassess_refs";

const STATE_KEY: &[u8] = b"state";
const LEDGER_KEY: &[u8] = b"ledger";

/// Name checks use a deterministic retry budget; with the availability
/// the CLI configures for reassessment (1.0) retries never trigger.
const CHECK_ATTEMPTS: u32 = 3;

/// Errors from the reassessment layer.
#[derive(Debug)]
pub enum ReassessError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A persisted row failed to (de)serialize.
    Codec(CodecError),
    /// Staging the run's OPM graph failed.
    Provenance(ProvenanceError),
}

impl std::fmt::Display for ReassessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassessError::Storage(e) => write!(f, "reassess storage: {e}"),
            ReassessError::Codec(e) => write!(f, "reassess codec: {e}"),
            ReassessError::Provenance(e) => write!(f, "reassess provenance: {e}"),
        }
    }
}

impl std::error::Error for ReassessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReassessError::Storage(e) => Some(e),
            ReassessError::Codec(e) => Some(e),
            ReassessError::Provenance(e) => Some(e),
        }
    }
}

impl From<StorageError> for ReassessError {
    fn from(e: StorageError) -> Self {
        ReassessError::Storage(e)
    }
}

impl From<CodecError> for ReassessError {
    fn from(e: CodecError) -> Self {
        ReassessError::Codec(e)
    }
}

impl From<ProvenanceError> for ReassessError {
    fn from(e: ProvenanceError) -> Self {
        ReassessError::Provenance(e)
    }
}

/// Durable cursor state, one JSON row.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ReassessState {
    /// Highest journal sequence number already reassessed.
    cursor: u64,
    /// Completed delta runs (feeds deterministic OPM run ids).
    runs: u64,
}

/// What one [`Reassessor::run`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReassessOutcome {
    /// Cursor before the run.
    pub cursor_before: u64,
    /// Cursor after the run (past the run's own journaled writes).
    pub cursor_after: u64,
    /// Journal entries pending when the run started.
    pub journal_lag: u64,
    /// Journal entries consumed.
    pub entries_consumed: usize,
    /// Records the delta affected (pipeline re-runs plus records whose
    /// species name's status changed) — the O(k) the metric asserts.
    pub records_reprocessed: usize,
    /// Individual pass executions.
    pub passes_run: usize,
    /// Field fixes applied by re-run passes.
    pub field_changes: usize,
    /// Review flags raised.
    pub flags: usize,
    /// Species names re-checked against the service.
    pub names_rechecked: usize,
    /// `(checked, correct)` ledger totals after the run.
    pub ledger_totals: (f64, f64),
    /// Run id of the OPM graph captured for this delta (None when the
    /// feed was empty or no provenance manager was supplied).
    pub run_id: Option<String>,
    /// Commit LSN the run's input snapshot was pinned at: every read the
    /// run made saw exactly this one consistent state.
    pub input_lsn: Lsn,
}

impl ReassessOutcome {
    /// Whether the run found nothing to do.
    pub fn is_noop(&self) -> bool {
        self.entries_consumed == 0
    }

    /// The ledger's accuracy ratio, if anything is checked.
    pub fn accuracy(&self) -> Option<f64> {
        let (checked, correct) = self.ledger_totals;
        (checked > 0.0).then(|| correct / checked)
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("delta reassessment\n");
        out.push_str(&format!(
            "  journal: lag {} entries, consumed {} (cursor {} -> {})\n",
            self.journal_lag, self.entries_consumed, self.cursor_before, self.cursor_after
        ));
        out.push_str(&format!(
            "  records reprocessed:  {} ({} pass runs, {} field fixes, {} flags)\n",
            self.records_reprocessed, self.passes_run, self.field_changes, self.flags
        ));
        out.push_str(&format!(
            "  names re-checked:     {}\n",
            self.names_rechecked
        ));
        let (checked, correct) = self.ledger_totals;
        out.push_str(&format!(
            "  quality ledger:       {correct:.0}/{checked:.0} names correct{}\n",
            match self.accuracy() {
                Some(a) => format!(" ({:.1}% accuracy)", a * 100.0),
                None => String::new(),
            }
        ));
        if let Some(id) = &self.run_id {
            out.push_str(&format!("  provenance run:       {id}\n"));
        }
        out.push_str(&format!("  input snapshot lsn:   {}\n", self.input_lsn));
        out
    }
}

/// Reassessment instruments, resolved once at construction.
struct ReassessMetrics {
    runs: Arc<Counter>,
    journal_lag: Arc<Gauge>,
    journal_head: Arc<Gauge>,
    batch_entries: Arc<Histogram>,
    records_reprocessed: Arc<Counter>,
    names_rechecked: Arc<Counter>,
    run_seconds: Arc<Histogram>,
}

impl ReassessMetrics {
    fn resolve(reg: &Arc<Registry>) -> ReassessMetrics {
        ReassessMetrics {
            runs: reg.counter(
                "preserva_reassess_runs_total",
                "Completed delta reassessment runs.",
            ),
            journal_lag: reg.gauge(
                "preserva_reassess_journal_lag",
                "Journal entries pending behind the reassessment cursor \
                 at the start of the latest run.",
            ),
            journal_head: reg.gauge(
                "preserva_journal_head_seq",
                "Highest journal sequence number assigned by the store.",
            ),
            batch_entries: reg.histogram(
                "preserva_reassess_delta_batch_entries",
                "Journal entries consumed per delta reassessment run.",
                &[1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0],
            ),
            records_reprocessed: reg.counter(
                "preserva_reassess_records_reprocessed_total",
                "Records a delta run affected (pipeline re-runs plus \
                 name-status fallout) — O(changes), not O(collection).",
            ),
            names_rechecked: reg.counter(
                "preserva_reassess_names_rechecked_total",
                "Species names re-checked against the catalogue by delta runs.",
            ),
            run_seconds: reg.latency_histogram(
                "preserva_reassess_run_seconds",
                "Latency of delta reassessment runs (plan, re-run, commit).",
            ),
        }
    }
}

/// The change-feed consumer: cursor + delta curation + incremental
/// quality bookkeeping over one records table.
pub struct Reassessor {
    store: Arc<TableStore>,
    records_table: String,
    obs: Arc<Registry>,
    metrics: ReassessMetrics,
}

impl std::fmt::Debug for Reassessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reassessor")
            .field("records_table", &self.records_table)
            .finish()
    }
}

impl Reassessor {
    /// Bind to a store and records table, with a private metrics
    /// registry. Marks the table journaled (idempotent).
    pub fn new(store: Arc<TableStore>, records_table: &str) -> Result<Self, ReassessError> {
        Self::with_metrics(store, records_table, Arc::new(Registry::new()))
    }

    /// Bind to a store and records table, reporting into `registry`.
    pub fn with_metrics(
        store: Arc<TableStore>,
        records_table: &str,
        registry: Arc<Registry>,
    ) -> Result<Self, ReassessError> {
        store.mark_journaled(records_table)?;
        let metrics = ReassessMetrics::resolve(&registry);
        Ok(Reassessor {
            store,
            records_table: records_table.to_string(),
            obs: registry,
            metrics,
        })
    }

    /// The metrics registry this reassessor reports to.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    fn load_state(&self) -> Result<ReassessState, ReassessError> {
        match self.store.get(REASSESS_META_TABLE, STATE_KEY)? {
            Some(row) => serde_json::from_slice(&row)
                .map_err(|e| CodecError::new(REASSESS_META_TABLE, "state", e).into()),
            None => Ok(ReassessState::default()),
        }
    }

    fn decode_ledger(row: Option<Vec<u8>>) -> Result<ContributionLedger, ReassessError> {
        match row {
            Some(row) => serde_json::from_slice(&row)
                .map_err(|e| CodecError::new(REASSESS_META_TABLE, "ledger", e).into()),
            None => Ok(ContributionLedger::new()),
        }
    }

    fn load_ledger(&self) -> Result<ContributionLedger, ReassessError> {
        Self::decode_ledger(self.store.get(REASSESS_META_TABLE, LEDGER_KEY)?)
    }

    /// The persisted quality ledger (empty before the first run/seed).
    pub fn ledger(&self) -> Result<ContributionLedger, ReassessError> {
        self.load_ledger()
    }

    /// Journal sequence number already reassessed.
    pub fn cursor(&self) -> Result<u64, ReassessError> {
        Ok(self.load_state()?.cursor)
    }

    /// Journal entries committed but not yet reassessed.
    pub fn journal_lag(&self) -> Result<u64, ReassessError> {
        Ok(self
            .store
            .journal_head()
            .saturating_sub(self.load_state()?.cursor))
    }

    fn stage_state(
        &self,
        session: &mut WriteSession<'_>,
        state: &ReassessState,
    ) -> Result<(), ReassessError> {
        let bytes = serde_json::to_vec(state)
            .map_err(|e| CodecError::new(REASSESS_META_TABLE, "state", e))?;
        session.put(REASSESS_META_TABLE, STATE_KEY, &bytes)?;
        Ok(())
    }

    fn stage_ledger(
        &self,
        session: &mut WriteSession<'_>,
        ledger: &ContributionLedger,
    ) -> Result<(), ReassessError> {
        let bytes = serde_json::to_vec(ledger)
            .map_err(|e| CodecError::new(REASSESS_META_TABLE, "ledger", e))?;
        session.put(REASSESS_META_TABLE, LEDGER_KEY, &bytes)?;
        Ok(())
    }

    fn decode_refs(row: Option<Vec<u8>>) -> u64 {
        row.and_then(|v| String::from_utf8(v).ok())
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0)
    }

    /// Seed the bookkeeping from a completed *full* check: record→name
    /// map, reference counts and ledger are rebuilt to mirror `report`,
    /// and the cursor jumps to the journal head (everything before it is
    /// reflected in the report by construction). One commit.
    pub fn seed(&self, report: &OutdatedNameReport) -> Result<CommitReceipt, ReassessError> {
        let mut refs: BTreeMap<String, u64> = BTreeMap::new();
        for name in report.record_names.values() {
            *refs.entry(name.canonical()).or_insert(0) += 1;
        }
        let incorrect: BTreeSet<String> = report
            .outdated
            .iter()
            .map(|(old, _)| old.canonical())
            .chain(report.doubtful.iter().map(|n| n.canonical()))
            .chain(report.misspelled.iter().map(|(n, _, _)| n.canonical()))
            .chain(report.not_found.iter().map(|n| n.canonical()))
            .collect();
        let unavailable: BTreeSet<String> =
            report.unavailable.iter().map(|n| n.canonical()).collect();
        let mut ledger = ContributionLedger::new();
        for name in refs.keys() {
            if unavailable.contains(name) {
                continue; // unchecked, exactly like the full report
            }
            ledger.set(
                name,
                if incorrect.contains(name) {
                    Contribution::incorrect()
                } else {
                    Contribution::correct()
                },
            );
        }

        let mut session = self.store.session();
        // Drop rows from an earlier seed that the report no longer
        // covers, reading both bookkeeping tables through one snapshot
        // so a concurrent commit can't leave a torn cross-table view.
        let snap = self.store.snapshot();
        for (key, _) in snap.scan(REASSESS_NAMES_TABLE)? {
            if String::from_utf8(key.clone())
                .map(|id| !report.record_names.contains_key(&id))
                .unwrap_or(true)
            {
                session.delete(REASSESS_NAMES_TABLE, &key)?;
            }
        }
        for (key, _) in snap.scan(REASSESS_REFS_TABLE)? {
            if String::from_utf8(key.clone())
                .map(|name| !refs.contains_key(&name))
                .unwrap_or(true)
            {
                session.delete(REASSESS_REFS_TABLE, &key)?;
            }
        }
        for (record_id, name) in &report.record_names {
            session.put(
                REASSESS_NAMES_TABLE,
                record_id.as_bytes(),
                name.canonical().as_bytes(),
            )?;
        }
        for (name, count) in &refs {
            session.put(
                REASSESS_REFS_TABLE,
                name.as_bytes(),
                count.to_string().as_bytes(),
            )?;
        }
        self.stage_ledger(&mut session, &ledger)?;
        let state = ReassessState {
            cursor: self.store.journal_head(),
            runs: self.load_state()?.runs,
        };
        self.stage_state(&mut session, &state)?;
        let receipt = session.commit()?;
        self.obs.trace(
            "reassess",
            format!(
                "seeded ledger with {} names ({} records) at cursor {}",
                ledger.len(),
                report.record_names.len(),
                state.cursor
            ),
        );
        Ok(receipt)
    }

    /// Record a backbone upgrade in the change feed: diff the `from` and
    /// `to` editions of `checklist` and journal one `name-status-changed`
    /// event per affected name (plus one `source-changed` marker), all in
    /// one commit. The next [`run`](Self::run) re-checks exactly those
    /// names. Returns the diff and the receipt.
    pub fn swap_backbone(
        &self,
        checklist: &Checklist,
        from_year: i32,
        to_year: i32,
    ) -> Result<(ChecklistDiff, CommitReceipt), ReassessError> {
        let diff = checklist.diff(from_year, to_year);
        let mut session = self.store.session();
        for change in &diff.changes {
            session.journal(
                delta::NAME_STATUS_CHANGED,
                "taxonomy",
                change.name.canonical().as_bytes(),
                format!("{:?} -> {:?}", change.old, change.new).as_bytes(),
            );
        }
        session.journal(
            delta::SOURCE_CHANGED,
            "taxonomy",
            b"checklist",
            format!("{from_year} -> {to_year}").as_bytes(),
        );
        let receipt = session.commit()?;
        self.obs.trace(
            "reassess",
            format!(
                "backbone swap {from_year} -> {to_year}: {} name status changes journaled",
                diff.len()
            ),
        );
        Ok((diff, receipt))
    }

    fn check_name(service: &ColService, name: &str) -> Option<Contribution> {
        let parsed = ScientificName::parse(name)?;
        match OutdatedNameDetector::new(service, CHECK_ATTEMPTS).check(&parsed) {
            NameCheckOutcome::Current => Some(Contribution::correct()),
            NameCheckOutcome::Unavailable => None,
            _ => Some(Contribution::incorrect()),
        }
    }

    /// Record ids referencing `name` as of the run's input snapshot, via
    /// the species index.
    fn records_of(&self, snap: &TableSnapshot, name: &str) -> Result<Vec<String>, ReassessError> {
        Ok(snap
            .lookup(
                &self.records_table,
                "species",
                name.to_lowercase().as_bytes(),
            )?
            .into_iter()
            .filter_map(|pk| String::from_utf8(pk).ok())
            .collect())
    }

    /// Consume the journal from the stored cursor (or `since`) and apply
    /// the delta: affected curation passes on touched records, name
    /// re-checks for changed statuses/references, ledger maintenance, and
    /// an OPM graph whose cause is the consumed journal slice — all in
    /// ONE commit, with the cursor advanced past the run's own writes in
    /// a follow-up commit (idempotent if lost).
    ///
    /// Every input — journal slice, touched records, name map, reference
    /// counts and ledger — is captured under ONE pinned snapshot, so the
    /// delta is computed against a single consistent state even while
    /// writers keep committing (delta ≡ full without quiescing anyone).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        pipeline: &CurationPipeline,
        service: &ColService,
        prov: Option<&ProvenanceManager>,
        since: Option<u64>,
        log: &mut CurationLog,
        queue: &mut ReviewQueue,
    ) -> Result<ReassessOutcome, ReassessError> {
        self.run_at(pipeline, service, prov, since, None, log, queue)
    }

    /// [`run`](Self::run) with an explicit input pin: `at_lsn` time-travels
    /// the input snapshot to any journaled commit LSN (clamped to the
    /// head), replaying the feed exactly as it stood then — commits after
    /// that LSN are invisible to the run and stay for the next one.
    /// Outputs still commit to the live store.
    #[allow(clippy::too_many_arguments)]
    pub fn run_at(
        &self,
        pipeline: &CurationPipeline,
        service: &ColService,
        prov: Option<&ProvenanceManager>,
        since: Option<u64>,
        at_lsn: Option<Lsn>,
        log: &mut CurationLog,
        queue: &mut ReviewQueue,
    ) -> Result<ReassessOutcome, ReassessError> {
        let started = Instant::now();
        let mut state = self.load_state()?;
        let cursor = since.unwrap_or(state.cursor);
        // Pin the input: every read below goes through this one snapshot.
        let snap = match at_lsn {
            Some(lsn) => self.store.snapshot_at(lsn),
            None => self.store.snapshot(),
        };

        // Drain the feed visible at the pin; entries from commits after
        // the snapshot stay for the next run by construction.
        let mut entries = Vec::new();
        let mut pos = cursor;
        loop {
            let batch = snap.read_journal(pos, 4096)?;
            if batch.is_empty() {
                break;
            }
            pos = batch.last().expect("non-empty").seq;
            entries.extend(batch);
        }
        let head = entries.last().map_or(cursor, |e| e.seq);
        let lag = head.saturating_sub(cursor);
        self.metrics.journal_lag.set(lag);
        self.metrics.journal_head.set(self.store.journal_head());

        let mut outcome = ReassessOutcome {
            cursor_before: cursor,
            cursor_after: cursor,
            journal_lag: lag,
            entries_consumed: entries.len(),
            ledger_totals: Self::decode_ledger(snap.get(REASSESS_META_TABLE, LEDGER_KEY)?)?
                .totals(),
            input_lsn: snap.lsn(),
            ..Default::default()
        };
        if entries.is_empty() {
            self.obs
                .trace("reassess", "change feed empty; nothing to do".to_string());
            self.metrics.run_seconds.observe_duration(started.elapsed());
            return Ok(outcome);
        }

        let plan = delta::plan(&entries, &self.records_table);

        // An upgraded external source a pass depends on means every
        // record must be reconsidered — but still only by the dependent
        // passes (an empty touched-field set triggers nothing else).
        let source_sweep = pipeline.passes().iter().any(|p| {
            p.dependencies()
                .sources
                .iter()
                .any(|s| plan.changed_sources.contains(s))
        });
        let mut touched = plan.touched_records.clone();
        if source_sweep {
            for (key, _) in snap.scan(&self.records_table)? {
                if let Ok(id) = String::from_utf8(key) {
                    touched
                        .entry(id)
                        .or_insert_with(|| TouchedFields::Fields(BTreeSet::new()));
                }
            }
        }

        // Load the touched records that still exist; ids the journal
        // touched but the table no longer holds are treated as deleted.
        let mut records = Vec::new();
        let mut gone: BTreeSet<String> = plan.deleted_records.clone();
        for id in touched.keys() {
            match snap.get(&self.records_table, id.as_bytes())? {
                Some(row) => match serde_json::from_slice::<Record>(&row) {
                    Ok(r) => records.push(r),
                    Err(e) => {
                        return Err(CodecError::new(&self.records_table, id.clone(), e).into())
                    }
                },
                None => {
                    gone.insert(id.clone());
                }
            }
        }

        let (curated, summary) = delta::run_delta(
            pipeline,
            &records,
            &touched,
            &plan.changed_sources,
            log,
            queue,
        );

        // Name bookkeeping: reference-count deltas from records whose
        // species moved, plus re-checks for names the backbone retired.
        let mut ref_delta: BTreeMap<String, i64> = BTreeMap::new();
        let mut session = self.store.session();
        let mut dirty_records = 0usize;
        for (before, after) in records.iter().zip(curated.iter()) {
            let old_name = snap
                .get(REASSESS_NAMES_TABLE, after.id.as_bytes())?
                .and_then(|v| String::from_utf8(v).ok());
            let new_name = after
                .get_text("species")
                .and_then(ScientificName::parse)
                .map(|n| n.canonical());
            if old_name != new_name {
                if let Some(old) = &old_name {
                    *ref_delta.entry(old.clone()).or_insert(0) -= 1;
                }
                if let Some(new) = &new_name {
                    *ref_delta.entry(new.clone()).or_insert(0) += 1;
                    session.put(REASSESS_NAMES_TABLE, after.id.as_bytes(), new.as_bytes())?;
                } else {
                    session.delete(REASSESS_NAMES_TABLE, after.id.as_bytes())?;
                }
            }
            if before != after {
                let bytes = serde_json::to_vec(after)
                    .map_err(|e| CodecError::new(&self.records_table, after.id.clone(), e))?;
                session.put(&self.records_table, after.id.as_bytes(), &bytes)?;
                dirty_records += 1;
            }
        }
        for id in &gone {
            if let Some(old) = snap
                .get(REASSESS_NAMES_TABLE, id.as_bytes())?
                .and_then(|v| String::from_utf8(v).ok())
            {
                *ref_delta.entry(old).or_insert(0) -= 1;
                session.delete(REASSESS_NAMES_TABLE, id.as_bytes())?;
            }
        }

        let mut ledger = Self::decode_ledger(snap.get(REASSESS_META_TABLE, LEDGER_KEY)?)?;
        let mut candidates: BTreeSet<String> = plan.changed_names.clone();
        candidates.extend(ref_delta.keys().cloned());
        let mut names_rechecked = 0usize;
        for name in &candidates {
            let delta_refs = ref_delta.get(name).copied().unwrap_or(0);
            let stored = Self::decode_refs(snap.get(REASSESS_REFS_TABLE, name.as_bytes())?);
            let refs = (stored as i64 + delta_refs).max(0) as u64;
            if refs == 0 {
                ledger.remove(name);
                session.delete(REASSESS_REFS_TABLE, name.as_bytes())?;
                continue;
            }
            session.put(
                REASSESS_REFS_TABLE,
                name.as_bytes(),
                refs.to_string().as_bytes(),
            )?;
            names_rechecked += 1;
            // On a `None` verdict (service unavailable or unparseable
            // name) keep the last ledger entry — the full path would
            // keep it out of `checked` only if it was never checked.
            if let Some(c) = Self::check_name(service, name) {
                ledger.set(name, c);
            }
        }
        self.stage_ledger(&mut session, &ledger)?;

        // The O(k) the acceptance metric asserts: records whose passes
        // re-ran, plus records referencing a status-changed name.
        let mut affected: BTreeSet<String> = touched
            .keys()
            .filter(|id| !gone.contains(*id))
            .cloned()
            .collect();
        affected.extend(gone.iter().cloned());
        for name in &plan.changed_names {
            affected.extend(self.records_of(&snap, name)?);
        }

        state.cursor = head;
        state.runs += 1;
        self.stage_state(&mut session, &state)?;

        let run_id = match prov {
            Some(pm) if !plan.is_empty() => {
                let run_id = format!("reassess-{:012}-{:012}", cursor + 1, head);
                let graph = self.build_graph(&run_id, cursor, head, &plan, &affected, &summary);
                pm.stage_graph(&mut session, &run_id, &graph)?;
                Some(run_id)
            }
            _ => None,
        };

        // Input fully captured: unpin before committing so compaction is
        // free to fold versions this run no longer needs.
        drop(snap);
        let receipt = session.commit()?;
        // Our own curated writes appended journal entries; advance the
        // cursor past them. Losing this commit is safe: replaying those
        // entries re-runs idempotent passes on already-clean rows.
        if receipt.entries() > 0 && receipt.last_seq > state.cursor {
            state.cursor = receipt.last_seq;
            let mut bump = self.store.session();
            self.stage_state(&mut bump, &state)?;
            bump.commit()?;
        }

        outcome.cursor_after = state.cursor;
        outcome.records_reprocessed = affected.len();
        outcome.passes_run = summary.passes_run;
        outcome.field_changes = summary.field_changes;
        outcome.flags = summary.flags;
        outcome.names_rechecked = names_rechecked;
        outcome.ledger_totals = ledger.totals();
        outcome.run_id = run_id;

        self.metrics.runs.inc();
        self.metrics.batch_entries.observe(entries.len() as f64);
        self.metrics
            .records_reprocessed
            .add(outcome.records_reprocessed as u64);
        self.metrics.names_rechecked.add(names_rechecked as u64);
        self.metrics.journal_head.set(self.store.journal_head());
        self.metrics.run_seconds.observe_duration(started.elapsed());
        self.obs.trace(
            "reassess",
            format!(
                "delta run consumed {} entries: {} records affected, {} names re-checked, {} dirty rows",
                entries.len(),
                outcome.records_reprocessed,
                names_rechecked,
                dirty_records
            ),
        );
        Ok(outcome)
    }

    /// The delta run's OPM graph: the journal slice is the *cause*, the
    /// reassessed collection state the *effect*.
    fn build_graph(
        &self,
        run_id: &str,
        cursor: u64,
        head: u64,
        plan: &delta::DeltaPlan,
        affected: &BTreeSet<String>,
        summary: &delta::DeltaSummary,
    ) -> OpmGraph {
        let mut g = OpmGraph::new();
        let cause = g.add_artifact(
            Artifact::new(
                format!("journal:{}-{}", cursor + 1, head),
                "change journal slice",
            )
            .with_annotation("entries", plan.entries_consumed.to_string())
            .with_annotation("touched_records", plan.touched_records.len().to_string())
            .with_annotation("changed_names", plan.changed_names.len().to_string())
            .with_annotation("changed_sources", plan.changed_sources.len().to_string()),
        );
        let process = g.add_process(
            Process::new(run_id, "delta reassessment")
                .with_annotation("passes_run", summary.passes_run.to_string()),
        );
        let agent = g.add_agent(Agent::new("agent:reassessor", "change-feed reassessor"));
        let effect = g.add_artifact(
            Artifact::new(
                format!("collection:{}@{}", self.records_table, head),
                "reassessed collection state",
            )
            .with_annotation("records_reprocessed", affected.len().to_string()),
        );
        let _ = g.add_edge(Edge::used(
            process.clone(),
            cause.clone(),
            Some("change-feed"),
        ));
        let _ = g.add_edge(Edge::was_generated_by(
            effect.clone(),
            process.clone(),
            Some("reassessed-state"),
        ));
        let _ = g.add_edge(Edge::was_controlled_by(process, agent, Some("maintainer")));
        let _ = g.add_edge(Edge::was_derived_from(effect, cause));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retrieval::RecordCatalog;
    use preserva_gazetteer::builder::build_gazetteer;
    use preserva_metadata::fnjv;
    use preserva_metadata::value::Value;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_taxonomy::backbone::{Backbone, Classification, Taxon};
    use preserva_taxonomy::checklist::Evolution;
    use preserva_taxonomy::service::ServiceConfig;

    fn n(s: &str) -> ScientificName {
        ScientificName::parse(s).unwrap()
    }

    /// Three accepted names in 1965; 2010 retires Elachistocleis ovalis.
    fn checklist() -> Checklist {
        let mut b = Backbone::new();
        for name in ["Hyla faber", "Scinax ruber", "Elachistocleis ovalis"] {
            b.insert(Taxon {
                name: n(name),
                classification: Classification::new("Chordata", "Amphibia", "Anura", "F"),
                common_name: None,
            });
        }
        let mut c = Checklist::bootstrap(b, 1965);
        c.release(
            2010,
            &[Evolution::Rename {
                old: n("Elachistocleis ovalis"),
                new: n("Nomen inquirenda"),
            }],
        )
        .unwrap();
        c
    }

    fn service_at(year: i32) -> ColService {
        ColService::new(
            checklist().as_of(year),
            ServiceConfig {
                availability: 1.0,
                ..ServiceConfig::default()
            },
        )
    }

    fn record(id: &str, species: &str) -> Record {
        Record::new(id)
            .with("phylum", Value::Text("Chordata".into()))
            .with("class", Value::Text("Amphibia".into()))
            .with("order", Value::Text("Anura".into()))
            .with("family", Value::Text("Hylidae".into()))
            .with("species", Value::Text(species.into()))
            .with("country", Value::Text("Brazil".into()))
            .with("state", Value::Text("São Paulo".into()))
            .with("city", Value::Text("Campinas".into()))
    }

    fn sample() -> Vec<Record> {
        vec![
            record("FNJV-1", "Hyla faber"),
            record("FNJV-2", "Hyla faber"),
            record("FNJV-3", "Scinax ruber"),
            record("FNJV-4", "Scinax ruber"),
            record("FNJV-5", "Elachistocleis ovalis"),
        ]
    }

    fn pipeline() -> CurationPipeline {
        CurationPipeline::stage1(build_gazetteer(0, 1), fnjv::schema())
    }

    struct Fixture {
        store: Arc<TableStore>,
        catalog: RecordCatalog,
        dir: std::path::PathBuf,
    }

    fn fixture(name: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("preserva-reassess-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        let catalog = RecordCatalog::open_on(store.clone(), "records").unwrap();
        Fixture {
            store,
            catalog,
            dir,
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }

    /// A failed run must not leak its input snapshot: the pin gauge
    /// returns to zero and compaction is free to fold versions again. A
    /// leaked pin here would silently freeze MVCC garbage collection.
    #[test]
    fn failed_run_never_leaks_a_pinned_snapshot() {
        let f = fixture("pin-hygiene");
        f.catalog.insert_all(&sample()).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        // Corrupt one journaled record: run_at pins its snapshot, drains
        // the feed, then fails decoding the touched row mid-run.
        f.store.put("records", b"FNJV-1", b"{ not json").unwrap();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let err = r
            .run_at(
                &pipeline(),
                &service_at(1965),
                None,
                None,
                None,
                &mut log,
                &mut queue,
            )
            .unwrap_err();
        assert!(err.to_string().contains("FNJV-1"), "{err}");
        let pinned = f
            .store
            .engine()
            .metrics_registry()
            .gauge("preserva_storage_snapshots_pinned", "");
        assert_eq!(pinned.get(), 0, "error path must unpin the snapshot");
        // With no pin outstanding the tree folds all the way down.
        f.store.engine().checkpoint().unwrap();
        f.store.engine().compact().unwrap();
        let levels = f.store.engine().runs_per_level();
        let total: usize = levels.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1, "compaction not blocked: {levels:?}");
    }

    #[test]
    fn backbone_swap_reprocesses_only_affected_records() {
        let f = fixture("swap");
        f.catalog.insert_all(&sample()).unwrap();
        let registry = Arc::new(Registry::new());
        let r = Reassessor::with_metrics(f.store.clone(), "records", registry.clone()).unwrap();

        // Full baseline check at the 1965 edition seeds the bookkeeping.
        let svc_old = service_at(1965);
        let report = OutdatedNameDetector::new(&svc_old, 3).check_collection(&sample());
        r.seed(&report).unwrap();
        assert_eq!(r.ledger().unwrap().totals(), (3.0, 3.0));
        assert_eq!(r.journal_lag().unwrap(), 0);

        // Upgrade the backbone: two names differ between editions
        // (retired old + newly described replacement).
        let (diff, _) = r.swap_backbone(&checklist(), 1965, 2010).unwrap();
        assert_eq!(diff.len(), 2);
        assert_eq!(r.journal_lag().unwrap(), 3); // 2 names + source marker

        let pm = ProvenanceManager::new(f.store.clone());
        let svc_new = service_at(2010);
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let outcome = r
            .run(&pipeline(), &svc_new, Some(&pm), None, &mut log, &mut queue)
            .unwrap();

        // O(k): only the single record carrying the retired name is
        // affected, not the 5-record collection.
        assert_eq!(outcome.records_reprocessed, 1);
        assert_eq!(
            outcome.names_rechecked, 1,
            "replacement name has no records"
        );
        assert_eq!(outcome.entries_consumed, 3);
        assert_eq!(outcome.ledger_totals, (3.0, 2.0));
        // …and the ledger now agrees with a full recheck at the new edition.
        let full = OutdatedNameDetector::new(&svc_new, 3).check_collection(&sample());
        assert_eq!(
            outcome.ledger_totals,
            (full.checked() as f64, full.current as f64)
        );

        // The run's provenance: effect derived from the journal slice.
        let run_id = outcome.run_id.clone().unwrap();
        let graph = pm.load_graph(&run_id).unwrap();
        assert!(preserva_opm::validate::validate(&graph).is_legal());
        assert_eq!(
            graph
                .edges_of_kind(preserva_opm::edge::EdgeKind::WasDerivedFrom)
                .count(),
            1
        );

        // Metrics expose the O(k) claim.
        let text = registry.render_prometheus();
        assert!(text.contains("preserva_reassess_records_reprocessed_total 1"));
        assert!(text.contains("preserva_reassess_journal_lag 3"));

        // Cursor caught up: the next run is a no-op.
        let outcome2 = r
            .run(&pipeline(), &svc_new, Some(&pm), None, &mut log, &mut queue)
            .unwrap();
        assert!(outcome2.is_noop());
        assert_eq!(outcome2.cursor_after, outcome.cursor_after);
    }

    #[test]
    fn record_edit_moves_references_and_prunes_ledger() {
        let f = fixture("edit");
        f.catalog.insert_all(&sample()).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        let svc = service_at(2010);
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&sample());
        r.seed(&report).unwrap();
        assert_eq!(r.ledger().unwrap().totals(), (3.0, 2.0));

        // Re-identify the outdated specimen: its old name loses its last
        // reference and must leave the ledger entirely.
        f.catalog.insert(&record("FNJV-5", "Hyla faber")).unwrap();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let outcome = r
            .run(&pipeline(), &svc, None, None, &mut log, &mut queue)
            .unwrap();
        assert_eq!(outcome.records_reprocessed, 1);
        let ledger = r.ledger().unwrap();
        assert_eq!(ledger.totals(), (2.0, 2.0));
        assert!(ledger.get("Elachistocleis ovalis").is_none());
        assert_eq!(
            f.store
                .get(REASSESS_REFS_TABLE, b"Hyla faber")
                .unwrap()
                .unwrap(),
            b"3".to_vec()
        );
        assert!(f
            .store
            .get(REASSESS_REFS_TABLE, b"Elachistocleis ovalis")
            .unwrap()
            .is_none());
    }

    #[test]
    fn run_from_zero_bootstraps_and_matches_full_path() {
        let f = fixture("bootstrap");
        // Dirty records: the pipeline has real work to do.
        let dirty = vec![
            record("FNJV-1", "  hyla   faber "),
            record("FNJV-2", "scinax RUBER"),
            record("FNJV-3", "Elachistocleis ovalis"),
        ];
        f.catalog.insert_all(&dirty).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        let svc = service_at(2010);
        let p = pipeline();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let outcome = r.run(&p, &svc, None, None, &mut log, &mut queue).unwrap();
        // No seed: the whole feed replays, which IS the full run.
        assert_eq!(outcome.records_reprocessed, 3);
        assert!(outcome.field_changes > 0);

        // Stored records equal an in-memory full pipeline run…
        let mut log2 = CurationLog::new();
        let mut queue2 = ReviewQueue::new();
        let (full, _) = p.run(&dirty, &mut log2, &mut queue2);
        assert_eq!(f.catalog.all().unwrap(), full);
        // …and the ledger equals the full detector's facts.
        let full_report = OutdatedNameDetector::new(&svc, 3).check_collection(&full);
        assert_eq!(
            r.ledger().unwrap().totals(),
            (full_report.checked() as f64, full_report.current as f64)
        );

        // The run's own curated writes were skipped over: running again
        // changes nothing and consumes nothing.
        let again = r.run(&p, &svc, None, None, &mut log, &mut queue).unwrap();
        assert!(
            again.is_noop(),
            "second run saw {} entries",
            again.entries_consumed
        );
    }

    #[test]
    fn deleted_record_releases_its_name() {
        let f = fixture("delete");
        f.catalog.insert_all(&sample()).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        let svc = service_at(2010);
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&sample());
        r.seed(&report).unwrap();

        f.store.delete("records", b"FNJV-5").unwrap();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let outcome = r
            .run(&pipeline(), &svc, None, None, &mut log, &mut queue)
            .unwrap();
        assert_eq!(outcome.records_reprocessed, 1);
        let ledger = r.ledger().unwrap();
        assert_eq!(ledger.totals(), (2.0, 2.0));
        assert!(ledger.get("Elachistocleis ovalis").is_none());
        assert!(f
            .store
            .get(REASSESS_NAMES_TABLE, b"FNJV-5")
            .unwrap()
            .is_none());
    }

    #[test]
    fn run_at_pins_the_input_to_a_historical_lsn() {
        let f = fixture("at-lsn");
        f.catalog.insert_all(&sample()).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        let svc = service_at(2010);
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&sample());
        let seed_receipt = r.seed(&report).unwrap();

        // Journal a backbone swap AFTER the pin point.
        r.swap_backbone(&checklist(), 1965, 2010).unwrap();
        assert_eq!(r.journal_lag().unwrap(), 3);

        // Pinned at the seed commit, the swap's entries are invisible —
        // the run replays the feed exactly as it stood then: a no-op.
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let pinned = r
            .run_at(
                &pipeline(),
                &svc,
                None,
                None,
                Some(seed_receipt.lsn),
                &mut log,
                &mut queue,
            )
            .unwrap();
        assert!(pinned.is_noop(), "entries after the pin stay unconsumed");
        assert_eq!(pinned.input_lsn, seed_receipt.lsn);
        assert_eq!(r.journal_lag().unwrap(), 3, "cursor did not move");

        // An unpinned run then consumes them normally.
        let live = r
            .run(&pipeline(), &svc, None, None, &mut log, &mut queue)
            .unwrap();
        assert_eq!(live.entries_consumed, 3);
        assert!(live.input_lsn > seed_receipt.lsn);
    }

    #[test]
    fn explicit_since_replays_the_feed_idempotently() {
        let f = fixture("since");
        f.catalog.insert_all(&sample()).unwrap();
        let r = Reassessor::new(f.store.clone(), "records").unwrap();
        let svc = service_at(2010);
        let p = pipeline();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let first = r.run(&p, &svc, None, None, &mut log, &mut queue).unwrap();
        let ledger_after = r.ledger().unwrap();
        // Replaying from zero reconsiders everything but converges to the
        // identical state.
        let replay = r
            .run(&p, &svc, None, Some(0), &mut log, &mut queue)
            .unwrap();
        assert_eq!(replay.ledger_totals, first.ledger_totals);
        assert_eq!(r.ledger().unwrap(), ledger_after);
        assert_eq!(f.catalog.all().unwrap().len(), 5);
    }
}
