#![warn(missing_docs)]

//! `preserva-core` — the paper's architecture (Figure 1), wired end to
//! end over the substrates:
//!
//! ```text
//!  Process Designer ──> Workflow Adapter ──> quality-aware workflows
//!                                               │
//!  Workflow Repository <────────────────────────┤
//!                                               ▼
//!                              Scientific Workflow engine (preserva-wfms)
//!                                               │  trace
//!                                               ▼
//!                     Provenance Manager ──> OPM graph ──> Provenance Repository
//!                                               │                (preserva-storage)
//!  End User ──> Data Quality Manager <──────────┘
//!                    │  (a) provenance  (b) annotations  (c) external sources
//!                    ▼
//!            computed quality attributes + workflow trace
//! ```
//!
//! * [`preservation`] — the DPHEP preservation models of Table I
//! * [`roles`] — Process Designer and End User
//! * [`adapter`] — the Workflow Adapter (annotate without changing the
//!   workflow model)
//! * [`provenance_manager`] — trace → OPM → durable provenance repository
//! * [`quality_manager`] — the Data Quality Manager
//! * [`architecture`] — the [`architecture::Architecture`] facade that a
//!   deployment instantiates (Figure 3 is one such instance; see
//!   `examples/` and the bench harness)

pub mod adapter;
pub mod architecture;
pub mod capture_batcher;
pub mod collection;
pub mod preservation;
pub mod prov_index;
pub mod provenance_manager;
pub mod quality_manager;
pub mod reassess;
pub mod repository;
pub mod retrieval;
pub mod roles;
pub mod sharding;

pub use architecture::Architecture;
pub use collection::{Collection, CollectionError, CollectionOptions, MaintenanceReport};
pub use preservation::PreservationModel;
pub use reassess::{ReassessOutcome, Reassessor};
pub use repository::{CodecError, Repository, RepositoryError};
pub use roles::{EndUser, ProcessDesigner};
pub use sharding::{ShardedCatalog, ShardedIngest};
