//! The four DPHEP preservation models (paper Table I). The architecture
//! targets level 1: "provide additional documentation" — metadata is the
//! preserved surface through which data stays accessible.

use serde::{Deserialize, Serialize};

/// One of the four DPHEP preservation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PreservationModel {
    /// Level 1 — least complex.
    AdditionalDocumentation,
    /// Level 2.
    SimplifiedFormat,
    /// Level 3.
    AnalysisLevelSoftware,
    /// Level 4 — most complex.
    ReconstructionAndSimulation,
}

impl PreservationModel {
    /// All four, least to most complex.
    pub const ALL: [PreservationModel; 4] = [
        PreservationModel::AdditionalDocumentation,
        PreservationModel::SimplifiedFormat,
        PreservationModel::AnalysisLevelSoftware,
        PreservationModel::ReconstructionAndSimulation,
    ];

    /// Complexity level, 1–4.
    pub fn level(self) -> u8 {
        match self {
            PreservationModel::AdditionalDocumentation => 1,
            PreservationModel::SimplifiedFormat => 2,
            PreservationModel::AnalysisLevelSoftware => 3,
            PreservationModel::ReconstructionAndSimulation => 4,
        }
    }

    /// Table I's "Preservation Model" column.
    pub fn description(self) -> &'static str {
        match self {
            PreservationModel::AdditionalDocumentation => "Provide additional documentation",
            PreservationModel::SimplifiedFormat => "Preserve the data in a simplified format",
            PreservationModel::AnalysisLevelSoftware => {
                "Preserve the analysis level software and data format"
            }
            PreservationModel::ReconstructionAndSimulation => {
                "Preserve the reconstruction and simulation software and basic level data"
            }
        }
    }

    /// Table I's "Use Case" column.
    pub fn use_case(self) -> &'static str {
        match self {
            PreservationModel::AdditionalDocumentation => "Publication-related information search",
            PreservationModel::SimplifiedFormat => "Outreach, simple training analyses",
            PreservationModel::AnalysisLevelSoftware => {
                "Full scientific analysis based on existing reconstruction"
            }
            PreservationModel::ReconstructionAndSimulation => {
                "Full potential of the experimental data"
            }
        }
    }

    /// The model this paper's architecture targets.
    pub fn paper_target() -> PreservationModel {
        PreservationModel::AdditionalDocumentation
    }
}

/// Render Table I.
pub fn render_table1() -> String {
    let mut out = String::from("Table I — Preservation models for scientific data (from DPHEP)\n");
    out.push_str(&format!(
        "{:<5} {:<75} USE CASE\n",
        "LVL", "PRESERVATION MODEL"
    ));
    for m in PreservationModel::ALL {
        out.push_str(&format!(
            "{:<5} {:<75} {}\n",
            m.level(),
            m.description(),
            m.use_case()
        ));
    }
    out.push_str("(this architecture targets level 1)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_ordered_1_to_4() {
        let levels: Vec<u8> = PreservationModel::ALL.iter().map(|m| m.level()).collect();
        assert_eq!(levels, vec![1, 2, 3, 4]);
    }

    #[test]
    fn paper_targets_level_1() {
        assert_eq!(PreservationModel::paper_target().level(), 1);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table1();
        for m in PreservationModel::ALL {
            assert!(t.contains(m.description()));
            assert!(t.contains(m.use_case()));
        }
    }
}

/// A preservation plan for one dataset — §I: "scientists define which
/// data sets to preserve, and the desired preservation period (i.e., with
/// associated lifetime)". The plan also fixes the quality threshold below
/// which the dataset no longer serves its preservation model, from which
/// the re-assessment cadence follows via the decay model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreservationPlan {
    /// The dataset under preservation.
    pub dataset: String,
    /// Which DPHEP model the preservation targets.
    pub model: PreservationModel,
    /// Year preservation started.
    pub start_year: i32,
    /// Desired preservation period in years (`None` = indefinitely —
    /// "every kind of scientific data must be curated forever, in case it
    /// needs to be reused sometime").
    pub lifetime_years: Option<u32>,
    /// Minimum acceptable species-name accuracy before re-curation is due.
    pub quality_threshold: f64,
    /// Expected annual knowledge churn (fraction of names changing/year).
    pub annual_churn: f64,
}

impl PreservationPlan {
    /// Whether the plan still covers `year`.
    pub fn active_in(&self, year: i32) -> bool {
        if year < self.start_year {
            return false;
        }
        match self.lifetime_years {
            None => true,
            Some(n) => year < self.start_year + n as i32,
        }
    }

    /// Years between mandatory re-assessments, from the decay model.
    /// `None` when no churn is expected (nothing ever goes stale).
    pub fn reassessment_interval_years(&self) -> Option<f64> {
        preserva_quality::decay::years_until_recuration(self.annual_churn, self.quality_threshold)
    }

    /// Re-assessment years within the plan's lifetime, starting one
    /// interval after `start_year` (capped at 100 entries for indefinite
    /// plans).
    pub fn reassessment_schedule(&self) -> Vec<i32> {
        let Some(interval) = self.reassessment_interval_years() else {
            return Vec::new();
        };
        let interval = interval.max(1.0);
        let mut out = Vec::new();
        let mut at = self.start_year as f64 + interval;
        while out.len() < 100 {
            let year = at.floor() as i32;
            if !self.active_in(year) {
                break;
            }
            out.push(year);
            at += interval;
        }
        out
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    fn plan(lifetime: Option<u32>, churn: f64) -> PreservationPlan {
        PreservationPlan {
            dataset: "fnjv".into(),
            model: PreservationModel::AdditionalDocumentation,
            start_year: 1965,
            lifetime_years: lifetime,
            quality_threshold: 0.93,
            annual_churn: churn,
        }
    }

    #[test]
    fn lifetime_bounds_activity() {
        let p = plan(Some(50), 0.0015);
        assert!(!p.active_in(1964));
        assert!(p.active_in(1965));
        assert!(p.active_in(2014));
        assert!(!p.active_in(2015));
        let forever = plan(None, 0.0015);
        assert!(forever.active_in(3000));
    }

    #[test]
    fn schedule_matches_decay_model() {
        let p = plan(Some(100), 0.0015);
        let interval = p.reassessment_interval_years().unwrap();
        assert!((interval - 48.0).abs() < 2.0, "≈48 years at 0.15%/yr");
        let schedule = p.reassessment_schedule();
        assert_eq!(schedule.len(), 2); // 1965+48=2013, 2013+48=2061 < 2065
        assert_eq!(schedule[0], 2013); // the paper re-curated in 2013!
    }

    #[test]
    fn zero_churn_never_reassesses() {
        let p = plan(Some(50), 0.0);
        assert_eq!(p.reassessment_interval_years(), None);
        assert!(p.reassessment_schedule().is_empty());
    }

    #[test]
    fn high_churn_caps_at_100_entries_for_indefinite_plans() {
        let p = plan(None, 0.2);
        let schedule = p.reassessment_schedule();
        assert_eq!(schedule.len(), 100);
        // Strictly increasing years.
        assert!(schedule.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serde_roundtrip() {
        let p = plan(Some(50), 0.0015);
        let s = serde_json::to_string(&p).unwrap();
        let back: PreservationPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
