//! The `Collection` facade: one handle over a preserved collection.
//!
//! Before this module, every CLI command hand-wired
//! `Engine::open` → `TableStore` → catalog/provenance/reassessor/quality
//! with subtly different `EngineOptions` and metrics plumbing each time —
//! drift that showed up as `stats` and `metrics` disagreeing about how
//! the very same directory had been opened. A `Collection` owns the
//! whole subsystem graph, opened once from a single [`CollectionOptions`]
//! whose [`CollectionOptions::fingerprint`] makes the wiring auditable,
//! and gives it an explicit lifecycle:
//!
//! * [`Collection::open`] builds engine, table store, record catalog,
//!   provenance manager + cross-run index, reassessor, quality manager,
//!   and capture batcher against ONE obs registry.
//! * [`Collection::maintain`] is the background hook: flush pending
//!   group-commits, advance the provenance index, fold storage levels
//!   that grew past their bound.
//! * [`Collection::close`] flushes the [`CaptureBatcher`] and verifies
//!   no snapshot is still pinned — a leaked pin would silently floor the
//!   compaction fold horizon forever.
//!
//! Dropping a collection without closing it is tolerated (one-shot CLI
//! commands rely on it) but debug-asserts the same pin invariant, so a
//! test that leaks a `TableSnapshot` fails loudly instead of shipping a
//! server that can never fold.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use preserva_obs::Registry;
use preserva_search::{Indexer, SearchConfig, SearchError};
use preserva_storage::{CompactionOptions, Engine, EngineOptions, StorageError, TableStore};
use preserva_wfms::sink::SinkError;

use crate::capture_batcher::{BatcherOptions, CaptureBatcher};
use crate::prov_index::{ProvIndex, RefreshOutcome};
use crate::provenance_manager::{ProvenanceError, ProvenanceManager};
use crate::quality_manager::DataQualityManager;
use crate::reassess::{ReassessError, Reassessor};
use crate::retrieval::{CatalogError, RecordCatalog};

/// Default table the record catalog lives on.
pub const RECORDS_TABLE: &str = "records";

/// Everything that shapes how a collection opens. One value, one
/// fingerprint — commands that open the same directory with different
/// options are a bug this struct exists to expose.
#[derive(Clone)]
pub struct CollectionOptions {
    /// Fsync the WAL on commit.
    pub fsync: bool,
    /// Memtable bytes before a checkpoint flush.
    pub checkpoint_bytes: usize,
    /// Level-fold policy for the LSM tiers.
    pub compaction: CompactionOptions,
    /// Group-commit knobs for provenance capture.
    pub batcher: BatcherOptions,
    /// Table the record catalog indexes.
    pub records_table: String,
    /// Tokenizer fields, n-gram width and name field for the search
    /// layer.
    pub search: SearchConfig,
    /// Registry every subsystem reports into. `None` gives the
    /// collection a private registry (how the server isolates tenants);
    /// the CLI passes the process-global one.
    pub metrics: Option<Arc<Registry>>,
}

impl Default for CollectionOptions {
    fn default() -> Self {
        let engine = EngineOptions::default();
        CollectionOptions {
            fsync: engine.fsync,
            checkpoint_bytes: engine.checkpoint_bytes,
            compaction: engine.compaction,
            batcher: BatcherOptions::default(),
            records_table: RECORDS_TABLE.to_string(),
            search: SearchConfig::default(),
            metrics: None,
        }
    }
}

impl CollectionOptions {
    /// The engine-level slice of these options. Metrics are supplied by
    /// [`Collection::open`] so engine and managers share one registry.
    pub fn engine_options(&self, metrics: Arc<Registry>) -> EngineOptions {
        EngineOptions {
            fsync: self.fsync,
            checkpoint_bytes: self.checkpoint_bytes,
            metrics: Some(metrics),
            compaction: self.compaction.clone(),
        }
    }

    /// A stable, human-readable digest of every knob that affects how
    /// the engine treats the directory. Two commands that print
    /// different fingerprints for one store have drifted.
    pub fn fingerprint(&self) -> String {
        format!(
            "fsync={} checkpoint_bytes={} compaction.background={} \
             compaction.max_runs_per_level={} records_table={} \
             search.gram={} search.fields={}",
            self.fsync,
            self.checkpoint_bytes,
            self.compaction.background,
            self.compaction.max_runs_per_level,
            self.records_table,
            self.search.gram,
            self.search.fields.join(","),
        )
    }
}

/// Anything the lifecycle can trip over.
#[derive(Debug)]
pub enum CollectionError {
    /// Engine / table store failure.
    Storage(StorageError),
    /// Record catalog failure.
    Catalog(CatalogError),
    /// Reassessor failure.
    Reassess(ReassessError),
    /// Search index failure.
    Search(SearchError),
    /// Provenance index failure.
    Provenance(ProvenanceError),
    /// Capture batcher flush failure.
    Sink(SinkError),
    /// `close()` found snapshots still pinned; the collection refuses
    /// to report a clean shutdown while the fold horizon is floored.
    PinnedSnapshots(usize),
    /// Operation on a collection already closed.
    Closed,
}

impl fmt::Display for CollectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionError::Storage(e) => write!(f, "storage: {e}"),
            CollectionError::Catalog(e) => write!(f, "catalog: {e}"),
            CollectionError::Reassess(e) => write!(f, "reassess: {e}"),
            CollectionError::Search(e) => write!(f, "search: {e}"),
            CollectionError::Provenance(e) => write!(f, "provenance: {e}"),
            CollectionError::Sink(e) => write!(f, "capture flush: {e}"),
            CollectionError::PinnedSnapshots(n) => {
                write!(f, "close with {n} snapshot(s) still pinned")
            }
            CollectionError::Closed => write!(f, "collection already closed"),
        }
    }
}

impl std::error::Error for CollectionError {}

impl From<StorageError> for CollectionError {
    fn from(e: StorageError) -> Self {
        CollectionError::Storage(e)
    }
}
impl From<CatalogError> for CollectionError {
    fn from(e: CatalogError) -> Self {
        CollectionError::Catalog(e)
    }
}
impl From<ReassessError> for CollectionError {
    fn from(e: ReassessError) -> Self {
        CollectionError::Reassess(e)
    }
}
impl From<ProvenanceError> for CollectionError {
    fn from(e: ProvenanceError) -> Self {
        CollectionError::Provenance(e)
    }
}
impl From<SearchError> for CollectionError {
    fn from(e: SearchError) -> Self {
        CollectionError::Search(e)
    }
}
impl From<SinkError> for CollectionError {
    fn from(e: SinkError) -> Self {
        CollectionError::Sink(e)
    }
}

/// What one [`Collection::maintain`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Provenance-index refresh: journal entries consumed.
    pub index_entries_consumed: usize,
    /// Provenance-index refresh: runs newly indexed.
    pub runs_indexed: usize,
    /// Search-index run: journal entries consumed.
    pub search_entries_consumed: usize,
    /// Search-index run: records (re)indexed or removed.
    pub search_docs_updated: usize,
    /// Whether a storage compaction folded anything.
    pub compacted: bool,
}

/// One open preserved collection: the engine and every manager built on
/// it, sharing a directory, a registry, and a lifecycle.
pub struct Collection {
    dir: PathBuf,
    options: CollectionOptions,
    obs: Arc<Registry>,
    store: Arc<TableStore>,
    catalog: RecordCatalog,
    provenance: Arc<ProvenanceManager>,
    prov_index: ProvIndex,
    reassessor: Reassessor,
    search: Indexer,
    quality: Mutex<DataQualityManager>,
    batcher: Arc<CaptureBatcher>,
    closed: AtomicBool,
}

impl fmt::Debug for Collection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collection")
            .field("dir", &self.dir)
            .field("fingerprint", &self.options.fingerprint())
            .field("closed", &self.closed.load(Ordering::SeqCst))
            .finish()
    }
}

impl Collection {
    /// Open (or create) the collection at `dir`, building the full
    /// subsystem graph against one shared registry.
    pub fn open(dir: &Path, options: CollectionOptions) -> Result<Collection, CollectionError> {
        let obs = options
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let engine = Engine::open(dir, options.engine_options(obs.clone()))?;
        let store = Arc::new(TableStore::new(Arc::new(engine)));
        let catalog = RecordCatalog::open_on(store.clone(), &options.records_table)?;
        let provenance = Arc::new(ProvenanceManager::with_metrics(store.clone(), obs.clone()));
        let prov_index = ProvIndex::new(provenance.clone());
        let reassessor =
            Reassessor::with_metrics(store.clone(), &options.records_table, obs.clone())?;
        let search = Indexer::with_metrics(
            store.clone(),
            &options.records_table,
            options.search.clone(),
            obs.clone(),
        );
        let quality =
            DataQualityManager::new(store.clone(), provenance.clone()).with_metrics(obs.clone());
        let batcher = Arc::new(CaptureBatcher::with_options(
            provenance.clone(),
            options.batcher.clone(),
        ));
        // Info-style gauge: the fingerprint rides the exposition, so a
        // scrape (or the `metrics` command) can be compared against what
        // `stats` prints for the same directory.
        let fingerprint = options.fingerprint();
        obs.gauge_with(
            "preserva_collection_options_info",
            "Constant 1, labeled with the collection's option fingerprint.",
            &[("fingerprint", fingerprint.as_str())],
        )
        .set(1);
        Ok(Collection {
            dir: dir.to_path_buf(),
            options,
            obs,
            store,
            catalog,
            provenance,
            prov_index,
            reassessor,
            search,
            quality: Mutex::new(quality),
            batcher,
            closed: AtomicBool::new(false),
        })
    }

    /// Directory the collection lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this collection was opened with.
    pub fn options(&self) -> &CollectionOptions {
        &self.options
    }

    /// The registry every subsystem reports into.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The journaled table store (and, through it, the engine).
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    /// The storage engine itself.
    pub fn engine(&self) -> &Arc<Engine> {
        self.store.engine()
    }

    /// The record catalog over [`CollectionOptions::records_table`].
    pub fn catalog(&self) -> &RecordCatalog {
        &self.catalog
    }

    /// The provenance manager (capture + queries).
    pub fn provenance(&self) -> &Arc<ProvenanceManager> {
        &self.provenance
    }

    /// The cross-run provenance index trailing the journal.
    pub fn prov_index(&self) -> &ProvIndex {
        &self.prov_index
    }

    /// The incremental reassessor.
    pub fn reassessor(&self) -> &Reassessor {
        &self.reassessor
    }

    /// The journal-fed search indexer (inverted index + n-gram fuzzy
    /// candidates + facet counters). `maintain()` drives it; read
    /// through `search().reader()` against a pinned snapshot.
    pub fn search(&self) -> &Indexer {
        &self.search
    }

    /// The quality manager. Guarded: model/source registration mutates.
    pub fn quality(&self) -> std::sync::MutexGuard<'_, DataQualityManager> {
        self.quality.lock().expect("quality manager poisoned")
    }

    /// The group-commit capture batcher bound to this collection's
    /// provenance manager.
    pub fn batcher(&self) -> &Arc<CaptureBatcher> {
        &self.batcher
    }

    /// Current change-journal head seq.
    pub fn journal_head(&self) -> u64 {
        self.store.journal_head()
    }

    /// Snapshots currently pinned against the engine.
    pub fn snapshots_pinned(&self) -> usize {
        self.store.engine().snapshots_pinned()
    }

    /// Background maintenance: flush pending capture group-commits,
    /// advance the cross-run provenance index, and fold storage levels
    /// that outgrew the configured bound. Safe to call from a ticker
    /// thread while readers and writers proceed.
    pub fn maintain(&self) -> Result<MaintenanceReport, CollectionError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(CollectionError::Closed);
        }
        self.batcher.force_flush()?;
        let refresh: RefreshOutcome = self.prov_index.refresh()?;
        let search = self.search.run()?;
        let over_bound = self
            .engine()
            .runs_per_level()
            .iter()
            .any(|&(_, runs)| runs > self.options.compaction.max_runs_per_level);
        let compacted = if over_bound {
            self.engine().compact()?
        } else {
            false
        };
        Ok(MaintenanceReport {
            index_entries_consumed: refresh.entries_consumed,
            runs_indexed: refresh.runs_indexed,
            search_entries_consumed: search.entries_consumed,
            search_docs_updated: search.docs_indexed + search.docs_removed,
            compacted,
        })
    }

    /// Flush the capture batcher and verify the pin invariant. After a
    /// successful close the collection refuses further maintenance; a
    /// close that finds pinned snapshots errors (and still marks the
    /// collection closed — the damage is the caller's leak, not ours).
    pub fn close(&self) -> Result<(), CollectionError> {
        if self.closed.swap(true, Ordering::SeqCst) {
            return Ok(()); // idempotent
        }
        self.batcher.force_flush()?;
        let pinned = self.snapshots_pinned();
        if pinned != 0 {
            return Err(CollectionError::PinnedSnapshots(pinned));
        }
        Ok(())
    }
}

impl Drop for Collection {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::SeqCst) {
            // One-shot commands drop without closing; flush what we can
            // and insist on the pin invariant where it's cheap to check.
            let _ = self.batcher.force_flush();
            debug_assert_eq!(
                self.snapshots_pinned(),
                0,
                "collection at {:?} dropped with pinned snapshots; \
                 the compaction fold horizon is floored until restart",
                self.dir
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::record::Record;
    use preserva_metadata::value::Value;
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::{Processor, Workflow};
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use preserva_wfms::trace::ExecutionTrace;
    use serde_json::json;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("preserva-collection-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_of(id: &str) -> (Workflow, ExecutionTrace) {
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new(id, "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e = WfEngine::new(r, EngineConfig::default());
        let t = e.run(&w, &port("x", json!(1))).unwrap();
        (w, t)
    }

    #[test]
    fn open_close_roundtrip_preserves_records() {
        let dir = temp_dir("roundtrip");
        {
            let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
            c.catalog()
                .insert(
                    &Record::new("r1")
                        .with("species", Value::Text("Hyla faber".into()))
                        .with("state", Value::Text("São Paulo".into())),
                )
                .unwrap();
            c.close().unwrap();
        }
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        assert!(c.catalog().get("r1").unwrap().is_some());
        c.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_reports_leaked_pins_then_drop_is_quiet() {
        let dir = temp_dir("pins");
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        let snap = c.store().snapshot();
        match c.close() {
            Err(CollectionError::PinnedSnapshots(1)) => {}
            other => panic!("expected PinnedSnapshots(1), got {other:?}"),
        }
        drop(snap);
        // Already closed: drop must not re-assert, and close is idempotent.
        c.close().unwrap();
        drop(c);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_and_tracks_options() {
        let a = CollectionOptions::default();
        let b = CollectionOptions::default();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = CollectionOptions::default();
        c.fsync = !c.fsync;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_rides_the_metrics_exposition() {
        let dir = temp_dir("fp-metrics");
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        let text = c.metrics_registry().render_prometheus();
        let needle = format!(
            "preserva_collection_options_info{{fingerprint=\"{}\"}} 1",
            c.options().fingerprint()
        );
        assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        c.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintain_advances_the_prov_index() {
        let dir = temp_dir("maintain");
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        let (wf, trace) = run_of("wf-maint");
        c.provenance().capture(&wf, &trace).unwrap();
        let report = c.maintain().unwrap();
        assert_eq!(report.runs_indexed, 1, "{report:?}");
        assert_eq!(c.prov_index().lag().unwrap(), 0);
        c.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintain_drives_the_search_index() {
        let dir = temp_dir("search");
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        c.catalog()
            .insert(
                &Record::new("r1")
                    .with("species", Value::Text("Hyla faber".into()))
                    .with("state", Value::Text("São Paulo".into())),
            )
            .unwrap();
        assert!(c.search().journal_lag().unwrap() > 0);
        let report = c.maintain().unwrap();
        assert!(report.search_entries_consumed > 0, "{report:?}");
        assert_eq!(report.search_docs_updated, 1);
        assert_eq!(c.search().journal_lag().unwrap(), 0);

        let snap = c.store().snapshot();
        let reader = c.search().reader();
        let hits = reader.query(&snap, Some("species"), "faber", 10).unwrap();
        assert_eq!(hits.ids, ["r1"]);
        let hit = reader.fuzzy(&snap, "hyla fabre", 2).unwrap().unwrap();
        assert_eq!(hit.name, "Hyla faber");
        drop(snap);
        c.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_flushes_pending_captures() {
        let dir = temp_dir("flush");
        let opts = CollectionOptions {
            batcher: BatcherOptions {
                max_batch: 64,
                linger: std::time::Duration::from_secs(30),
            },
            ..CollectionOptions::default()
        };
        let c = Arc::new(Collection::open(&dir, opts).unwrap());
        let (wf, trace) = run_of("wf-flush");
        // A lone submitter with a long linger parks until someone
        // flushes; close() must be that someone.
        let submitter = {
            let c = c.clone();
            std::thread::spawn(move || {
                use preserva_wfms::sink::ProvenanceSink;
                c.batcher().record(&wf, &trace).unwrap();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        c.close().unwrap();
        submitter.join().unwrap();
        assert_eq!(c.provenance().run_ids().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_collection_refuses_maintenance() {
        let dir = temp_dir("closed");
        let c = Collection::open(&dir, CollectionOptions::default()).unwrap();
        c.close().unwrap();
        assert!(matches!(c.maintain(), Err(CollectionError::Closed)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
