//! Group-commit provenance capture: coalesce concurrent run completions
//! into one storage commit.
//!
//! Every [`ProvenanceManager::capture`] is one WAL commit frame and —
//! with `fsync` on — one fsync. Fine for a single curated workflow;
//! hopeless when a worker pool finishes dozens of runs per second. The
//! [`CaptureBatcher`] sits between the engine's sink calls and the
//! manager and applies the classic group-commit protocol: the first
//! arrival becomes the *leader*, lingers briefly while followers pile
//! into the queue, then commits the whole batch through
//! [`ProvenanceManager::capture_batch`] — one commit, one fsync,
//! amortized across N runs. Followers block until the leader hands them
//! their per-run verdict, so `record` keeps capture-on-completion
//! semantics: when it returns `Ok`, the run is durably captured.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use preserva_obs::{Counter, Histogram, Registry};
use preserva_wfms::model::Workflow;
use preserva_wfms::sink::{ProvenanceSink, SinkError};
use preserva_wfms::trace::ExecutionTrace;

use crate::provenance_manager::ProvenanceManager;

/// Tuning knobs for the group-commit window.
#[derive(Debug, Clone)]
pub struct BatcherOptions {
    /// Commit as soon as this many runs are queued, linger or not.
    pub max_batch: usize,
    /// How long a leader waits for followers before committing. Zero
    /// commits immediately (batches still form from already-queued runs).
    pub linger: Duration,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        BatcherOptions {
            max_batch: 64,
            linger: Duration::from_millis(2),
        }
    }
}

/// One queued run's rendezvous: the leader deposits the verdict, the
/// owning thread sleeps on the condvar until it lands.
struct Slot {
    verdict: Mutex<Option<Result<(), String>>>,
    cv: Condvar,
}

impl Slot {
    fn deliver(&self, result: Result<(), String>) {
        *self.verdict.lock().expect("slot lock") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<(), String> {
        let mut guard = self.verdict.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.cv.wait(guard).expect("slot lock");
        }
        guard.take().expect("verdict present")
    }
}

struct State {
    queue: Vec<(Workflow, ExecutionTrace, Arc<Slot>)>,
    /// Whether some thread is currently collecting/committing a batch.
    leader_active: bool,
}

/// A [`ProvenanceSink`] that group-commits captures through a shared
/// [`ProvenanceManager`]. Clone-free sharing via `Arc`; safe to use from
/// any number of engine worker threads.
pub struct CaptureBatcher {
    manager: Arc<ProvenanceManager>,
    opts: BatcherOptions,
    state: Mutex<State>,
    /// Signaled on every enqueue, so a lingering leader can close the
    /// batch early once `max_batch` is reached.
    arrivals: Condvar,
    batch_size: Arc<Histogram>,
    group_commits: Arc<Counter>,
}

impl std::fmt::Debug for CaptureBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureBatcher")
            .field("max_batch", &self.opts.max_batch)
            .field("linger", &self.opts.linger)
            .finish()
    }
}

impl CaptureBatcher {
    /// Wrap a manager with default batching knobs, reporting batch-size
    /// metrics into the manager's registry.
    pub fn new(manager: Arc<ProvenanceManager>) -> Self {
        Self::with_options(manager, BatcherOptions::default())
    }

    /// Wrap a manager with explicit knobs.
    pub fn with_options(manager: Arc<ProvenanceManager>, opts: BatcherOptions) -> Self {
        let reg: &Arc<Registry> = manager.metrics_registry();
        let batch_size = reg.histogram(
            "preserva_prov_capture_batch_size",
            "Runs coalesced per provenance group commit.",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
        );
        let group_commits = reg.counter(
            "preserva_prov_group_commits_total",
            "Provenance group commits (each one storage commit, any batch size).",
        );
        CaptureBatcher {
            manager,
            opts: BatcherOptions {
                max_batch: opts.max_batch.max(1),
                ..opts
            },
            state: Mutex::new(State {
                queue: Vec::new(),
                leader_active: false,
            }),
            arrivals: Condvar::new(),
            batch_size,
            group_commits,
        }
    }

    /// The wrapped manager.
    pub fn manager(&self) -> &Arc<ProvenanceManager> {
        &self.manager
    }

    /// Commit `batch` through the manager and deliver per-run verdicts.
    fn commit_batch(&self, batch: Vec<(Workflow, ExecutionTrace, Arc<Slot>)>) {
        if batch.is_empty() {
            return;
        }
        self.batch_size.observe(batch.len() as f64);
        self.group_commits.inc();
        let runs: Vec<(&Workflow, &ExecutionTrace)> =
            batch.iter().map(|(w, t, _)| (w, t)).collect();
        match self.manager.capture_many(&runs) {
            Ok(results) => {
                for ((_, _, slot), result) in batch.iter().zip(results) {
                    slot.deliver(result.map(|_| ()).map_err(|e| e.to_string()));
                }
            }
            // Whole-batch failure (the shared commit itself): everyone
            // gets the storage error.
            Err(e) => {
                let msg = e.to_string();
                for (_, _, slot) in &batch {
                    slot.deliver(Err(msg.clone()));
                }
            }
        }
    }

    /// Enqueue one run and drive the group-commit protocol. Blocks until
    /// the run's batch is durably committed (or refused) and returns the
    /// per-run verdict.
    fn submit(&self, workflow: &Workflow, trace: &ExecutionTrace) -> Result<(), String> {
        let slot = Arc::new(Slot {
            verdict: Mutex::new(None),
            cv: Condvar::new(),
        });
        let lead = {
            let mut state = self.state.lock().expect("batcher lock");
            state
                .queue
                .push((workflow.clone(), trace.clone(), slot.clone()));
            self.arrivals.notify_all();
            if state.leader_active {
                false
            } else {
                state.leader_active = true;
                true
            }
        };
        if !lead {
            return slot.wait();
        }
        // Leader: linger for followers, then drain the queue batch by
        // batch. Leadership is held across the commits, so runs arriving
        // while a batch fsyncs pile up for the next one — that pile-up,
        // not the linger, is what forms batches under load.
        let deadline = Instant::now() + self.opts.linger;
        let mut state = self.state.lock().expect("batcher lock");
        loop {
            let now = Instant::now();
            if state.queue.len() >= self.opts.max_batch || now >= deadline {
                break;
            }
            // A concurrent flush may steal and commit the queue
            // (delivering our verdict) — stop lingering if so.
            if slot.verdict.lock().expect("slot lock").is_some() {
                break;
            }
            let (guard, timeout) = self
                .arrivals
                .wait_timeout(state, deadline - now)
                .expect("batcher lock");
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        loop {
            let take = state.queue.len().min(self.opts.max_batch);
            if take == 0 {
                // Queue empty and leadership released under one lock, so
                // no arrival can slip in as a leaderless follower.
                state.leader_active = false;
                break;
            }
            let batch: Vec<_> = state.queue.drain(..take).collect();
            drop(state);
            self.commit_batch(batch);
            state = self.state.lock().expect("batcher lock");
        }
        drop(state);
        slot.wait()
    }

    /// Force any queued runs to storage now, regardless of linger. Used
    /// by the engine when a wave of pooled runs drains, and safe to call
    /// concurrently with in-flight records.
    pub fn force_flush(&self) -> Result<(), SinkError> {
        let batch = {
            let mut state = self.state.lock().expect("batcher lock");
            std::mem::take(&mut state.queue)
        };
        self.commit_batch(batch);
        // Wake a lingering leader so it notices its batch was taken.
        self.arrivals.notify_all();
        Ok(())
    }
}

impl ProvenanceSink for CaptureBatcher {
    fn record(&self, workflow: &Workflow, trace: &ExecutionTrace) -> Result<(), SinkError> {
        self.submit(workflow, trace).map_err(SinkError::new)
    }

    fn flush(&self) -> Result<(), SinkError> {
        self.force_flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_storage::table::TableStore;
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::Processor;
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use serde_json::json;

    fn manager(name: &str) -> Arc<ProvenanceManager> {
        let dir =
            std::env::temp_dir().join(format!("preserva-batcher-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        Arc::new(ProvenanceManager::new(store))
    }

    fn run_one() -> (Workflow, ExecutionTrace) {
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new("w", "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e = WfEngine::new(r, EngineConfig::default());
        let t = e.run(&w, &port("x", json!(1))).unwrap();
        (w, t)
    }

    #[test]
    fn concurrent_records_coalesce_into_few_commits() {
        let pm = manager("coalesce");
        let store = pm.store().clone();
        let batcher = Arc::new(CaptureBatcher::with_options(
            pm.clone(),
            BatcherOptions {
                max_batch: 64,
                linger: Duration::from_millis(50),
            },
        ));
        let runs: Vec<(Workflow, ExecutionTrace)> = (0..16).map(|_| run_one()).collect();
        let before = store.engine().stats().commits;
        std::thread::scope(|scope| {
            for (w, t) in &runs {
                let batcher = batcher.clone();
                scope.spawn(move || batcher.record(w, t).unwrap());
            }
        });
        let commits = store.engine().stats().commits - before;
        assert!(
            commits < 16,
            "16 concurrent records must group-commit, saw {commits} commits"
        );
        for (_, t) in &runs {
            assert!(pm.load_graph(&t.run_id).is_ok());
            assert!(pm.load_trace(&t.run_id).is_ok());
        }
        let text = pm.metrics_registry().render_prometheus();
        assert!(text.contains("preserva_prov_capture_batch_size"), "{text}");
        assert!(text.contains("preserva_prov_group_commits_total"), "{text}");
    }

    #[test]
    fn flush_closes_a_lingering_batch_early() {
        let pm = manager("flush");
        let batcher = Arc::new(CaptureBatcher::with_options(
            pm.clone(),
            BatcherOptions {
                max_batch: 64,
                linger: Duration::from_secs(30),
            },
        ));
        let (w, t) = run_one();
        let started = Instant::now();
        let handle = {
            let batcher = batcher.clone();
            let (w, t) = (w.clone(), t.clone());
            std::thread::spawn(move || batcher.record(&w, &t))
        };
        // Give the recorder a moment to enqueue, then force the commit.
        while pm.load_trace(&t.run_id).is_err() {
            std::thread::sleep(Duration::from_millis(1));
            batcher.flush().unwrap();
            if started.elapsed() > Duration::from_secs(10) {
                panic!("flush never surfaced the queued run");
            }
        }
        handle.join().unwrap().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "flush must beat the 30s linger"
        );
    }

    #[test]
    fn per_run_refusals_surface_through_the_batcher() {
        let pm = manager("refusal");
        let batcher = CaptureBatcher::with_options(
            pm.clone(),
            BatcherOptions {
                max_batch: 4,
                linger: Duration::from_millis(0),
            },
        );
        let (w, t) = run_one();
        batcher.record(&w, &t).unwrap();
        let (_, mut conflict) = run_one();
        conflict.run_id = t.run_id.clone();
        let err = batcher.record(&w, &conflict).unwrap_err();
        assert!(err.to_string().contains("already captured"), "{err}");
        // Identical re-capture stays idempotent through the batcher.
        batcher.record(&w, &t).unwrap();
    }
}
