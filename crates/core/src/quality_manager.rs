//! The Data Quality Manager: "generates quality information from (a) the
//! provenance information stored by the Provenance Manager, (b) the
//! quality attributes added to workflows by the Workflow Adapter and
//! (c) external data sources. Quality metrics are computed as defined by
//! end users" (§III).
//!
//! Assessment results are published in the paper's two formats: the
//! workflow trace (format i, joined by run id) and computed quality
//! attributes (format ii, a [`QualityReport`] persisted in the
//! repository).

use std::collections::BTreeMap;
use std::sync::Arc;

use preserva_quality::metric::AssessmentContext;
use preserva_quality::model::QualityModel;
use preserva_quality::report::QualityReport;
use preserva_quality::sources::SourceRegistry;
use preserva_storage::table::TableStore;
use preserva_wfms::annotation;
use preserva_wfms::model::Workflow;

use crate::provenance_manager::{ProvenanceError, ProvenanceManager};
use crate::repository::{CodecError, Repository, RepositoryError};
use crate::roles::EndUser;

/// Table holding published quality reports, keyed by `run_id/subject`.
pub const REPORTS_TABLE: &str = "quality_reports";

/// Errors from the quality manager.
#[derive(Debug)]
pub enum QualityManagerError {
    /// Provenance lookup failed.
    Provenance(ProvenanceError),
    /// Underlying storage failure.
    Storage(preserva_storage::StorageError),
    /// A stored report failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for QualityManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QualityManagerError::Provenance(e) => write!(f, "quality manager: {e}"),
            QualityManagerError::Storage(e) => write!(f, "quality manager storage: {e}"),
            QualityManagerError::Codec(e) => write!(f, "quality manager codec: {e}"),
        }
    }
}

impl std::error::Error for QualityManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QualityManagerError::Provenance(e) => Some(e),
            QualityManagerError::Storage(e) => Some(e),
            QualityManagerError::Codec(e) => Some(e),
        }
    }
}

impl From<ProvenanceError> for QualityManagerError {
    fn from(e: ProvenanceError) -> Self {
        QualityManagerError::Provenance(e)
    }
}

impl From<preserva_storage::StorageError> for QualityManagerError {
    fn from(e: preserva_storage::StorageError) -> Self {
        QualityManagerError::Storage(e)
    }
}

impl From<RepositoryError> for QualityManagerError {
    fn from(e: RepositoryError) -> Self {
        match e {
            RepositoryError::Storage(e) => QualityManagerError::Storage(e),
            RepositoryError::Codec(e) => QualityManagerError::Codec(e),
        }
    }
}

fn report_key(report: &QualityReport) -> String {
    format!(
        "{}/{}",
        report.run_id.as_deref().unwrap_or("-"),
        report.subject
    )
}

/// The manager: per-end-user quality models over the shared repositories.
pub struct DataQualityManager {
    reports: Repository<QualityReport>,
    provenance: Arc<ProvenanceManager>,
    /// Registered models, keyed by end-user name ("quality can be assessed
    /// differently by distinct sets of users").
    models: BTreeMap<String, QualityModel>,
    /// External semantic data sources consulted during assessment
    /// (input c of §III).
    sources: SourceRegistry,
    /// Metrics registry assessments report into (private by default).
    obs: Arc<preserva_obs::Registry>,
}

impl std::fmt::Debug for DataQualityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataQualityManager")
            .field("users", &self.models.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl DataQualityManager {
    /// Create over the shared repositories, with a private metrics
    /// registry. Use [`with_metrics`](Self::with_metrics) to report
    /// evaluation timings into a shared one.
    pub fn new(store: Arc<TableStore>, provenance: Arc<ProvenanceManager>) -> Self {
        DataQualityManager {
            reports: Repository::new(store, REPORTS_TABLE, report_key),
            provenance,
            models: BTreeMap::new(),
            sources: SourceRegistry::new(),
            obs: Arc::new(preserva_obs::Registry::new()),
        }
    }

    /// Report metric-evaluation timings to `registry` (builder style).
    pub fn with_metrics(mut self, registry: Arc<preserva_obs::Registry>) -> Self {
        self.obs = registry;
        self
    }

    /// The metrics registry assessments report into.
    pub fn metrics_registry(&self) -> &Arc<preserva_obs::Registry> {
        &self.obs
    }

    /// Register an external semantic data source; its facts about the
    /// assessed subject are merged into every assessment context
    /// (caller-supplied facts still take precedence).
    pub fn register_source(
        &mut self,
        source: std::sync::Arc<dyn preserva_quality::sources::ExternalSource>,
    ) {
        self.sources.register(source);
    }

    /// The registered external sources.
    pub fn sources(&self) -> &SourceRegistry {
        &self.sources
    }

    /// An end user registers the dimensions/metrics they care about.
    pub fn register_model(&mut self, user: &EndUser, model: QualityModel) {
        self.models.insert(user.name.clone(), model);
    }

    /// The model registered for a user, if any.
    pub fn model_for(&self, user: &EndUser) -> Option<&QualityModel> {
        self.models.get(&user.name)
    }

    /// Build the assessment context for a stored run: provenance from the
    /// repository (input a), the workflow's quality annotations (input b)
    /// — both processor- and workflow-level, later assertions overriding —
    /// and caller-supplied external facts (input c).
    pub fn context_for_run(
        &self,
        run_id: &str,
        workflow: &Workflow,
        external_facts: &BTreeMap<String, f64>,
    ) -> Result<AssessmentContext, QualityManagerError> {
        let graph = self.provenance.load_graph(run_id)?;
        let trace = self.provenance.load_trace(run_id)?;
        let mut ctx = AssessmentContext::new().with_provenance(graph);
        let mut assertions = workflow.annotations.clone();
        for p in &workflow.processors {
            assertions.extend(p.annotations.iter().cloned());
        }
        for (k, v) in annotation::merged_quality(&assertions) {
            ctx = ctx.with_annotation(&k, v);
        }
        ctx = ctx.with_fact("observed_availability", trace.observed_availability());
        ctx = ctx.with_fact("total_retries", trace.total_retries as f64);
        for (k, v) in external_facts {
            ctx = ctx.with_fact(k, *v);
        }
        Ok(ctx)
    }

    /// Assess a subject for a user against a stored run and publish the
    /// report.
    pub fn assess_run(
        &self,
        user: &EndUser,
        subject: &str,
        run_id: &str,
        workflow: &Workflow,
        external_facts: &BTreeMap<String, f64>,
    ) -> Result<QualityReport, QualityManagerError> {
        let model = self
            .models
            .get(&user.name)
            .cloned()
            .unwrap_or_else(QualityModel::case_study_default);
        let mut ctx = self.context_for_run(run_id, workflow, external_facts)?;
        // Consult external semantic sources; facts supplied explicitly by
        // the caller (already in ctx) win over source-provided ones.
        for (k, v) in self.sources.facts(subject) {
            ctx.facts.entry(k).or_insert(v);
        }
        let mut report = model.assess_observed(subject, &ctx, &self.obs);
        report.run_id = Some(run_id.to_string());
        self.publish(&report)?;
        Ok(report)
    }

    /// Persist a report (keyed by `run_id/subject`).
    pub fn publish(&self, report: &QualityReport) -> Result<(), QualityManagerError> {
        self.reports.save(report)?;
        Ok(())
    }

    /// Load every published report.
    pub fn reports(&self) -> Result<Vec<QualityReport>, QualityManagerError> {
        Ok(self.reports.load_all()?)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use preserva_quality::dimension::Dimension;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_wfms::annotation::AnnotationAssertion;
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::Processor;
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use serde_json::json;

    pub(crate) fn setup(name: &str) -> (Arc<TableStore>, Arc<ProvenanceManager>, Workflow, String) {
        let dir =
            std::env::temp_dir().join(format!("preserva-dqm-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        let pm = Arc::new(ProvenanceManager::new(store.clone()));

        let mut r = ServiceRegistry::new();
        r.register_fn("check", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let mut w = Workflow::new("wf-col", "Outdated Species Name Detection")
            .with_input("names")
            .with_output("report")
            .with_processor(Processor::service("col", "check", &["in"], &["out"]))
            .link_input("names", "col", "in")
            .link_output("col", "out", "report");
        w.processor_mut("col")
            .unwrap()
            .annotations
            .push(AnnotationAssertion::quality(
                &[("reputation", 1.0), ("availability", 0.9)],
                "2013-11-12",
                "expert",
            ));
        let engine = WfEngine::new(r, EngineConfig::default());
        let trace = engine
            .run(&w, &port("names", json!(["Hyla faber"])))
            .unwrap();
        pm.capture(&w, &trace).unwrap();
        (store, pm, w, trace.run_id)
    }

    #[test]
    fn assess_run_reproduces_case_study_numbers() {
        let (store, pm, w, run_id) = setup("case");
        let dqm = DataQualityManager::new(store, pm);
        let user = EndUser::new("Dr. Toledo", "IB/Unicamp");
        let mut facts = BTreeMap::new();
        facts.insert("names_checked".to_string(), 1929.0);
        facts.insert("names_correct".to_string(), 1795.0);
        let report = dqm
            .assess_run(&user, "fnjv-species-names", &run_id, &w, &facts)
            .unwrap();
        let acc = report.score(&Dimension::accuracy()).unwrap();
        assert!((acc - 0.9305).abs() < 0.001);
        assert_eq!(report.score(&Dimension::reputation()), Some(1.0));
        assert_eq!(report.score(&Dimension::availability()), Some(0.9));
        assert_eq!(report.run_id.as_deref(), Some(run_id.as_str()));
    }

    #[test]
    fn reports_are_published_and_listable() {
        let (store, pm, w, run_id) = setup("publish");
        let dqm = DataQualityManager::new(store, pm);
        let user = EndUser::new("u", "a");
        dqm.assess_run(&user, "subject", &run_id, &w, &BTreeMap::new())
            .unwrap();
        let reports = dqm.reports().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].subject, "subject");
    }

    #[test]
    fn per_user_models_respected() {
        let (store, pm, w, run_id) = setup("peruser");
        let mut dqm = DataQualityManager::new(store, pm);
        let user = EndUser::new("custom", "a");
        dqm.register_model(
            &user,
            QualityModel::new().with_metric(preserva_quality::metric::Metric::from_annotation(
                "only-reputation",
                Dimension::reputation(),
                "reputation",
            )),
        );
        let report = dqm
            .assess_run(&user, "s", &run_id, &w, &BTreeMap::new())
            .unwrap();
        assert_eq!(report.attributes.len(), 1);
        assert_eq!(report.score(&Dimension::reputation()), Some(1.0));
        assert!(dqm.model_for(&user).is_some());
    }

    #[test]
    fn assessments_report_into_a_shared_registry() {
        let (store, pm, w, run_id) = setup("qm-metrics");
        let obs = Arc::new(preserva_obs::Registry::new());
        let dqm = DataQualityManager::new(store, pm).with_metrics(obs.clone());
        let user = EndUser::new("u", "a");
        let mut facts = BTreeMap::new();
        facts.insert("names_checked".to_string(), 1929.0);
        facts.insert("names_correct".to_string(), 1795.0);
        dqm.assess_run(&user, "fnjv", &run_id, &w, &facts).unwrap();
        dqm.assess_run(&user, "fnjv", &run_id, &w, &facts).unwrap();
        let text = obs.render_prometheus();
        assert!(
            text.contains("preserva_quality_assessments_total 2"),
            "{text}"
        );
        assert!(text.contains("preserva_quality_evaluation_seconds_count 2"));
        assert!(text.contains("preserva_quality_metric_evaluation_seconds"));
        assert!(Arc::ptr_eq(dqm.metrics_registry(), &obs));
    }

    #[test]
    fn unknown_run_is_error() {
        let (store, pm, w, _) = setup("unknownrun");
        let dqm = DataQualityManager::new(store, pm);
        let user = EndUser::new("u", "a");
        assert!(dqm
            .assess_run(&user, "s", "run-999999", &w, &BTreeMap::new())
            .is_err());
    }

    #[test]
    fn observed_availability_fact_present() {
        let (store, pm, w, run_id) = setup("observed");
        let dqm = DataQualityManager::new(store, pm);
        let ctx = dqm.context_for_run(&run_id, &w, &BTreeMap::new()).unwrap();
        assert_eq!(ctx.facts.get("observed_availability"), Some(&1.0));
        assert!(ctx.provenance.is_some());
        assert_eq!(ctx.annotations.get("reputation"), Some(&1.0));
    }
}

#[cfg(test)]
mod source_tests {
    use super::*;
    use preserva_quality::sources::StaticSource;
    use std::sync::Arc as StdArc;

    // Reuse the main test setup.
    use super::tests::setup;

    #[test]
    fn external_sources_feed_assessment() {
        let (store, pm, w, run_id) = setup("sources");
        let mut dqm = DataQualityManager::new(store, pm);
        dqm.register_source(StdArc::new(
            StaticSource::new("catalogue-stats")
                .with_fact("fnjv", "names_checked", 1929.0)
                .with_fact("fnjv", "names_correct", 1795.0),
        ));
        let user = EndUser::new("u", "a");
        // No caller-supplied facts: accuracy must come from the source.
        let report = dqm
            .assess_run(&user, "fnjv", &run_id, &w, &BTreeMap::new())
            .unwrap();
        let acc = report
            .score(&preserva_quality::dimension::Dimension::accuracy())
            .unwrap();
        assert!((acc - 0.9305).abs() < 0.001);
        assert_eq!(dqm.sources().names(), vec!["catalogue-stats"]);
    }

    #[test]
    fn caller_facts_override_sources() {
        let (store, pm, w, run_id) = setup("override");
        let mut dqm = DataQualityManager::new(store, pm);
        dqm.register_source(StdArc::new(
            StaticSource::new("stale")
                .with_fact("fnjv", "names_checked", 100.0)
                .with_fact("fnjv", "names_correct", 10.0),
        ));
        let user = EndUser::new("u", "a");
        let mut facts = BTreeMap::new();
        facts.insert("names_checked".to_string(), 100.0);
        facts.insert("names_correct".to_string(), 93.0);
        let report = dqm.assess_run(&user, "fnjv", &run_id, &w, &facts).unwrap();
        assert_eq!(
            report.score(&preserva_quality::dimension::Dimension::accuracy()),
            Some(0.93)
        );
    }
}
