//! The two user roles of §III.

use serde::{Deserialize, Serialize};

/// "An expert responsible for specifying some workflow", who embeds
/// quality-extraction functionality via the Workflow Adapter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessDesigner {
    /// Designer's name (recorded as annotation creator).
    pub name: String,
    /// Institutional affiliation.
    pub affiliation: String,
}

impl ProcessDesigner {
    /// Create a designer identity.
    pub fn new(name: &str, affiliation: &str) -> Self {
        ProcessDesigner {
            name: name.to_string(),
            affiliation: affiliation.to_string(),
        }
    }
}

/// "A scientist who is interested in the data resulting from workflow
/// execution", who defines dimensions of interest via the Data Quality
/// Manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndUser {
    /// Scientist's name (keys their registered quality model).
    pub name: String,
    /// Institutional affiliation.
    pub affiliation: String,
}

impl EndUser {
    /// Create an end-user identity.
    pub fn new(name: &str, affiliation: &str) -> Self {
        EndUser {
            name: name.to_string(),
            affiliation: affiliation.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_roundtrip() {
        let d = ProcessDesigner::new("Dr. Cugler", "IC/Unicamp");
        let u = EndUser::new("Dr. Toledo", "IB/Unicamp");
        assert_eq!(d.name, "Dr. Cugler");
        let s = serde_json::to_string(&u).unwrap();
        let back: EndUser = serde_json::from_str(&s).unwrap();
        assert_eq!(u, back);
    }
}
