//! The Provenance Manager: "extracts provenance information from data and
//! workflows, storing such information in the Data Provenance Repository"
//! (§III). It merges Taverna-style annotated workflows with execution
//! logs into OPM graphs (as §IV-C describes) and persists both through
//! the storage engine.

use std::sync::Arc;
use std::time::Instant;

use preserva_obs::{Counter, Histogram, Registry};
use preserva_opm::graph::OpmGraph;
use preserva_opm::serialize as opm_ser;
use preserva_opm::validate as opm_validate;
use preserva_storage::table::{TableStore, WriteSession};
use preserva_storage::StorageError;
use preserva_wfms::model::Workflow;
use preserva_wfms::opm_export;
use preserva_wfms::sink::{ProvenanceSink, SinkError};
use preserva_wfms::trace::ExecutionTrace;

use crate::repository::{CodecError, Repository, RepositoryError};

/// Table holding OPM graphs, keyed by run id.
pub const PROVENANCE_TABLE: &str = "provenance_graphs";
/// Table holding raw execution traces, keyed by run id.
pub const TRACES_TABLE: &str = "traces";

/// Errors from the provenance manager.
#[derive(Debug)]
pub enum ProvenanceError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// The merged graph failed OPM legality validation.
    IllegalGraph(String),
    /// The requested run is not in the repository.
    UnknownRun(String),
    /// A *different* trace is already stored under this run id. Silently
    /// overwriting it would destroy provenance; the id-minting side is
    /// broken and must be fixed, not papered over.
    DuplicateRun(String),
    /// A stored graph or trace failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvenanceError::Storage(e) => write!(f, "provenance storage: {e}"),
            ProvenanceError::IllegalGraph(m) => write!(f, "illegal OPM graph: {m}"),
            ProvenanceError::UnknownRun(r) => write!(f, "unknown run {r:?}"),
            ProvenanceError::DuplicateRun(r) => write!(
                f,
                "run {r:?} already captured with a different trace; refusing to overwrite"
            ),
            ProvenanceError::Codec(e) => write!(f, "provenance codec: {e}"),
        }
    }
}

impl std::error::Error for ProvenanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProvenanceError::Storage(e) => Some(e),
            ProvenanceError::Codec(e) => Some(e),
            ProvenanceError::IllegalGraph(_)
            | ProvenanceError::UnknownRun(_)
            | ProvenanceError::DuplicateRun(_) => None,
        }
    }
}

impl From<StorageError> for ProvenanceError {
    fn from(e: StorageError) -> Self {
        ProvenanceError::Storage(e)
    }
}

impl From<CodecError> for ProvenanceError {
    fn from(e: CodecError) -> Self {
        ProvenanceError::Codec(e)
    }
}

impl From<RepositoryError> for ProvenanceError {
    fn from(e: RepositoryError) -> Self {
        match e {
            RepositoryError::Storage(e) => ProvenanceError::Storage(e),
            RepositoryError::Codec(e) => ProvenanceError::Codec(e),
        }
    }
}

/// Provenance-capture instruments, resolved once at construction so the
/// capture path touches only atomic handles.
struct ProvMetrics {
    captures: Arc<Counter>,
    duplicate_runs: Arc<Counter>,
    capture_seconds: Arc<Histogram>,
    graph_nodes: Arc<Histogram>,
    graph_bytes: Arc<Histogram>,
    trace_steps: Arc<Histogram>,
}

impl ProvMetrics {
    fn resolve(reg: &Arc<Registry>) -> ProvMetrics {
        ProvMetrics {
            captures: reg.counter(
                "preserva_provenance_captures_total",
                "Provenance captures persisted (graph + trace committed).",
            ),
            duplicate_runs: reg.counter(
                "preserva_provenance_duplicate_runs_total",
                "Capture attempts refused because a different trace already \
                 owned the run id.",
            ),
            capture_seconds: reg.latency_histogram(
                "preserva_provenance_capture_seconds",
                "Latency of provenance capture (merge, validate, commit).",
            ),
            graph_nodes: reg.histogram(
                "preserva_provenance_graph_nodes",
                "Node count (artifacts + processes + agents) of captured OPM graphs.",
                &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
            graph_bytes: reg.size_histogram(
                "preserva_provenance_graph_bytes",
                "Serialized size of captured OPM graphs.",
            ),
            trace_steps: reg.histogram(
                "preserva_provenance_trace_steps",
                "Processor invocations recorded in captured execution traces.",
                &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
        }
    }
}

/// The manager, over a shared table store. OPM graphs are stored in the
/// custom OPM-JSON interchange format (raw bytes); traces go through a
/// typed [`Repository`].
pub struct ProvenanceManager {
    store: Arc<TableStore>,
    traces: Repository<ExecutionTrace>,
    obs: Arc<Registry>,
    metrics: ProvMetrics,
}

impl std::fmt::Debug for ProvenanceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenanceManager").finish()
    }
}

impl ProvenanceManager {
    /// Create over a store, with a private metrics registry. Use
    /// [`with_metrics`](Self::with_metrics) to report into a shared one.
    pub fn new(store: Arc<TableStore>) -> Self {
        Self::build(store, Arc::new(Registry::new()))
    }

    /// Create over a store, reporting capture metrics and trace events to
    /// `registry` (typically shared with the storage engine and WFMS).
    pub fn with_metrics(store: Arc<TableStore>, registry: Arc<Registry>) -> Self {
        Self::build(store, registry)
    }

    fn build(store: Arc<TableStore>, registry: Arc<Registry>) -> Self {
        let traces = Repository::new(store.clone(), TRACES_TABLE, |t: &ExecutionTrace| {
            t.run_id.clone()
        });
        let metrics = ProvMetrics::resolve(&registry);
        ProvenanceManager {
            store,
            traces,
            obs: registry,
            metrics,
        }
    }

    /// The metrics registry this manager reports to.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Capture a run: merge the annotated workflow with the execution
    /// trace into an OPM graph, validate it, persist graph + trace in ONE
    /// storage commit — recovery never sees a graph without its trace, or
    /// the reverse. Returns the graph.
    ///
    /// A run id may be captured at most once: re-capturing the identical
    /// trace is an idempotent no-op, but a *different* trace under an
    /// existing id is refused with [`ProvenanceError::DuplicateRun`] —
    /// overwriting stored provenance would be a silent preservation
    /// failure (and means run-id minting is broken upstream).
    pub fn capture(
        &self,
        workflow: &Workflow,
        trace: &ExecutionTrace,
    ) -> Result<OpmGraph, ProvenanceError> {
        let started = Instant::now();
        if let Some(existing) = self.traces.get(&trace.run_id)? {
            let same = serde_json::to_string(&existing)
                .and_then(|a| serde_json::to_string(trace).map(|b| a == b))
                .unwrap_or(false);
            if !same {
                self.metrics.duplicate_runs.inc();
                self.obs.trace(
                    "provenance",
                    format!(
                        "refused duplicate capture of run {} (different trace)",
                        trace.run_id
                    ),
                );
                return Err(ProvenanceError::DuplicateRun(trace.run_id.clone()));
            }
            // Identical re-capture (e.g. a retried sink call): keep the
            // stored row, just rebuild and return the graph.
            return Ok(opm_export::export(workflow, trace));
        }
        let graph = opm_export::export(workflow, trace);
        let report = opm_validate::validate(&graph);
        if !report.is_legal() {
            return Err(ProvenanceError::IllegalGraph(
                report
                    .errors
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let serialized = opm_ser::to_json(&graph);
        let mut session = self.store.session();
        session.put(
            PROVENANCE_TABLE,
            trace.run_id.as_bytes(),
            serialized.as_bytes(),
        )?;
        self.traces.stage(&mut session, trace)?;
        session.commit()?;
        self.metrics.captures.inc();
        self.metrics.graph_nodes.observe(graph.node_count() as f64);
        self.metrics.graph_bytes.observe(serialized.len() as f64);
        self.metrics
            .trace_steps
            .observe(trace.processor_outputs.len() as f64);
        self.metrics
            .capture_seconds
            .observe_duration(started.elapsed());
        Ok(graph)
    }

    /// Validate a trace-less OPM graph and stage it into a caller-owned
    /// session under `run_id`, so a derived graph (e.g. a
    /// delta-reassessment run whose cause is a journal slice) commits
    /// atomically with the data mutations it describes. Re-staging an
    /// identical graph under the same id is an idempotent no-op; a
    /// *different* graph under an existing id is refused with
    /// [`ProvenanceError::DuplicateRun`], same as [`capture`](Self::capture).
    pub fn stage_graph(
        &self,
        session: &mut WriteSession<'_>,
        run_id: &str,
        graph: &OpmGraph,
    ) -> Result<(), ProvenanceError> {
        let report = opm_validate::validate(graph);
        if !report.is_legal() {
            return Err(ProvenanceError::IllegalGraph(
                report
                    .errors
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let serialized = opm_ser::to_json(graph);
        if let Some(existing) = self.store.get(PROVENANCE_TABLE, run_id.as_bytes())? {
            if existing != serialized.as_bytes() {
                self.metrics.duplicate_runs.inc();
                self.obs.trace(
                    "provenance",
                    format!("refused duplicate capture of run {run_id} (different graph)"),
                );
                return Err(ProvenanceError::DuplicateRun(run_id.to_string()));
            }
            return Ok(());
        }
        session.put(PROVENANCE_TABLE, run_id.as_bytes(), serialized.as_bytes())?;
        self.metrics.graph_nodes.observe(graph.node_count() as f64);
        self.metrics.graph_bytes.observe(serialized.len() as f64);
        Ok(())
    }

    /// Load a stored OPM graph.
    pub fn load_graph(&self, run_id: &str) -> Result<OpmGraph, ProvenanceError> {
        let bytes = self
            .store
            .get(PROVENANCE_TABLE, run_id.as_bytes())?
            .ok_or_else(|| ProvenanceError::UnknownRun(run_id.to_string()))?;
        let s =
            String::from_utf8(bytes).map_err(|e| CodecError::new(PROVENANCE_TABLE, run_id, e))?;
        opm_ser::from_json(&s).map_err(|e| CodecError::new(PROVENANCE_TABLE, run_id, e).into())
    }

    /// Load a stored trace.
    pub fn load_trace(&self, run_id: &str) -> Result<ExecutionTrace, ProvenanceError> {
        self.traces
            .get(run_id)?
            .ok_or_else(|| ProvenanceError::UnknownRun(run_id.to_string()))
    }

    /// Run ids present in the repository, in order.
    pub fn run_ids(&self) -> Result<Vec<String>, ProvenanceError> {
        Ok(self
            .store
            .scan(PROVENANCE_TABLE)?
            .into_iter()
            .filter_map(|(k, _)| String::from_utf8(k).ok())
            .collect())
    }
}

/// The manager is the architecture's provenance sink: every top-level
/// run the WFMS engine finishes is captured into the repository.
impl ProvenanceSink for ProvenanceManager {
    fn record(&self, workflow: &Workflow, trace: &ExecutionTrace) -> Result<(), SinkError> {
        self.capture(workflow, trace)
            .map(|_| ())
            .map_err(SinkError::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::Processor;
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use serde_json::json;

    fn store(name: &str) -> Arc<TableStore> {
        let dir =
            std::env::temp_dir().join(format!("preserva-provmgr-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )))
    }

    fn run_one() -> (Workflow, ExecutionTrace) {
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new("w", "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e = WfEngine::new(r, EngineConfig::default());
        let t = e.run(&w, &port("x", json!(1))).unwrap();
        (w, t)
    }

    #[test]
    fn capture_then_load_roundtrip() {
        let s = store("roundtrip");
        let pm = ProvenanceManager::new(s);
        let (w, t) = run_one();
        let g = pm.capture(&w, &t).unwrap();
        let loaded = pm.load_graph(&t.run_id).unwrap();
        assert_eq!(g, loaded);
        let trace = pm.load_trace(&t.run_id).unwrap();
        assert_eq!(trace.run_id, t.run_id);
        assert_eq!(pm.run_ids().unwrap(), vec![t.run_id.clone()]);
    }

    #[test]
    fn capture_is_one_commit_with_no_orphans() {
        let s = store("atomic");
        let before = s.engine().stats().commits;
        let pm = ProvenanceManager::new(s.clone());
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        assert_eq!(
            s.engine().stats().commits,
            before + 1,
            "graph + trace must land in a single storage commit"
        );
        // Both tables hold exactly the same run ids — no graph without its
        // trace, no trace without its graph.
        let graphs: Vec<Vec<u8>> = s
            .scan(PROVENANCE_TABLE)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let traces: Vec<Vec<u8>> = s
            .scan(TRACES_TABLE)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(graphs, traces);
        assert_eq!(graphs, vec![t.run_id.into_bytes()]);
    }

    #[test]
    fn manager_acts_as_the_engine_sink() {
        use preserva_wfms::sink::ProvenanceSink;
        let s = store("sink");
        let pm = Arc::new(ProvenanceManager::new(s));
        let (w, t) = run_one();
        pm.record(&w, &t).unwrap();
        assert_eq!(pm.run_ids().unwrap(), vec![t.run_id.clone()]);
        assert!(pm.load_trace(&t.run_id).is_ok());
    }

    #[test]
    fn identical_recapture_is_idempotent() {
        let pm = ProvenanceManager::new(store("idempotent"));
        let (w, t) = run_one();
        let g1 = pm.capture(&w, &t).unwrap();
        let g2 = pm.capture(&w, &t).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(pm.run_ids().unwrap().len(), 1);
    }

    #[test]
    fn different_trace_under_same_run_id_is_refused() {
        let pm = ProvenanceManager::new(store("duplicate"));
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        // A second run forced onto the first run's id must be rejected,
        // and the stored trace must be untouched.
        let (_, mut t2) = run_one();
        t2.run_id = t.run_id.clone();
        assert!(matches!(
            pm.capture(&w, &t2),
            Err(ProvenanceError::DuplicateRun(id)) if id == t.run_id
        ));
        let stored = pm.load_trace(&t.run_id).unwrap();
        assert_eq!(stored.elapsed, t.elapsed, "original trace preserved");
    }

    /// Regression: two engines sharing one repository used to both mint
    /// `run-000001`, the second silently overwriting the first run's
    /// provenance. Run ids are now globally unique, so both captures land.
    #[test]
    fn two_engines_sharing_one_repository_never_collide() {
        let pm = Arc::new(ProvenanceManager::new(store("two-engines")));
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new("w", "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e1 = WfEngine::new(r.clone(), EngineConfig::default()).with_sink(pm.clone());
        let e2 = WfEngine::new(r, EngineConfig::default()).with_sink(pm.clone());
        let t1 = e1.run(&w, &port("x", json!(1))).unwrap();
        let t2 = e2.run(&w, &port("x", json!(2))).unwrap();
        assert_ne!(t1.run_id, t2.run_id, "first runs of two engines collided");
        let ids = pm.run_ids().unwrap();
        assert_eq!(ids.len(), 2, "both runs captured, nothing overwritten");
        assert_eq!(
            pm.load_trace(&t1.run_id).unwrap().workflow_inputs["x"],
            json!(1)
        );
        assert_eq!(
            pm.load_trace(&t2.run_id).unwrap().workflow_inputs["x"],
            json!(2)
        );
    }

    #[test]
    fn capture_metrics_reach_a_shared_registry() {
        let obs = Arc::new(preserva_obs::Registry::new());
        let pm = ProvenanceManager::with_metrics(store("metrics"), obs.clone());
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        // Idempotent re-capture is not a new capture.
        pm.capture(&w, &t).unwrap();
        // A conflicting trace is refused and counted.
        let (_, mut t2) = run_one();
        t2.run_id = t.run_id.clone();
        assert!(pm.capture(&w, &t2).is_err());

        let text = obs.render_prometheus();
        assert!(
            text.contains("preserva_provenance_captures_total 1"),
            "{text}"
        );
        assert!(text.contains("preserva_provenance_duplicate_runs_total 1"));
        assert!(text.contains("preserva_provenance_capture_seconds_count 1"));
        assert!(text.contains("preserva_provenance_graph_bytes_count 1"));
        assert!(text.contains("preserva_provenance_graph_nodes_count 1"));
        assert!(text.contains("preserva_provenance_trace_steps_count 1"));
        assert!(obs
            .trace_events()
            .iter()
            .any(|e| e.category == "provenance" && e.message.contains("duplicate")));
        assert!(Arc::ptr_eq(pm.metrics_registry(), &obs));
    }

    #[test]
    fn unknown_run_is_error() {
        let pm = ProvenanceManager::new(store("unknown"));
        assert!(matches!(
            pm.load_graph("run-xxxx"),
            Err(ProvenanceError::UnknownRun(_))
        ));
        assert!(matches!(
            pm.load_trace("run-xxxx"),
            Err(ProvenanceError::UnknownRun(_))
        ));
    }

    #[test]
    fn captured_graphs_survive_reopen() {
        let dir =
            std::env::temp_dir().join(format!("preserva-provmgr-{}-persist", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run_id;
        {
            let s = Arc::new(TableStore::new(Arc::new(
                Engine::open(&dir, EngineOptions::default()).unwrap(),
            )));
            let pm = ProvenanceManager::new(s);
            let (w, t) = run_one();
            pm.capture(&w, &t).unwrap();
            run_id = t.run_id;
        }
        let s = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        let pm = ProvenanceManager::new(s);
        assert!(pm.load_graph(&run_id).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
