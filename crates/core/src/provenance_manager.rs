//! The Provenance Manager: "extracts provenance information from data and
//! workflows, storing such information in the Data Provenance Repository"
//! (§III). It merges Taverna-style annotated workflows with execution
//! logs into OPM graphs (as §IV-C describes) and persists both through
//! the storage engine.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use preserva_obs::{Counter, Histogram, Registry};
use preserva_opm::graph::OpmGraph;
use preserva_opm::serialize as opm_ser;
use preserva_opm::template as opm_template;
use preserva_opm::validate as opm_validate;
use preserva_storage::table::{TableStore, WriteSession};
use preserva_storage::StorageError;
use preserva_wfms::model::Workflow;
use preserva_wfms::opm_export;
use preserva_wfms::sink::{ProvenanceSink, SinkError};
use preserva_wfms::trace::ExecutionTrace;
use serde::{Deserialize, Serialize};

use crate::repository::{CodecError, Repository, RepositoryError};

/// Table holding OPM graphs, keyed by run id. Rows are either a
/// template reference (see [`TemplatedRow`]) or a raw OPM-JSON graph;
/// the table is journaled so the cross-run index can follow captures
/// incrementally.
pub const PROVENANCE_TABLE: &str = "provenance_graphs";
/// Table holding raw execution traces, keyed by run id.
pub const TRACES_TABLE: &str = "traces";
/// Table holding deduplicated graph skeletons, keyed by content hash.
pub const TEMPLATES_TABLE: &str = "provenance_templates";

/// Discriminator value for template-referencing graph rows.
const TEMPLATED_FMT: &str = "tpl1";

/// A graph row stored as a reference to a shared skeleton plus per-run
/// bindings. Raw rows (plain OPM-JSON, the pre-template format) fail to
/// decode as this envelope — `fmt` is mandatory — which is exactly how
/// [`ProvenanceManager::load_graph`] tells the formats apart.
#[derive(Debug, Serialize, Deserialize)]
struct TemplatedRow {
    /// Format tag; always [`TEMPLATED_FMT`].
    fmt: String,
    /// Content hash keying [`TEMPLATES_TABLE`].
    template: String,
    /// Per-run residue to rehydrate with.
    bindings: opm_template::Bindings,
}

/// Serialize with table/key context on failure — the error surfaces as
/// [`ProvenanceError::Codec`], never as a bogus duplicate verdict.
fn encode_json<T: Serialize>(table: &str, key: &str, value: &T) -> Result<String, ProvenanceError> {
    serde_json::to_string(value).map_err(|e| ProvenanceError::Codec(CodecError::new(table, key, e)))
}

/// Errors from the provenance manager.
#[derive(Debug)]
pub enum ProvenanceError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// The merged graph failed OPM legality validation.
    IllegalGraph(String),
    /// The requested run is not in the repository.
    UnknownRun(String),
    /// A *different* trace is already stored under this run id. Silently
    /// overwriting it would destroy provenance; the id-minting side is
    /// broken and must be fixed, not papered over.
    DuplicateRun(String),
    /// A stored graph or trace failed to (de)serialize.
    Codec(CodecError),
}

impl std::fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvenanceError::Storage(e) => write!(f, "provenance storage: {e}"),
            ProvenanceError::IllegalGraph(m) => write!(f, "illegal OPM graph: {m}"),
            ProvenanceError::UnknownRun(r) => write!(f, "unknown run {r:?}"),
            ProvenanceError::DuplicateRun(r) => write!(
                f,
                "run {r:?} already captured with a different trace; refusing to overwrite"
            ),
            ProvenanceError::Codec(e) => write!(f, "provenance codec: {e}"),
        }
    }
}

impl std::error::Error for ProvenanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProvenanceError::Storage(e) => Some(e),
            ProvenanceError::Codec(e) => Some(e),
            ProvenanceError::IllegalGraph(_)
            | ProvenanceError::UnknownRun(_)
            | ProvenanceError::DuplicateRun(_) => None,
        }
    }
}

impl From<StorageError> for ProvenanceError {
    fn from(e: StorageError) -> Self {
        ProvenanceError::Storage(e)
    }
}

impl From<CodecError> for ProvenanceError {
    fn from(e: CodecError) -> Self {
        ProvenanceError::Codec(e)
    }
}

impl From<RepositoryError> for ProvenanceError {
    fn from(e: RepositoryError) -> Self {
        match e {
            RepositoryError::Storage(e) => ProvenanceError::Storage(e),
            RepositoryError::Codec(e) => ProvenanceError::Codec(e),
        }
    }
}

/// Provenance-capture instruments, resolved once at construction so the
/// capture path touches only atomic handles.
struct ProvMetrics {
    captures: Arc<Counter>,
    duplicate_runs: Arc<Counter>,
    capture_seconds: Arc<Histogram>,
    graph_nodes: Arc<Histogram>,
    graph_bytes: Arc<Histogram>,
    trace_steps: Arc<Histogram>,
    template_hits: Arc<Counter>,
    template_stores: Arc<Counter>,
}

impl ProvMetrics {
    fn resolve(reg: &Arc<Registry>) -> ProvMetrics {
        ProvMetrics {
            captures: reg.counter(
                "preserva_provenance_captures_total",
                "Provenance captures persisted (graph + trace committed).",
            ),
            duplicate_runs: reg.counter(
                "preserva_provenance_duplicate_runs_total",
                "Capture attempts refused because a different trace already \
                 owned the run id.",
            ),
            capture_seconds: reg.latency_histogram(
                "preserva_provenance_capture_seconds",
                "Latency of provenance capture (merge, validate, commit).",
            ),
            graph_nodes: reg.histogram(
                "preserva_provenance_graph_nodes",
                "Node count (artifacts + processes + agents) of captured OPM graphs.",
                &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
            graph_bytes: reg.size_histogram(
                "preserva_provenance_graph_bytes",
                "Serialized size of captured OPM graphs.",
            ),
            trace_steps: reg.histogram(
                "preserva_provenance_trace_steps",
                "Processor invocations recorded in captured execution traces.",
                &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
            template_hits: reg.counter(
                "preserva_prov_template_hits_total",
                "Captured graphs stored as bindings against an already-stored \
                 skeleton (structural sharing paid off).",
            ),
            template_stores: reg.counter(
                "preserva_prov_template_stores_total",
                "Distinct graph skeletons stored in the template table.",
            ),
        }
    }
}

/// The manager, over a shared table store. OPM graphs are stored in the
/// custom OPM-JSON interchange format (raw bytes); traces go through a
/// typed [`Repository`].
pub struct ProvenanceManager {
    store: Arc<TableStore>,
    traces: Repository<ExecutionTrace>,
    obs: Arc<Registry>,
    metrics: ProvMetrics,
    /// Serializes the duplicate-run check with the commit that follows
    /// it: without this, two threads capturing *different* traces under
    /// one run id could both pass the check and the loser would silently
    /// overwrite the winner's provenance.
    capture_lock: Mutex<()>,
}

impl std::fmt::Debug for ProvenanceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenanceManager").finish()
    }
}

impl ProvenanceManager {
    /// Create over a store, with a private metrics registry. Use
    /// [`with_metrics`](Self::with_metrics) to report into a shared one.
    pub fn new(store: Arc<TableStore>) -> Self {
        Self::build(store, Arc::new(Registry::new()))
    }

    /// Create over a store, reporting capture metrics and trace events to
    /// `registry` (typically shared with the storage engine and WFMS).
    pub fn with_metrics(store: Arc<TableStore>, registry: Arc<Registry>) -> Self {
        Self::build(store, registry)
    }

    fn build(store: Arc<TableStore>, registry: Arc<Registry>) -> Self {
        // Captures feed the change journal so the cross-run index can
        // trail them with the same cursor machinery the reassessor uses.
        store
            .mark_journaled(PROVENANCE_TABLE)
            .expect("valid table name");
        let traces = Repository::new(store.clone(), TRACES_TABLE, |t: &ExecutionTrace| {
            t.run_id.clone()
        });
        let metrics = ProvMetrics::resolve(&registry);
        ProvenanceManager {
            store,
            traces,
            obs: registry,
            metrics,
            capture_lock: Mutex::new(()),
        }
    }

    /// The table store this manager persists into (shared with the
    /// cross-run index and the CLI).
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    /// The metrics registry this manager reports to.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Capture a run: merge the annotated workflow with the execution
    /// trace into an OPM graph, validate it, persist graph + trace in ONE
    /// storage commit — recovery never sees a graph without its trace, or
    /// the reverse. Returns the graph.
    ///
    /// A run id may be captured at most once: re-capturing the identical
    /// trace is an idempotent no-op, but a *different* trace under an
    /// existing id is refused with [`ProvenanceError::DuplicateRun`] —
    /// overwriting stored provenance would be a silent preservation
    /// failure (and means run-id minting is broken upstream).
    pub fn capture(
        &self,
        workflow: &Workflow,
        trace: &ExecutionTrace,
    ) -> Result<OpmGraph, ProvenanceError> {
        let runs = [(workflow, trace)];
        let mut results = self.capture_many(&runs)?;
        results
            .pop()
            .expect("capture_many returns one result per run")
    }

    /// Capture many runs in ONE storage commit — one WAL commit frame,
    /// one fsync, regardless of batch size. Per-run failures (an illegal
    /// graph, a conflicting duplicate) are reported in the run's slot
    /// without poisoning the rest of the batch; the outer `Err` is
    /// reserved for whole-batch failures (storage errors on the shared
    /// commit), after which nothing from the batch is persisted.
    ///
    /// Duplicate semantics are identical to [`capture`](Self::capture),
    /// including duplicates *within* one batch.
    pub fn capture_batch(
        &self,
        runs: &[(Workflow, ExecutionTrace)],
    ) -> Result<Vec<Result<OpmGraph, ProvenanceError>>, ProvenanceError> {
        let refs: Vec<(&Workflow, &ExecutionTrace)> = runs.iter().map(|(w, t)| (w, t)).collect();
        self.capture_many(&refs)
    }

    pub(crate) fn capture_many(
        &self,
        runs: &[(&Workflow, &ExecutionTrace)],
    ) -> Result<Vec<Result<OpmGraph, ProvenanceError>>, ProvenanceError> {
        let started = Instant::now();
        // The duplicate check below must stay atomic with the commit:
        // hold the capture lock across both so a concurrent conflicting
        // capture is either checked after this commit (and refused) or
        // committed before this check (and refuses us).
        let _guard = self.capture_lock.lock();
        let mut session = self.store.session();
        // run id -> serialized trace staged earlier in THIS batch, so
        // intra-batch duplicates get the same verdicts as stored ones.
        let mut in_batch: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        let mut results: Vec<Result<OpmGraph, ProvenanceError>> = Vec::with_capacity(runs.len());
        // (index, graph, stored row bytes, trace steps) per freshly
        // staged run — metrics fire only after the commit succeeds.
        let mut staged: Vec<(usize, OpmGraph, usize, usize)> = Vec::new();
        for (i, (workflow, trace)) in runs.iter().enumerate() {
            match self.stage_capture(&mut session, &mut in_batch, workflow, trace) {
                Ok(Some((graph, row_bytes))) => {
                    let steps = trace.processor_outputs.len();
                    staged.push((i, graph.clone(), row_bytes, steps));
                    results.push(Ok(graph));
                }
                // Idempotent re-capture: nothing staged, graph rebuilt.
                Ok(None) => results.push(Ok(opm_export::export(workflow, trace))),
                Err(e) => results.push(Err(e)),
            }
        }
        if !session.is_empty() {
            session.commit()?;
        }
        for (_, graph, row_bytes, steps) in &staged {
            self.metrics.captures.inc();
            self.metrics.graph_nodes.observe(graph.node_count() as f64);
            self.metrics.graph_bytes.observe(*row_bytes as f64);
            self.metrics.trace_steps.observe(*steps as f64);
        }
        if !staged.is_empty() {
            self.metrics
                .capture_seconds
                .observe_duration(started.elapsed());
        }
        Ok(results)
    }

    /// Stage one run's graph + trace (+ template skeleton when the graph
    /// splits losslessly) into `session`. Returns `Ok(Some((graph,
    /// stored_row_bytes)))` when freshly staged, `Ok(None)` for an
    /// idempotent re-capture, `Err` for this run's own failure.
    fn stage_capture(
        &self,
        session: &mut WriteSession<'_>,
        in_batch: &mut std::collections::HashMap<String, String>,
        workflow: &Workflow,
        trace: &ExecutionTrace,
    ) -> Result<Option<(OpmGraph, usize)>, ProvenanceError> {
        let run_id = trace.run_id.clone();
        // Serialize up front: a codec failure surfaces as Codec here and
        // can never be mistaken for (or mask) a duplicate-run verdict.
        let trace_json = encode_json(TRACES_TABLE, &run_id, trace)?;
        let existing_json = match in_batch.get(&run_id) {
            Some(j) => Some(j.clone()),
            None => match self.traces.get(&run_id)? {
                Some(existing) => Some(encode_json(TRACES_TABLE, &run_id, &existing)?),
                None => None,
            },
        };
        if let Some(existing_json) = existing_json {
            if existing_json != trace_json {
                self.metrics.duplicate_runs.inc();
                self.obs.trace(
                    "provenance",
                    format!("refused duplicate capture of run {run_id} (different trace)"),
                );
                return Err(ProvenanceError::DuplicateRun(run_id));
            }
            // Identical re-capture (e.g. a retried sink call): keep the
            // stored row, just rebuild and return the graph.
            return Ok(None);
        }
        let graph = opm_export::export(workflow, trace);
        let report = opm_validate::validate(&graph);
        if !report.is_legal() {
            return Err(ProvenanceError::IllegalGraph(
                report
                    .errors
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        // Structural sharing: store the skeleton once per content hash,
        // the per-run residue as a compact envelope. Graphs that do not
        // split losslessly fall back to the raw materialized format.
        let row = match opm_template::extract(&graph, &run_id) {
            Some(ex) => {
                // Read through the session so a skeleton staged earlier
                // in this batch counts as present.
                if session.get(TEMPLATES_TABLE, ex.hash.as_bytes())?.is_none() {
                    let skeleton = opm_ser::to_json(&ex.skeleton);
                    session.put(TEMPLATES_TABLE, ex.hash.as_bytes(), skeleton.as_bytes())?;
                    self.metrics.template_stores.inc();
                } else {
                    self.metrics.template_hits.inc();
                }
                encode_json(
                    PROVENANCE_TABLE,
                    &run_id,
                    &TemplatedRow {
                        fmt: TEMPLATED_FMT.to_string(),
                        template: ex.hash,
                        bindings: ex.bindings,
                    },
                )?
            }
            None => opm_ser::to_json(&graph),
        };
        session.put(PROVENANCE_TABLE, run_id.as_bytes(), row.as_bytes())?;
        self.traces.stage(session, trace)?;
        in_batch.insert(run_id, trace_json);
        Ok(Some((graph, row.len())))
    }

    /// Validate a trace-less OPM graph and stage it into a caller-owned
    /// session under `run_id`, so a derived graph (e.g. a
    /// delta-reassessment run whose cause is a journal slice) commits
    /// atomically with the data mutations it describes. Re-staging an
    /// identical graph under the same id is an idempotent no-op; a
    /// *different* graph under an existing id is refused with
    /// [`ProvenanceError::DuplicateRun`], same as [`capture`](Self::capture).
    pub fn stage_graph(
        &self,
        session: &mut WriteSession<'_>,
        run_id: &str,
        graph: &OpmGraph,
    ) -> Result<(), ProvenanceError> {
        let report = opm_validate::validate(graph);
        if !report.is_legal() {
            return Err(ProvenanceError::IllegalGraph(
                report
                    .errors
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let serialized = opm_ser::to_json(graph);
        if let Some(existing) = self.store.get(PROVENANCE_TABLE, run_id.as_bytes())? {
            // Compare decoded graphs, not stored bytes: an identical
            // graph is idempotent no matter which storage format (raw or
            // templated) the existing row uses.
            if self.decode_graph_row(run_id, existing)? != *graph {
                self.metrics.duplicate_runs.inc();
                self.obs.trace(
                    "provenance",
                    format!("refused duplicate capture of run {run_id} (different graph)"),
                );
                return Err(ProvenanceError::DuplicateRun(run_id.to_string()));
            }
            return Ok(());
        }
        session.put(PROVENANCE_TABLE, run_id.as_bytes(), serialized.as_bytes())?;
        self.metrics.graph_nodes.observe(graph.node_count() as f64);
        self.metrics.graph_bytes.observe(serialized.len() as f64);
        Ok(())
    }

    /// Decode a stored graph row: a [`TemplatedRow`] envelope rehydrates
    /// through its skeleton; anything else is parsed as raw OPM-JSON
    /// (the pre-template format, still written by
    /// [`stage_graph`](Self::stage_graph) and the extraction fallback).
    fn decode_graph_row(&self, run_id: &str, bytes: Vec<u8>) -> Result<OpmGraph, ProvenanceError> {
        let s =
            String::from_utf8(bytes).map_err(|e| CodecError::new(PROVENANCE_TABLE, run_id, e))?;
        if let Ok(row) = serde_json::from_str::<TemplatedRow>(&s) {
            if row.fmt == TEMPLATED_FMT {
                let tpl = self
                    .store
                    .get(TEMPLATES_TABLE, row.template.as_bytes())?
                    .ok_or_else(|| {
                        ProvenanceError::Codec(CodecError::new(
                            TEMPLATES_TABLE,
                            run_id,
                            format!("missing template skeleton {}", row.template),
                        ))
                    })?;
                let tpl = String::from_utf8(tpl)
                    .map_err(|e| CodecError::new(TEMPLATES_TABLE, run_id, e))?;
                let skeleton = opm_ser::from_json(&tpl)
                    .map_err(|e| CodecError::new(TEMPLATES_TABLE, run_id, e))?;
                return Ok(opm_template::rehydrate(&skeleton, &row.bindings));
            }
        }
        opm_ser::from_json(&s).map_err(|e| CodecError::new(PROVENANCE_TABLE, run_id, e).into())
    }

    /// Load a stored OPM graph, transparently rehydrating template rows.
    pub fn load_graph(&self, run_id: &str) -> Result<OpmGraph, ProvenanceError> {
        let bytes = self
            .store
            .get(PROVENANCE_TABLE, run_id.as_bytes())?
            .ok_or_else(|| ProvenanceError::UnknownRun(run_id.to_string()))?;
        self.decode_graph_row(run_id, bytes)
    }

    /// Load a stored trace.
    pub fn load_trace(&self, run_id: &str) -> Result<ExecutionTrace, ProvenanceError> {
        self.traces
            .get(run_id)?
            .ok_or_else(|| ProvenanceError::UnknownRun(run_id.to_string()))
    }

    /// Run ids present in the repository, in order. Key-only: listing a
    /// million runs materializes no graph bytes (the `value_bytes_read`
    /// family stays untouched, which the regression test pins).
    pub fn run_ids(&self) -> Result<Vec<String>, ProvenanceError> {
        Ok(self
            .store
            .scan_keys(PROVENANCE_TABLE)?
            .into_iter()
            .filter_map(|k| String::from_utf8(k).ok())
            .collect())
    }
}

/// The manager is the architecture's provenance sink: every top-level
/// run the WFMS engine finishes is captured into the repository.
impl ProvenanceSink for ProvenanceManager {
    fn record(&self, workflow: &Workflow, trace: &ExecutionTrace) -> Result<(), SinkError> {
        self.capture(workflow, trace)
            .map(|_| ())
            .map_err(SinkError::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
    use preserva_wfms::model::Processor;
    use preserva_wfms::services::{port, PortMap, ServiceRegistry};
    use serde_json::json;

    fn store(name: &str) -> Arc<TableStore> {
        let dir =
            std::env::temp_dir().join(format!("preserva-provmgr-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )))
    }

    fn run_one() -> (Workflow, ExecutionTrace) {
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new("w", "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e = WfEngine::new(r, EngineConfig::default());
        let t = e.run(&w, &port("x", json!(1))).unwrap();
        (w, t)
    }

    #[test]
    fn capture_then_load_roundtrip() {
        let s = store("roundtrip");
        let pm = ProvenanceManager::new(s);
        let (w, t) = run_one();
        let g = pm.capture(&w, &t).unwrap();
        let loaded = pm.load_graph(&t.run_id).unwrap();
        assert_eq!(g, loaded);
        let trace = pm.load_trace(&t.run_id).unwrap();
        assert_eq!(trace.run_id, t.run_id);
        assert_eq!(pm.run_ids().unwrap(), vec![t.run_id.clone()]);
    }

    #[test]
    fn capture_is_one_commit_with_no_orphans() {
        let s = store("atomic");
        let before = s.engine().stats().commits;
        let pm = ProvenanceManager::new(s.clone());
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        assert_eq!(
            s.engine().stats().commits,
            before + 1,
            "graph + trace must land in a single storage commit"
        );
        // Both tables hold exactly the same run ids — no graph without its
        // trace, no trace without its graph.
        let graphs: Vec<Vec<u8>> = s
            .scan(PROVENANCE_TABLE)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let traces: Vec<Vec<u8>> = s
            .scan(TRACES_TABLE)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(graphs, traces);
        assert_eq!(graphs, vec![t.run_id.into_bytes()]);
    }

    #[test]
    fn manager_acts_as_the_engine_sink() {
        use preserva_wfms::sink::ProvenanceSink;
        let s = store("sink");
        let pm = Arc::new(ProvenanceManager::new(s));
        let (w, t) = run_one();
        pm.record(&w, &t).unwrap();
        assert_eq!(pm.run_ids().unwrap(), vec![t.run_id.clone()]);
        assert!(pm.load_trace(&t.run_id).is_ok());
    }

    #[test]
    fn identical_recapture_is_idempotent() {
        let pm = ProvenanceManager::new(store("idempotent"));
        let (w, t) = run_one();
        let g1 = pm.capture(&w, &t).unwrap();
        let g2 = pm.capture(&w, &t).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(pm.run_ids().unwrap().len(), 1);
    }

    #[test]
    fn different_trace_under_same_run_id_is_refused() {
        let pm = ProvenanceManager::new(store("duplicate"));
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        // A second run forced onto the first run's id must be rejected,
        // and the stored trace must be untouched.
        let (_, mut t2) = run_one();
        t2.run_id = t.run_id.clone();
        assert!(matches!(
            pm.capture(&w, &t2),
            Err(ProvenanceError::DuplicateRun(id)) if id == t.run_id
        ));
        let stored = pm.load_trace(&t.run_id).unwrap();
        assert_eq!(stored.elapsed, t.elapsed, "original trace preserved");
    }

    /// Regression: two engines sharing one repository used to both mint
    /// `run-000001`, the second silently overwriting the first run's
    /// provenance. Run ids are now globally unique, so both captures land.
    #[test]
    fn two_engines_sharing_one_repository_never_collide() {
        let pm = Arc::new(ProvenanceManager::new(store("two-engines")));
        let mut r = ServiceRegistry::new();
        r.register_fn("id", |i: &PortMap| Ok(port("out", i["in"].clone())));
        let w = Workflow::new("w", "identity")
            .with_input("x")
            .with_output("y")
            .with_processor(Processor::service("p", "id", &["in"], &["out"]))
            .link_input("x", "p", "in")
            .link_output("p", "out", "y");
        let e1 = WfEngine::new(r.clone(), EngineConfig::default()).with_sink(pm.clone());
        let e2 = WfEngine::new(r, EngineConfig::default()).with_sink(pm.clone());
        let t1 = e1.run(&w, &port("x", json!(1))).unwrap();
        let t2 = e2.run(&w, &port("x", json!(2))).unwrap();
        assert_ne!(t1.run_id, t2.run_id, "first runs of two engines collided");
        let ids = pm.run_ids().unwrap();
        assert_eq!(ids.len(), 2, "both runs captured, nothing overwritten");
        assert_eq!(
            pm.load_trace(&t1.run_id).unwrap().workflow_inputs["x"],
            json!(1)
        );
        assert_eq!(
            pm.load_trace(&t2.run_id).unwrap().workflow_inputs["x"],
            json!(2)
        );
    }

    #[test]
    fn capture_metrics_reach_a_shared_registry() {
        let obs = Arc::new(preserva_obs::Registry::new());
        let pm = ProvenanceManager::with_metrics(store("metrics"), obs.clone());
        let (w, t) = run_one();
        pm.capture(&w, &t).unwrap();
        // Idempotent re-capture is not a new capture.
        pm.capture(&w, &t).unwrap();
        // A conflicting trace is refused and counted.
        let (_, mut t2) = run_one();
        t2.run_id = t.run_id.clone();
        assert!(pm.capture(&w, &t2).is_err());

        let text = obs.render_prometheus();
        assert!(
            text.contains("preserva_provenance_captures_total 1"),
            "{text}"
        );
        assert!(text.contains("preserva_provenance_duplicate_runs_total 1"));
        assert!(text.contains("preserva_provenance_capture_seconds_count 1"));
        assert!(text.contains("preserva_provenance_graph_bytes_count 1"));
        assert!(text.contains("preserva_provenance_graph_nodes_count 1"));
        assert!(text.contains("preserva_provenance_trace_steps_count 1"));
        assert!(obs
            .trace_events()
            .iter()
            .any(|e| e.category == "provenance" && e.message.contains("duplicate")));
        assert!(Arc::ptr_eq(pm.metrics_registry(), &obs));
    }

    /// Satellite 1 regression: listing run ids must be a key-only scan.
    #[test]
    fn run_ids_reads_no_value_bytes() {
        let dir =
            std::env::temp_dir().join(format!("preserva-provmgr-{}-keyonly", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(Engine::open(&dir, EngineOptions::default()).unwrap());
        let s = Arc::new(TableStore::new(engine.clone()));
        let pm = ProvenanceManager::new(s);
        let mut expect = Vec::new();
        for _ in 0..5 {
            let (w, t) = run_one();
            pm.capture(&w, &t).unwrap();
            expect.push(t.run_id);
        }
        expect.sort();
        let bytes_read = engine
            .metrics_registry()
            .counter("preserva_storage_value_bytes_read_total", "");
        let before = bytes_read.get();
        assert_eq!(pm.run_ids().unwrap(), expect);
        assert_eq!(
            bytes_read.get(),
            before,
            "run_ids must not materialize stored graph bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite 2 regression: a (de)serialization failure inside the
    /// duplicate comparison surfaces as `Codec`, never as a bogus
    /// `DuplicateRun` verdict (the old path collapsed errors into the
    /// equality bool with `unwrap_or(false)`), and never as a silent
    /// overwrite of the damaged row.
    #[test]
    fn corrupt_stored_trace_surfaces_codec_not_duplicate() {
        let s = store("codec");
        let pm = ProvenanceManager::new(s.clone());
        let (w, t) = run_one();
        // Damage the stored row so the comparison cannot decode it.
        s.put(TRACES_TABLE, t.run_id.as_bytes(), b"{not json")
            .unwrap();
        let err = pm.capture(&w, &t).unwrap_err();
        match err {
            ProvenanceError::Codec(c) => assert_eq!(c.table, TRACES_TABLE),
            other => panic!("expected Codec, got {other}"),
        }
        // The damaged row is surfaced for repair, not overwritten.
        assert_eq!(
            s.get(TRACES_TABLE, t.run_id.as_bytes()).unwrap().unwrap(),
            b"{not json".to_vec()
        );
    }

    /// Satellite 3 regression: two threads capturing *different* traces
    /// under one run id — exactly one wins, the loser is refused, and
    /// the stored trace is the winner's (never silently overwritten).
    #[test]
    fn concurrent_conflicting_captures_never_overwrite() {
        for round in 0..8 {
            let pm = Arc::new(ProvenanceManager::new(store(&format!("race-{round}"))));
            let (w, t1) = run_one();
            let (_, mut t2) = run_one();
            t2.run_id = t1.run_id.clone();
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let mut handles = Vec::new();
            for t in [t1.clone(), t2.clone()] {
                let pm = pm.clone();
                let w = w.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    barrier.wait();
                    pm.capture(&w, &t)
                }));
            }
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let oks = outcomes.iter().filter(|r| r.is_ok()).count();
            let dups = outcomes
                .iter()
                .filter(|r| matches!(r, Err(ProvenanceError::DuplicateRun(_))))
                .count();
            assert_eq!((oks, dups), (1, 1), "exactly one winner, one refusal");
            // The stored trace matches whichever capture succeeded.
            let stored = pm.load_trace(&t1.run_id).unwrap();
            let winner = if outcomes[0].is_ok() { &t1 } else { &t2 };
            assert_eq!(
                serde_json::to_string(&stored).unwrap(),
                serde_json::to_string(winner).unwrap(),
                "loser must not overwrite the winner's trace"
            );
        }
    }

    #[test]
    fn capture_batch_is_one_commit_for_many_runs() {
        let s = store("batch");
        let pm = ProvenanceManager::new(s.clone());
        let runs: Vec<(Workflow, ExecutionTrace)> = (0..8).map(|_| run_one()).collect();
        let before = s.engine().stats().commits;
        let results = pm.capture_batch(&runs).unwrap();
        assert_eq!(
            s.engine().stats().commits,
            before + 1,
            "a batch of 8 runs lands in one storage commit"
        );
        assert!(results.iter().all(|r| r.is_ok()));
        for (_, t) in &runs {
            assert!(pm.load_graph(&t.run_id).is_ok());
            assert!(pm.load_trace(&t.run_id).is_ok());
        }
        // A graph never commits without its trace, batched or not.
        let graphs = s.scan_keys(PROVENANCE_TABLE).unwrap();
        let traces = s.scan_keys(TRACES_TABLE).unwrap();
        assert_eq!(graphs, traces);
    }

    #[test]
    fn capture_batch_isolates_per_run_failures() {
        let s = store("batch-mixed");
        let pm = ProvenanceManager::new(s);
        let (w, t1) = run_one();
        pm.capture(&w, &t1).unwrap();
        let (_, mut conflict) = run_one();
        conflict.run_id = t1.run_id.clone();
        let (_, fresh) = run_one();
        let results = pm
            .capture_batch(&[
                (w.clone(), conflict),
                (w.clone(), fresh.clone()),
                (w.clone(), t1.clone()),
            ])
            .unwrap();
        assert!(matches!(
            results[0],
            Err(ProvenanceError::DuplicateRun(ref id)) if *id == t1.run_id
        ));
        assert!(results[1].is_ok(), "fresh run unaffected by the conflict");
        assert!(results[2].is_ok(), "idempotent re-capture unaffected");
        assert!(pm.load_graph(&fresh.run_id).is_ok());
    }

    /// Tentpole (b): runs of the same workflow share one stored skeleton;
    /// per-run rows shrink to bindings and still rehydrate exactly.
    #[test]
    fn repeated_runs_share_a_template_and_rehydrate_exactly() {
        let obs = Arc::new(preserva_obs::Registry::new());
        let s = store("template");
        let pm = ProvenanceManager::with_metrics(s.clone(), obs.clone());
        let mut graphs = Vec::new();
        let mut runs = Vec::new();
        for _ in 0..4 {
            let (w, t) = run_one();
            graphs.push(pm.capture(&w, &t).unwrap());
            runs.push(t);
        }
        // One skeleton stored, three structural-sharing hits.
        assert_eq!(s.count(TEMPLATES_TABLE).unwrap(), 1);
        let text = obs.render_prometheus();
        assert!(
            text.contains("preserva_prov_template_stores_total 1"),
            "{text}"
        );
        assert!(
            text.contains("preserva_prov_template_hits_total 3"),
            "{text}"
        );
        // Rehydration is exact.
        for (g, t) in graphs.iter().zip(&runs) {
            assert_eq!(pm.load_graph(&t.run_id).unwrap(), *g);
        }
        // The per-run row is measurably smaller than the materialized graph.
        let row = s
            .get(PROVENANCE_TABLE, runs[0].run_id.as_bytes())
            .unwrap()
            .unwrap();
        let materialized = opm_ser::to_json(&graphs[0]);
        assert!(
            row.len() * 2 < materialized.len(),
            "bindings row {} bytes vs materialized {} bytes",
            row.len(),
            materialized.len()
        );
    }

    /// Raw rows written before the template format still load.
    #[test]
    fn legacy_raw_rows_still_load() {
        let s = store("legacy");
        let pm = ProvenanceManager::new(s.clone());
        let (w, t) = run_one();
        let graph = opm_export::export(&w, &t);
        // Simulate a pre-template row: raw OPM-JSON straight into the table.
        s.put(
            PROVENANCE_TABLE,
            t.run_id.as_bytes(),
            opm_ser::to_json(&graph).as_bytes(),
        )
        .unwrap();
        assert_eq!(pm.load_graph(&t.run_id).unwrap(), graph);
    }

    #[test]
    fn unknown_run_is_error() {
        let pm = ProvenanceManager::new(store("unknown"));
        assert!(matches!(
            pm.load_graph("run-xxxx"),
            Err(ProvenanceError::UnknownRun(_))
        ));
        assert!(matches!(
            pm.load_trace("run-xxxx"),
            Err(ProvenanceError::UnknownRun(_))
        ));
    }

    #[test]
    fn captured_graphs_survive_reopen() {
        let dir =
            std::env::temp_dir().join(format!("preserva-provmgr-{}-persist", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run_id;
        {
            let s = Arc::new(TableStore::new(Arc::new(
                Engine::open(&dir, EngineOptions::default()).unwrap(),
            )));
            let pm = ProvenanceManager::new(s);
            let (w, t) = run_one();
            pm.capture(&w, &t).unwrap();
            run_id = t.run_id;
        }
        let s = Arc::new(TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        )));
        let pm = ProvenanceManager::new(s);
        assert!(pm.load_graph(&run_id).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
