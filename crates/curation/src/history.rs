//! Persistent curation history — the paper's ongoing work: "remodelling
//! FNJV metadata database to reflect the history of curation processes
//! (whenever a field is changed …)".
//!
//! [`HistoryStore`] journals [`crate::log::LogEntry`]s through the storage
//! engine (table `curation_history`, keyed by zero-padded sequence so
//! scans return chronological order) and answers the questions curators
//! ask: *what happened to this record?* and *how did this field evolve?*

use preserva_metadata::value::Value;
use preserva_storage::table::TableStore;
use preserva_storage::StorageError;

use crate::log::{CurationEvent, CurationLog, LogEntry};

/// Table holding journaled curation events.
pub const HISTORY_TABLE: &str = "curation_history";

/// Errors from the history store.
#[derive(Debug)]
pub enum HistoryError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A journaled entry failed to (de)serialize.
    Decode(String),
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Storage(e) => write!(f, "history storage: {e}"),
            HistoryError::Decode(m) => write!(f, "history decode: {m}"),
        }
    }
}

impl std::error::Error for HistoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistoryError::Storage(e) => Some(e),
            HistoryError::Decode(_) => None,
        }
    }
}

impl From<StorageError> for HistoryError {
    fn from(e: StorageError) -> Self {
        HistoryError::Storage(e)
    }
}

/// Durable curation history over a shared table store.
pub struct HistoryStore<'a> {
    store: &'a TableStore,
}

impl<'a> HistoryStore<'a> {
    /// Wrap a store.
    pub fn new(store: &'a TableStore) -> Self {
        HistoryStore { store }
    }

    fn next_seq(&self) -> Result<u64, HistoryError> {
        // The highest existing key + 1; scan is fine at curation volumes
        // and keeps the store free of counter state.
        Ok(self
            .store
            .scan(HISTORY_TABLE)?
            .last()
            .and_then(|(k, _)| String::from_utf8(k.clone()).ok())
            .and_then(|s| s.parse::<u64>().ok())
            .map(|s| s + 1)
            .unwrap_or(0))
    }

    /// Persist every entry of an in-memory log, assigning fresh global
    /// sequence numbers. The whole log lands in ONE storage commit: a
    /// crash mid-campaign never leaves a partial journal. Returns the
    /// count written.
    pub fn persist(&self, log: &CurationLog) -> Result<usize, HistoryError> {
        let base = self.next_seq()?;
        let mut session = self.store.session();
        let mut written = 0;
        for (offset, entry) in log.entries().iter().enumerate() {
            let seq = base + offset as u64;
            let mut persisted = entry.clone();
            persisted.seq = seq;
            let bytes =
                serde_json::to_vec(&persisted).map_err(|e| HistoryError::Decode(e.to_string()))?;
            session.put(HISTORY_TABLE, format!("{seq:020}").as_bytes(), &bytes)?;
            written += 1;
        }
        session.commit()?;
        Ok(written)
    }

    /// Every journaled entry, chronologically.
    pub fn all(&self) -> Result<Vec<LogEntry>, HistoryError> {
        self.store
            .scan(HISTORY_TABLE)?
            .into_iter()
            .map(|(_, v)| {
                serde_json::from_slice(&v).map_err(|e| HistoryError::Decode(e.to_string()))
            })
            .collect()
    }

    /// Entries for one record, chronologically.
    pub fn for_record(&self, record_id: &str) -> Result<Vec<LogEntry>, HistoryError> {
        Ok(self
            .all()?
            .into_iter()
            .filter(|e| e.record_id == record_id)
            .collect())
    }

    /// The value history of one field of one record: `(seq, old, new)`
    /// per change, chronologically — the curator's "what did this field
    /// say before 2013?" query.
    pub fn field_history(
        &self,
        record_id: &str,
        field: &str,
    ) -> Result<Vec<(u64, Option<Value>, Value)>, HistoryError> {
        Ok(self
            .for_record(record_id)?
            .into_iter()
            .filter_map(|e| match e.event {
                CurationEvent::FieldChanged {
                    field: f, old, new, ..
                } if f == field => Some((e.seq, old, new)),
                _ => None,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_storage::engine::{Engine, EngineOptions};
    use std::sync::Arc;

    fn store(name: &str) -> TableStore {
        let dir =
            std::env::temp_dir().join(format!("preserva-history-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        ))
    }

    fn change(field: &str, old: Option<&str>, new: &str) -> CurationEvent {
        CurationEvent::FieldChanged {
            field: field.to_string(),
            old: old.map(|s| Value::Text(s.to_string())),
            new: Value::Text(new.to_string()),
            reason: "test".into(),
        }
    }

    #[test]
    fn persist_and_query_record_history() {
        let s = store("basic");
        let h = HistoryStore::new(&s);
        let mut log = CurationLog::new();
        log.append(
            "FNJV-1",
            "names",
            change("species", Some("hyla faber"), "Hyla faber"),
        );
        log.append(
            "FNJV-2",
            "dates",
            change("collect_date", None, "1982-03-15"),
        );
        assert_eq!(h.persist(&log).unwrap(), 2);
        assert_eq!(h.all().unwrap().len(), 2);
        let r1 = h.for_record("FNJV-1").unwrap();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].source, "names");
    }

    #[test]
    fn field_history_tracks_evolution() {
        let s = store("evolution");
        let h = HistoryStore::new(&s);
        // Two curation campaigns (2011, 2013) touching the same field.
        let mut log2011 = CurationLog::new();
        log2011.append(
            "FNJV-1",
            "stage1",
            change("species", Some("hyla faber"), "Hyla faber"),
        );
        h.persist(&log2011).unwrap();
        let mut log2013 = CurationLog::new();
        log2013.append(
            "FNJV-1",
            "names",
            change("species", Some("Hyla faber"), "Boana faber"),
        );
        h.persist(&log2013).unwrap();

        let hist = h.field_history("FNJV-1", "species").unwrap();
        assert_eq!(hist.len(), 2);
        assert!(hist[0].0 < hist[1].0, "chronological order");
        assert_eq!(hist[1].2, Value::Text("Boana faber".into()));
        // The first change's new value is the second's old value.
        assert_eq!(Some(hist[0].2.clone()), hist[1].1);
    }

    #[test]
    fn persist_is_one_commit_per_campaign() {
        let s = store("one-commit");
        let h = HistoryStore::new(&s);
        let mut log = CurationLog::new();
        for i in 0..10 {
            log.append("r", "p", change("f", None, &i.to_string()));
        }
        let before = s.engine().stats().commits;
        assert_eq!(h.persist(&log).unwrap(), 10);
        assert_eq!(s.engine().stats().commits, before + 1);
    }

    #[test]
    fn sequences_continue_across_persist_calls() {
        let s = store("seq");
        let h = HistoryStore::new(&s);
        let mut log = CurationLog::new();
        log.append("r", "p", change("f", None, "1"));
        h.persist(&log).unwrap();
        h.persist(&log).unwrap();
        let all = h.all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[1].seq, 1);
    }

    #[test]
    fn history_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("preserva-history-{}-reopen", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = TableStore::new(Arc::new(
                Engine::open(&dir, EngineOptions::default()).unwrap(),
            ));
            let h = HistoryStore::new(&s);
            let mut log = CurationLog::new();
            log.append("r", "p", change("f", None, "v"));
            h.persist(&log).unwrap();
        }
        let s = TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        ));
        let h = HistoryStore::new(&s);
        assert_eq!(h.all().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_history_queries() {
        let s = store("empty");
        let h = HistoryStore::new(&s);
        assert!(h.all().unwrap().is_empty());
        assert!(h.for_record("nope").unwrap().is_empty());
        assert!(h.field_history("nope", "f").unwrap().is_empty());
    }
}
