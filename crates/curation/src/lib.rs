#![warn(missing_docs)]

//! `preserva-curation` — the metadata curation toolkit implementing the
//! paper's two-stage prototype (§IV-B):
//!
//! **Stage 1** (three steps):
//! 1. basic cleaning — domain checks and syntactic corrections
//!    ([`cleaning`], composed via [`pass`] / [`pipeline`]);
//! 2. retro-georeferencing — adding coordinates to pre-GPS records
//!    ([`cleaning::GeoreferencePass`] over a gazetteer);
//! 3. filling missing environmental fields from authoritative sources
//!    given location + date ([`envfill`] over the synthetic [`climate`]
//!    archive).
//!
//! **Stage 2**: spatial analysis to find misidentified species
//! (re-exported from `preserva-gazetteer`'s outlier module; wired in
//! [`pipeline`]).
//!
//! The case study's centrepiece, the **Outdated Species Name Detection
//! Workflow**, lives in [`outdated`]: it checks every distinct species
//! name against the Catalogue-of-Life service and persists updated names
//! in a *separate table referencing the unchanged original records*
//! ([`outdated::persist_updates`]), flagged for biologist review
//! ([`review`]). Every modification is journaled in the [`log`].

pub mod cleaning;
pub mod climate;
pub mod delta;
pub mod envfill;
pub mod history;
pub mod log;
pub mod outdated;
pub mod pass;
pub mod pipeline;
pub mod review;
pub mod spatial;

pub use delta::{DeltaPlan, DeltaSummary, TouchedFields};
pub use log::{CurationEvent, CurationLog};
pub use outdated::{NameCheckOutcome, OutdatedNameDetector, OutdatedNameReport};
pub use pass::{CurationPass, FieldChange, PassOutcome, ReviewFlag};
pub use pipeline::{CurationPipeline, PipelineSummary};
