//! The human-review queue: "before such names are persisted in the
//! database, they are flagged to be checked by biologists" (§IV-B).
//! Every automated proposal waits here until a curator decides.

use serde::{Deserialize, Serialize};

use crate::log::{CurationEvent, CurationLog};

/// What kind of proposal awaits review.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReviewItem {
    /// Species-name update old → new.
    NameUpdate {
        /// Affected record (or batch marker).
        record_id: String,
        /// The outdated name.
        old: String,
        /// The proposed replacement.
        new: String,
    },
    /// A pass-raised flag.
    Flag {
        /// Affected record.
        record_id: String,
        /// Field concerned (None = whole record).
        field: Option<String>,
        /// What needs review.
        message: String,
    },
}

/// State of one queue entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReviewState {
    /// Awaiting a curator's decision.
    Pending,
    /// Approved.
    Approved {
        /// Who approved it.
        curator: String,
    },
    /// Rejected.
    Rejected {
        /// Who rejected it.
        curator: String,
        /// Why.
        reason: String,
    },
}

/// One queue entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewEntry {
    /// Queue-assigned id.
    pub id: u64,
    /// The proposal under review.
    pub item: ReviewItem,
    /// Its current decision state.
    pub state: ReviewState,
}

/// The queue itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReviewQueue {
    entries: Vec<ReviewEntry>,
}

impl ReviewQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a proposal; returns its id.
    pub fn submit(&mut self, item: ReviewItem) -> u64 {
        let id = self.entries.len() as u64;
        self.entries.push(ReviewEntry {
            id,
            item,
            state: ReviewState::Pending,
        });
        id
    }

    /// Pending entries.
    pub fn pending(&self) -> impl Iterator<Item = &ReviewEntry> {
        self.entries
            .iter()
            .filter(|e| e.state == ReviewState::Pending)
    }

    /// All entries.
    pub fn entries(&self) -> &[ReviewEntry] {
        &self.entries
    }

    fn decide(&mut self, id: u64, state: ReviewState) -> Result<&ReviewEntry, ReviewError> {
        let entry = self
            .entries
            .get_mut(id as usize)
            .ok_or(ReviewError::UnknownEntry(id))?;
        if entry.state != ReviewState::Pending {
            return Err(ReviewError::AlreadyDecided(id));
        }
        entry.state = state;
        Ok(entry)
    }

    /// Approve a pending entry; journals the validation.
    pub fn approve(
        &mut self,
        id: u64,
        curator: &str,
        log: &mut CurationLog,
    ) -> Result<(), ReviewError> {
        let entry = self.decide(
            id,
            ReviewState::Approved {
                curator: curator.to_string(),
            },
        )?;
        let (record_id, subject) = match &entry.item {
            ReviewItem::NameUpdate {
                record_id,
                old,
                new,
            } => (record_id.clone(), format!("{old} -> {new}")),
            ReviewItem::Flag {
                record_id, message, ..
            } => (record_id.clone(), message.clone()),
        };
        log.append(
            &record_id,
            "review",
            CurationEvent::Validated {
                subject,
                curator: curator.to_string(),
            },
        );
        Ok(())
    }

    /// Reject a pending entry; journals the rejection.
    pub fn reject(
        &mut self,
        id: u64,
        curator: &str,
        reason: &str,
        log: &mut CurationLog,
    ) -> Result<(), ReviewError> {
        let entry = self.decide(
            id,
            ReviewState::Rejected {
                curator: curator.to_string(),
                reason: reason.to_string(),
            },
        )?;
        let (record_id, subject) = match &entry.item {
            ReviewItem::NameUpdate {
                record_id,
                old,
                new,
            } => (record_id.clone(), format!("{old} -> {new}")),
            ReviewItem::Flag {
                record_id, message, ..
            } => (record_id.clone(), message.clone()),
        };
        log.append(
            &record_id,
            "review",
            CurationEvent::Rejected {
                subject,
                curator: curator.to_string(),
                reason: reason.to_string(),
            },
        );
        Ok(())
    }
}

/// Review-queue errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReviewError {
    /// No entry with that id exists.
    UnknownEntry(u64),
    /// The entry was already approved or rejected.
    AlreadyDecided(u64),
}

impl std::fmt::Display for ReviewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReviewError::UnknownEntry(id) => write!(f, "unknown review entry {id}"),
            ReviewError::AlreadyDecided(id) => write!(f, "review entry {id} already decided"),
        }
    }
}

impl std::error::Error for ReviewError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_update() -> ReviewItem {
        ReviewItem::NameUpdate {
            record_id: "FNJV-3".into(),
            old: "Elachistocleis ovalis".into(),
            new: "Nomen inquirenda".into(),
        }
    }

    #[test]
    fn submit_approve_flow() {
        let mut q = ReviewQueue::new();
        let mut log = CurationLog::new();
        let id = q.submit(name_update());
        assert_eq!(q.pending().count(), 1);
        q.approve(id, "Dr. Toledo", &mut log).unwrap();
        assert_eq!(q.pending().count(), 0);
        assert!(matches!(q.entries()[0].state, ReviewState::Approved { .. }));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn reject_flow_records_reason() {
        let mut q = ReviewQueue::new();
        let mut log = CurationLog::new();
        let id = q.submit(ReviewItem::Flag {
            record_id: "FNJV-9".into(),
            field: Some("location".into()),
            message: "too vague".into(),
        });
        q.reject(id, "Dr. Toledo", "location is fine", &mut log)
            .unwrap();
        match &q.entries()[0].state {
            ReviewState::Rejected { reason, .. } => assert_eq!(reason, "location is fine"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            log.entries()[0].event,
            CurationEvent::Rejected { .. }
        ));
    }

    #[test]
    fn double_decision_rejected() {
        let mut q = ReviewQueue::new();
        let mut log = CurationLog::new();
        let id = q.submit(name_update());
        q.approve(id, "a", &mut log).unwrap();
        assert_eq!(
            q.approve(id, "b", &mut log),
            Err(ReviewError::AlreadyDecided(id))
        );
        assert_eq!(
            q.reject(99, "a", "r", &mut log),
            Err(ReviewError::UnknownEntry(99))
        );
    }
}
