//! Stage-1 cleaning passes: syntactic corrections, domain checks,
//! legacy-format parsing, taxonomy-field consistency and
//! retro-georeferencing.

use preserva_gazetteer::db::Gazetteer;
use preserva_gazetteer::georef::{georeference, Georef};
use preserva_metadata::parse;
use preserva_metadata::record::Record;
use preserva_metadata::schema::{Schema, SchemaViolation};
use preserva_metadata::value::Value;
use preserva_taxonomy::name::ScientificName;

use crate::pass::{CurationPass, PassDependencies, PassOutcome};

/// Trims and collapses whitespace in every text field.
pub struct WhitespacePass;

impl CurationPass for WhitespacePass {
    fn name(&self) -> &str {
        "whitespace-normalization"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        for (field, value) in record.fields() {
            if let Value::Text(s) = value {
                let normalized = s.split_whitespace().collect::<Vec<_>>().join(" ");
                if normalized != *s {
                    out = out.change(
                        field,
                        Some(value.clone()),
                        Value::Text(normalized),
                        "collapsed whitespace",
                    );
                }
            }
        }
        out
    }
}

/// Canonicalizes the species binomial (case, spacing, authorship split)
/// and back-fills the genus field from it.
pub struct SpeciesNamePass;

impl CurationPass for SpeciesNamePass {
    fn name(&self) -> &str {
        "species-name-canonicalization"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        let Some(raw) = record.get_text("species") else {
            return out;
        };
        match ScientificName::parse(raw) {
            Some(name) => {
                let canonical = name.canonical();
                if canonical != raw {
                    out = out.change(
                        "species",
                        Some(Value::Text(raw.to_string())),
                        Value::Text(canonical),
                        "canonicalized binomial",
                    );
                }
                let genus_ok = record
                    .get_text("genus")
                    .map(|g| g == name.genus())
                    .unwrap_or(false);
                if !genus_ok {
                    out = out.change(
                        "genus",
                        record.get("genus").cloned(),
                        Value::Text(name.genus().to_string()),
                        "genus derived from species binomial",
                    );
                }
            }
            None => {
                out = out.flag(Some("species"), "species is not a parseable binomial");
            }
        }
        out
    }

    fn dependencies(&self) -> PassDependencies {
        PassDependencies::on_fields(&["species", "genus"])
    }
}

/// Parses legacy text dates/times into typed values
/// (`"15.III.1982"` → `Date`).
pub struct LegacyDatePass;

impl CurationPass for LegacyDatePass {
    fn name(&self) -> &str {
        "legacy-date-parsing"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        if let Some(Value::Text(s)) = record.get("collect_date") {
            match parse::parse_date(s) {
                Some(d) => {
                    out = out.change(
                        "collect_date",
                        Some(Value::Text(s.clone())),
                        Value::Date(d),
                        "parsed legacy date format",
                    )
                }
                None => out = out.flag(Some("collect_date"), "unparseable date"),
            }
        }
        if let Some(Value::Text(s)) = record.get("collect_time") {
            match parse::parse_time(s) {
                Some(t) => {
                    out = out.change(
                        "collect_time",
                        Some(Value::Text(s.clone())),
                        Value::Time(t),
                        "parsed legacy time format",
                    )
                }
                None => out = out.flag(Some("collect_time"), "unparseable time"),
            }
        }
        out
    }

    fn dependencies(&self) -> PassDependencies {
        PassDependencies::on_fields(&["collect_date", "collect_time"])
    }
}

/// Flags domain violations against a schema (checking attribute domains —
/// the paper's first cleaning kind). Violations need review, not blind
/// repair.
pub struct DomainCheckPass {
    schema: Schema,
}

impl DomainCheckPass {
    /// Check against the given schema.
    pub fn new(schema: Schema) -> Self {
        DomainCheckPass { schema }
    }
}

impl CurationPass for DomainCheckPass {
    fn name(&self) -> &str {
        "domain-checks"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        for v in self.schema.validate(record) {
            let field = match &v {
                SchemaViolation::MissingRequired { field }
                | SchemaViolation::TypeMismatch { field, .. }
                | SchemaViolation::Domain { field, .. }
                | SchemaViolation::UnknownField { field } => field.clone(),
            };
            out = out.flag(Some(&field), &v.to_string());
        }
        out
    }
}

/// Retro-georeferencing: fills the `coordinates` field from the place
/// fields when absent (stage-1 step 2). Ambiguous matches are flagged for
/// the curator.
pub struct GeoreferencePass {
    gazetteer: Gazetteer,
}

impl GeoreferencePass {
    /// Georeference against the given gazetteer.
    pub fn new(gazetteer: Gazetteer) -> Self {
        GeoreferencePass { gazetteer }
    }
}

impl CurationPass for GeoreferencePass {
    fn name(&self) -> &str {
        "retro-georeferencing"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        if record.is_filled("coordinates") {
            return out; // GPS-era record; nothing to do
        }
        let result = georeference(
            &self.gazetteer,
            record.get_text("country"),
            record.get_text("state"),
            record.get_text("city"),
            record.get_text("location"),
        );
        match result {
            Georef::Resolved {
                point,
                uncertainty_km,
                source,
            } => {
                let coords = preserva_metadata::value::Coordinates::new(point.lat, point.lon)
                    .expect("gazetteer points are valid");
                out = out
                    .change(
                        "coordinates",
                        None,
                        Value::Coordinates(coords),
                        &format!("georeferenced from {source:?}"),
                    )
                    .change(
                        "coordinate_uncertainty_m",
                        record.get("coordinate_uncertainty_m").cloned(),
                        Value::Float(uncertainty_km * 1000.0),
                        "uncertainty radius of the gazetteer match",
                    );
            }
            Georef::NeedsReview(options) => {
                out = out.flag(
                    Some("location"),
                    &format!("ambiguous place: {}", options.join(" | ")),
                );
            }
            Georef::Unresolvable => {
                out = out.flag(Some("location"), "no gazetteer match for any place field");
            }
        }
        out
    }

    fn dependencies(&self) -> PassDependencies {
        PassDependencies::on_fields(&["coordinates", "country", "state", "city", "location"])
            .with_source("gazetteer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_gazetteer::builder::build_gazetteer;
    use preserva_metadata::fnjv;

    #[test]
    fn whitespace_pass_normalizes() {
        let r = Record::new("r").with("city", Value::Text("  Campinas   SP ".into()));
        let o = WhitespacePass.inspect(&r);
        assert_eq!(o.changes.len(), 1);
        assert_eq!(o.changes[0].new, Value::Text("Campinas SP".into()));
        // Idempotent: applying then re-inspecting proposes nothing.
        let r2 = crate::pass::apply(&r, &o);
        assert!(WhitespacePass.inspect(&r2).is_clean());
    }

    #[test]
    fn species_pass_canonicalizes_and_backfills_genus() {
        let r = Record::new("r").with("species", Value::Text("hyla FABER".into()));
        let o = SpeciesNamePass.inspect(&r);
        assert_eq!(o.changes.len(), 2);
        let r2 = crate::pass::apply(&r, &o);
        assert_eq!(r2.get_text("species"), Some("Hyla faber"));
        assert_eq!(r2.get_text("genus"), Some("Hyla"));
        assert!(SpeciesNamePass.inspect(&r2).is_clean());
    }

    #[test]
    fn species_pass_flags_garbage() {
        let r = Record::new("r").with("species", Value::Text("???".into()));
        let o = SpeciesNamePass.inspect(&r);
        assert!(o.changes.is_empty());
        assert_eq!(o.flags.len(), 1);
    }

    #[test]
    fn legacy_dates_parsed() {
        let r = Record::new("r")
            .with("collect_date", Value::Text("15.III.1982".into()))
            .with("collect_time", Value::Text("7h45".into()));
        let o = LegacyDatePass.inspect(&r);
        assert_eq!(o.changes.len(), 2);
        let r2 = crate::pass::apply(&r, &o);
        assert!(matches!(r2.get("collect_date"), Some(Value::Date(_))));
        assert!(matches!(r2.get("collect_time"), Some(Value::Time(_))));
        assert!(LegacyDatePass.inspect(&r2).is_clean());
    }

    #[test]
    fn unparseable_date_flagged() {
        let r = Record::new("r").with("collect_date", Value::Text("spring".into()));
        let o = LegacyDatePass.inspect(&r);
        assert!(o.changes.is_empty());
        assert_eq!(o.flags.len(), 1);
    }

    #[test]
    fn domain_check_flags_violations() {
        let r = Record::new("r").with("air_temperature_c", Value::Float(99.0));
        let o = DomainCheckPass::new(fnjv::schema()).inspect(&r);
        assert!(o
            .flags
            .iter()
            .any(|f| f.field.as_deref() == Some("air_temperature_c")));
        // Missing required fields are flagged too.
        assert!(o
            .flags
            .iter()
            .any(|f| f.field.as_deref() == Some("species")));
    }

    #[test]
    fn georeference_fills_coordinates() {
        let gaz = build_gazetteer(0, 1);
        let r = Record::new("r")
            .with("country", Value::Text("Brazil".into()))
            .with("state", Value::Text("São Paulo".into()))
            .with("city", Value::Text("Campinas".into()));
        let o = GeoreferencePass::new(gaz).inspect(&r);
        assert_eq!(o.changes.len(), 2);
        let r2 = crate::pass::apply(&r, &o);
        let c = r2.get("coordinates").unwrap();
        match c {
            Value::Coordinates(c) => assert!((c.lat + 22.9).abs() < 0.1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn georeference_skips_gps_records() {
        let gaz = build_gazetteer(0, 1);
        let r = Record::new("r").with(
            "coordinates",
            Value::Coordinates(preserva_metadata::value::Coordinates::new(-22.9, -47.0).unwrap()),
        );
        assert!(GeoreferencePass::new(gaz).inspect(&r).is_clean());
    }

    #[test]
    fn georeference_flags_unresolvable() {
        let gaz = build_gazetteer(0, 1);
        let r = Record::new("r").with("country", Value::Text("Atlantis".into()));
        let o = GeoreferencePass::new(gaz).inspect(&r);
        assert_eq!(o.flags.len(), 1);
    }
}
