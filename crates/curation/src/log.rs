//! The curation log: a journal of every metadata modification — the
//! "historical log of metadata modifications" the paper's strategy
//! provides, and the input for the planned "remodelling [of the] FNJV
//! metadata database to reflect the history of curation processes".

use serde::{Deserialize, Serialize};

use preserva_metadata::value::Value;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CurationEvent {
    /// A pass changed a field.
    FieldChanged {
        /// The changed field.
        field: String,
        /// Previous value (None = was absent).
        old: Option<Value>,
        /// New value.
        new: Value,
        /// Why the pass changed it.
        reason: String,
    },
    /// A pass flagged something for review.
    Flagged {
        /// Field concerned (None = whole record).
        field: Option<String>,
        /// What needs a human look.
        message: String,
    },
    /// The name checker proposed an update (old → new).
    NameUpdateProposed {
        /// The outdated name.
        old: String,
        /// The proposed up-to-date name.
        new: String,
    },
    /// A curator validated a proposal.
    Validated {
        /// What was approved (rendered).
        subject: String,
        /// Who approved it.
        curator: String,
    },
    /// A curator rejected a proposal.
    Rejected {
        /// What was rejected (rendered).
        subject: String,
        /// Who rejected it.
        curator: String,
        /// Why.
        reason: String,
    },
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Monotone sequence number (the log's logical clock).
    pub seq: u64,
    /// Record the event concerns.
    pub record_id: String,
    /// Which pass / actor produced the event.
    pub source: String,
    /// What happened.
    pub event: CurationEvent,
}

/// An append-only curation journal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CurationLog {
    entries: Vec<LogEntry>,
}

impl CurationLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, returning its sequence number.
    pub fn append(&mut self, record_id: &str, source: &str, event: CurationEvent) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(LogEntry {
            seq,
            record_id: record_id.to_string(),
            source: source.to_string(),
            event,
        });
        seq
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries concerning one record.
    pub fn for_record<'a>(&'a self, record_id: &'a str) -> impl Iterator<Item = &'a LogEntry> {
        self.entries
            .iter()
            .filter(move |e| e.record_id == record_id)
    }

    /// Count of field changes journaled.
    pub fn change_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.event, CurationEvent::FieldChanged { .. }))
            .count()
    }

    /// Count of review flags journaled.
    pub fn flag_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.event, CurationEvent::Flagged { .. }))
            .count()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotone_seq() {
        let mut log = CurationLog::new();
        let a = log.append(
            "r1",
            "whitespace",
            CurationEvent::Flagged {
                field: None,
                message: "x".into(),
            },
        );
        let b = log.append(
            "r2",
            "dates",
            CurationEvent::FieldChanged {
                field: "collect_date".into(),
                old: None,
                new: Value::Text("1982-03-15".into()),
                reason: "parsed".into(),
            },
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.change_count(), 1);
        assert_eq!(log.flag_count(), 1);
    }

    #[test]
    fn per_record_query() {
        let mut log = CurationLog::new();
        for i in 0..3 {
            log.append(
                if i == 1 { "special" } else { "other" },
                "p",
                CurationEvent::Validated {
                    subject: "s".into(),
                    curator: "c".into(),
                },
            );
        }
        assert_eq!(log.for_record("special").count(), 1);
        assert_eq!(log.for_record("other").count(), 2);
        assert_eq!(log.for_record("missing").count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut log = CurationLog::new();
        log.append(
            "r",
            "names",
            CurationEvent::NameUpdateProposed {
                old: "Elachistocleis ovalis".into(),
                new: "Nomen inquirenda".into(),
            },
        );
        let s = serde_json::to_string(&log).unwrap();
        let back: CurationLog = serde_json::from_str(&s).unwrap();
        assert_eq!(log.entries(), back.entries());
    }
}
