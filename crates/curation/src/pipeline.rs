//! The curation pipeline: ordered passes over a collection, with every
//! change journaled and every flag routed to the review queue.

use preserva_metadata::record::Record;

use crate::log::{CurationEvent, CurationLog};
use crate::pass::{self, CurationPass};
use crate::review::{ReviewItem, ReviewQueue};

/// Aggregate result of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineSummary {
    /// Records processed.
    pub records_total: usize,
    /// Records at least one pass changed.
    pub records_changed: usize,
    /// Individual field changes applied.
    pub field_changes: usize,
    /// Review flags raised.
    pub flags: usize,
}

/// An ordered sequence of curation passes.
#[derive(Default)]
pub struct CurationPipeline {
    passes: Vec<Box<dyn CurationPass>>,
}

impl std::fmt::Debug for CurationPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CurationPipeline")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl CurationPipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pass (builder style). Order matters: e.g. legacy dates
    /// must parse before the environmental filler can use them.
    pub fn with_pass(mut self, p: Box<dyn CurationPass>) -> Self {
        self.passes.push(p);
        self
    }

    /// Pass names in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The passes themselves, in execution order (used by the delta
    /// runner to consult per-pass dependency declarations).
    pub fn passes(&self) -> &[Box<dyn CurationPass>] {
        &self.passes
    }

    /// Run all passes over the collection. Returns curated copies (the
    /// input slice is untouched), journaling into `log` and flagging into
    /// `queue`.
    pub fn run(
        &self,
        records: &[Record],
        log: &mut CurationLog,
        queue: &mut ReviewQueue,
    ) -> (Vec<Record>, PipelineSummary) {
        let mut summary = PipelineSummary {
            records_total: records.len(),
            ..Default::default()
        };
        let mut curated = Vec::with_capacity(records.len());
        for record in records {
            let mut current = record.clone();
            let mut changed = false;
            for p in &self.passes {
                let outcome = p.inspect(&current);
                for c in &outcome.changes {
                    log.append(
                        &current.id,
                        p.name(),
                        CurationEvent::FieldChanged {
                            field: c.field.clone(),
                            old: c.old.clone(),
                            new: c.new.clone(),
                            reason: c.reason.clone(),
                        },
                    );
                    summary.field_changes += 1;
                    changed = true;
                }
                for f in &outcome.flags {
                    log.append(
                        &current.id,
                        p.name(),
                        CurationEvent::Flagged {
                            field: f.field.clone(),
                            message: f.message.clone(),
                        },
                    );
                    queue.submit(ReviewItem::Flag {
                        record_id: current.id.clone(),
                        field: f.field.clone(),
                        message: f.message.clone(),
                    });
                    summary.flags += 1;
                }
                current = pass::apply(&current, &outcome);
            }
            if changed {
                summary.records_changed += 1;
            }
            curated.push(current);
        }
        (curated, summary)
    }

    /// The stage-1 pipeline of the paper, in its three-step order.
    pub fn stage1(
        gazetteer: preserva_gazetteer::db::Gazetteer,
        schema: preserva_metadata::schema::Schema,
    ) -> CurationPipeline {
        use crate::cleaning::*;
        use crate::envfill::EnvironmentalFillPass;
        CurationPipeline::new()
            .with_pass(Box::new(WhitespacePass))
            .with_pass(Box::new(SpeciesNamePass))
            .with_pass(Box::new(LegacyDatePass))
            .with_pass(Box::new(GeoreferencePass::new(gazetteer)))
            .with_pass(Box::new(EnvironmentalFillPass))
            .with_pass(Box::new(DomainCheckPass::new(schema)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_gazetteer::builder::build_gazetteer;
    use preserva_metadata::fnjv;
    use preserva_metadata::value::Value;

    fn dirty_record() -> Record {
        Record::new("FNJV-42")
            .with("phylum", Value::Text("Chordata".into()))
            .with("class", Value::Text("Amphibia".into()))
            .with("order", Value::Text("Anura".into()))
            .with("family", Value::Text("Hylidae".into()))
            .with("species", Value::Text("  hyla   faber ".into()))
            .with("collect_date", Value::Text("15.III.1982".into()))
            .with("country", Value::Text("Brazil".into()))
            .with("state", Value::Text("São Paulo".into()))
            .with("city", Value::Text("Campinas".into()))
    }

    fn pipeline() -> CurationPipeline {
        CurationPipeline::stage1(build_gazetteer(0, 1), fnjv::schema())
    }

    #[test]
    fn stage1_fixes_dirty_record_end_to_end() {
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (curated, summary) = pipeline().run(&[dirty_record()], &mut log, &mut queue);
        let r = &curated[0];
        assert_eq!(r.get_text("species"), Some("Hyla faber"));
        assert_eq!(r.get_text("genus"), Some("Hyla"));
        assert!(matches!(r.get("collect_date"), Some(Value::Date(_))));
        assert!(matches!(r.get("coordinates"), Some(Value::Coordinates(_))));
        assert!(r.is_filled("air_temperature_c"));
        assert!(r.is_filled("atmospheric_conditions"));
        assert_eq!(summary.records_total, 1);
        assert_eq!(summary.records_changed, 1);
        assert!(summary.field_changes >= 6);
        assert!(log.change_count() >= 6);
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let p = pipeline();
        let (once, _) = p.run(&[dirty_record()], &mut log, &mut queue);
        let flags_before = queue.entries().len();
        let (twice, summary2) = p.run(&once, &mut log, &mut queue);
        assert_eq!(once, twice);
        assert_eq!(summary2.field_changes, 0);
        // Re-runs may re-raise the same *flags* (they are review items,
        // not changes), but a fully-clean record raises none.
        assert_eq!(queue.entries().len(), flags_before);
    }

    #[test]
    fn originals_never_mutated() {
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let original = dirty_record();
        let input = vec![original.clone()];
        pipeline().run(&input, &mut log, &mut queue);
        assert_eq!(input[0], original);
    }

    #[test]
    fn flags_routed_to_review_queue() {
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let bad = Record::new("FNJV-99").with("species", Value::Text("???".into()));
        let (_, summary) = pipeline().run(&[bad], &mut log, &mut queue);
        assert!(summary.flags > 0);
        assert_eq!(queue.pending().count(), summary.flags);
        assert_eq!(log.flag_count(), summary.flags);
    }

    #[test]
    fn pass_order_matters_for_envfill() {
        // Without date parsing first, the filler can't run: construct a
        // pipeline with envfill before date parsing and observe the gap.
        use crate::cleaning::*;
        use crate::envfill::EnvironmentalFillPass;
        let wrong_order = CurationPipeline::new()
            .with_pass(Box::new(EnvironmentalFillPass))
            .with_pass(Box::new(GeoreferencePass::new(build_gazetteer(0, 1))))
            .with_pass(Box::new(LegacyDatePass));
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (curated, _) = wrong_order.run(&[dirty_record()], &mut log, &mut queue);
        assert!(!curated[0].is_filled("air_temperature_c"));
    }

    #[test]
    fn pass_names_listed_in_order() {
        let p = pipeline();
        let names = p.pass_names();
        assert_eq!(names[0], "whitespace-normalization");
        assert_eq!(names.last().copied(), Some("domain-checks"));
        assert_eq!(names.len(), 6);
    }
}
