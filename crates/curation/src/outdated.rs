//! The Outdated Species Name Detection Workflow's core logic (paper §IV-B
//! second implementation effort, validated by experts in October 2013).
//!
//! Given a collection and the Catalogue-of-Life service, check every
//! *distinct* species name, report which are outdated and what their
//! up-to-date names are (Figure 2), and persist the updated names in a
//! **separate table that references the unchanged original records** —
//! "important in order to maintain the original collection unchanged …
//! It also provides a historical log of metadata modifications."

use std::collections::BTreeMap;

use preserva_metadata::record::Record;
use preserva_storage::table::TableStore;
use preserva_taxonomy::name::ScientificName;
use preserva_taxonomy::service::{ColService, LookupOutcome};

/// Result of checking one distinct name.
#[derive(Debug, Clone, PartialEq)]
pub enum NameCheckOutcome {
    /// The name is the current accepted one.
    Current,
    /// The name is outdated; adopt `accepted`.
    Outdated {
        /// The up-to-date accepted name.
        accepted: ScientificName,
    },
    /// *Nomen inquirendum* — no valid replacement exists.
    Doubtful,
    /// Probably a typo of `suggestion`.
    Misspelled {
        /// The closest known name.
        suggestion: ScientificName,
        /// Edit distance from the queried spelling.
        distance: usize,
    },
    /// Unknown to the catalogue entirely.
    NotFound,
    /// Service stayed unavailable through every retry.
    Unavailable,
}

/// The Figure-2 report: progress counts plus the old → new name table.
#[derive(Debug, Clone, Default)]
pub struct OutdatedNameReport {
    /// Total records processed (paper: 11,898).
    pub records_processed: usize,
    /// Distinct species names analyzed (paper: 1,929).
    pub distinct_names: usize,
    /// Names still current.
    pub current: usize,
    /// Outdated names with their updated replacement (paper: 134).
    pub outdated: Vec<(ScientificName, ScientificName)>,
    /// Names demoted to *nomen inquirendum* (no replacement).
    pub doubtful: Vec<ScientificName>,
    /// Probable misspellings with suggestions.
    pub misspelled: Vec<(ScientificName, ScientificName, usize)>,
    /// Names the service doesn't know at all.
    pub not_found: Vec<ScientificName>,
    /// Names that could not be checked (service unavailable).
    pub unavailable: Vec<ScientificName>,
    /// Records whose species name is not a parseable binomial.
    pub unparseable_records: usize,
    /// record-id → distinct-name index, for the reference table.
    pub record_names: BTreeMap<String, ScientificName>,
}

impl OutdatedNameReport {
    /// Names that received *some* verdict (excludes unavailable).
    pub fn checked(&self) -> usize {
        self.distinct_names - self.unavailable.len()
    }

    /// Fraction of checked names that are outdated (paper: 7%).
    pub fn outdated_fraction(&self) -> f64 {
        if self.checked() == 0 {
            0.0
        } else {
            self.outdated.len() as f64 / self.checked() as f64
        }
    }

    /// The case study's accuracy dimension: correct names / checked names
    /// (paper: 93%). "Correct" = still the accepted current name.
    pub fn accuracy(&self) -> f64 {
        if self.checked() == 0 {
            return 1.0;
        }
        self.current as f64 / self.checked() as f64
    }

    /// Render the Figure-2 progress panel.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("Outdated species name detection — summary\n");
        out.push_str(&format!(
            "  records processed:        {}\n",
            self.records_processed
        ));
        out.push_str(&format!(
            "  distinct species names:   {}\n",
            self.distinct_names
        ));
        out.push_str(&format!(
            "  outdated names detected:  {} ({:.0}% of names analyzed)\n",
            self.outdated.len(),
            self.outdated_fraction() * 100.0
        ));
        out.push_str(&format!(
            "  nomina inquirenda:        {}\n",
            self.doubtful.len()
        ));
        out.push_str(&format!(
            "  probable misspellings:    {}\n",
            self.misspelled.len()
        ));
        out.push_str(&format!(
            "  unknown to catalogue:     {}\n",
            self.not_found.len()
        ));
        out.push_str(&format!(
            "  unavailable (unchecked):  {}\n",
            self.unavailable.len()
        ));
        out.push_str(&format!(
            "  accuracy:                 {:.1}%\n",
            self.accuracy() * 100.0
        ));
        if !self.outdated.is_empty() {
            out.push_str("  updated names (flagged for biologist review):\n");
            for (old, new) in self.outdated.iter().take(10) {
                out.push_str(&format!("    {old}  →  {new}\n"));
            }
            if self.outdated.len() > 10 {
                out.push_str(&format!("    … and {} more\n", self.outdated.len() - 10));
            }
        }
        out
    }
}

/// The detector: wraps the service and a retry budget.
pub struct OutdatedNameDetector<'a> {
    service: &'a ColService,
    max_attempts: u32,
}

impl<'a> OutdatedNameDetector<'a> {
    /// Create a detector; `max_attempts` per name (availability 0.9 makes
    /// 3 attempts fail ~0.1% of the time).
    pub fn new(service: &'a ColService, max_attempts: u32) -> Self {
        OutdatedNameDetector {
            service,
            max_attempts,
        }
    }

    /// Check one name.
    pub fn check(&self, name: &ScientificName) -> NameCheckOutcome {
        match self.service.lookup_with_retries(name, self.max_attempts) {
            Err(_) => NameCheckOutcome::Unavailable,
            Ok(LookupOutcome::Current { .. }) => NameCheckOutcome::Current,
            Ok(LookupOutcome::Outdated { accepted, .. }) => NameCheckOutcome::Outdated { accepted },
            Ok(LookupOutcome::Doubtful) => NameCheckOutcome::Doubtful,
            Ok(LookupOutcome::Misspelled {
                suggestion,
                distance,
            }) => NameCheckOutcome::Misspelled {
                suggestion,
                distance,
            },
            Ok(LookupOutcome::NotFound) => NameCheckOutcome::NotFound,
        }
    }

    /// Check a whole collection: each *distinct* name is checked once
    /// (the paper checks 1,929 distinct names across 11,898 records).
    pub fn check_collection(&self, records: &[Record]) -> OutdatedNameReport {
        let mut report = OutdatedNameReport {
            records_processed: records.len(),
            ..Default::default()
        };
        let mut distinct: BTreeMap<ScientificName, Vec<String>> = BTreeMap::new();
        for r in records {
            match r.get_text("species").and_then(ScientificName::parse) {
                Some(name) => {
                    let bare = name.bare();
                    report.record_names.insert(r.id.clone(), bare.clone());
                    distinct.entry(bare).or_default().push(r.id.clone());
                }
                None => report.unparseable_records += 1,
            }
        }
        report.distinct_names = distinct.len();
        for name in distinct.keys() {
            match self.check(name) {
                NameCheckOutcome::Current => report.current += 1,
                NameCheckOutcome::Outdated { accepted } => {
                    report.outdated.push((name.clone(), accepted));
                }
                NameCheckOutcome::Doubtful => report.doubtful.push(name.clone()),
                NameCheckOutcome::Misspelled {
                    suggestion,
                    distance,
                } => {
                    report.misspelled.push((name.clone(), suggestion, distance));
                }
                NameCheckOutcome::NotFound => report.not_found.push(name.clone()),
                NameCheckOutcome::Unavailable => report.unavailable.push(name.clone()),
            }
        }
        report
    }
}

/// Table names used by [`persist_updates`].
pub const UPDATED_NAMES_TABLE: &str = "updated_names";
/// Table mapping affected record ids to their outdated name.
pub const NAME_REFS_TABLE: &str = "name_refs";

/// Persist detected updates: the `updated_names` table maps each outdated
/// name to its replacement (flagged unverified until a biologist approves)
/// and `name_refs` maps each affected record id to its outdated name. The
/// original records table is **never touched**. Both tables are written in
/// ONE storage commit so a crash can't leave a replacement name without
/// the records it affects.
pub fn persist_updates(
    store: &TableStore,
    report: &OutdatedNameReport,
) -> Result<usize, preserva_storage::StorageError> {
    let mut session = store.session();
    let mut written = 0usize;
    for (old, new) in &report.outdated {
        let value = serde_json::json!({
            "old": old.canonical(),
            "new": new.canonical(),
            "verified": false,
        });
        session.put(
            UPDATED_NAMES_TABLE,
            old.canonical().as_bytes(),
            value.to_string().as_bytes(),
        )?;
        written += 1;
    }
    let outdated: std::collections::BTreeSet<&ScientificName> =
        report.outdated.iter().map(|(old, _)| old).collect();
    for (record_id, name) in &report.record_names {
        if outdated.contains(name) {
            session.put(
                NAME_REFS_TABLE,
                record_id.as_bytes(),
                name.canonical().as_bytes(),
            )?;
            written += 1;
        }
    }
    session.commit()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::value::Value;
    use preserva_storage::engine::{Engine, EngineOptions};
    use preserva_taxonomy::backbone::{Backbone, Classification, Taxon};
    use preserva_taxonomy::checklist::{Checklist, Evolution};
    use preserva_taxonomy::service::ServiceConfig;
    use std::sync::Arc;

    fn n(s: &str) -> ScientificName {
        ScientificName::parse(s).unwrap()
    }

    fn service() -> ColService {
        let mut b = Backbone::new();
        for name in [
            "Elachistocleis ovalis",
            "Hyla faber",
            "Scinax ruber",
            "Hyla dubia",
        ] {
            b.insert(Taxon {
                name: n(name),
                classification: Classification::new("Chordata", "Amphibia", "Anura", "F"),
                common_name: None,
            });
        }
        let mut c = Checklist::bootstrap(b, 1965);
        c.release(
            2010,
            &[
                Evolution::Rename {
                    old: n("Elachistocleis ovalis"),
                    new: n("Nomen inquirenda"),
                },
                Evolution::Doubt {
                    name: n("Hyla dubia"),
                },
            ],
        )
        .unwrap();
        ColService::new(
            c,
            ServiceConfig {
                availability: 1.0,
                ..ServiceConfig::default()
            },
        )
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new("FNJV-1").with("species", Value::Text("Hyla faber".into())),
            Record::new("FNJV-2").with("species", Value::Text("Hyla faber".into())),
            Record::new("FNJV-3").with("species", Value::Text("Elachistocleis ovalis".into())),
            Record::new("FNJV-4").with("species", Value::Text("Hyla dubia".into())),
            Record::new("FNJV-5").with("species", Value::Text("Scinax rubre".into())), // typo
            Record::new("FNJV-6").with("species", Value::Text("???".into())),
        ]
    }

    #[test]
    fn collection_check_classifies_names() {
        let svc = service();
        let det = OutdatedNameDetector::new(&svc, 3);
        let report = det.check_collection(&records());
        assert_eq!(report.records_processed, 6);
        assert_eq!(report.distinct_names, 4); // faber, ovalis, dubia, rubre
        assert_eq!(report.current, 1);
        assert_eq!(report.outdated.len(), 1);
        assert_eq!(report.outdated[0].1, n("Nomen inquirenda"));
        assert_eq!(report.doubtful, vec![n("Hyla dubia")]);
        assert_eq!(report.misspelled.len(), 1);
        assert_eq!(report.misspelled[0].1, n("Scinax ruber"));
        assert_eq!(report.unparseable_records, 1);
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn accuracy_and_fraction_computed() {
        let svc = service();
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&records());
        assert!((report.outdated_fraction() - 0.25).abs() < 1e-12);
        assert!((report.accuracy() - 0.25).abs() < 1e-12); // 1 current of 4
    }

    #[test]
    fn summary_renders_counts() {
        let svc = service();
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&records());
        let text = report.render_summary();
        assert!(text.contains("records processed:        6"));
        assert!(text.contains("distinct species names:   4"));
        assert!(text.contains("Elachistocleis ovalis  →  Nomen inquirenda"));
    }

    #[test]
    fn persist_updates_keeps_originals_untouched() {
        let dir = std::env::temp_dir().join(format!("preserva-outdated-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TableStore::new(Arc::new(
            Engine::open(&dir, EngineOptions::default()).unwrap(),
        ));
        // Simulate the originals table.
        store.put("records", b"FNJV-3", b"original row").unwrap();

        let svc = service();
        let report = OutdatedNameDetector::new(&svc, 3).check_collection(&records());
        let written = persist_updates(&store, &report).unwrap();
        assert_eq!(written, 2); // 1 updated name + 1 affected record ref

        // Separate table holds the update, unverified.
        let row = store
            .get(UPDATED_NAMES_TABLE, b"Elachistocleis ovalis")
            .unwrap()
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&row).unwrap();
        assert_eq!(v["new"], "Nomen inquirenda");
        assert_eq!(v["verified"], false);

        // Reference row links record → outdated name.
        let r = store.get(NAME_REFS_TABLE, b"FNJV-3").unwrap().unwrap();
        assert_eq!(r, b"Elachistocleis ovalis".to_vec());

        // Original record byte-identical.
        assert_eq!(
            store.get("records", b"FNJV-3").unwrap().unwrap(),
            b"original row".to_vec()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unavailable_service_reported_not_dropped() {
        let mut b = Backbone::new();
        b.insert(Taxon {
            name: n("Hyla faber"),
            classification: Classification::new("C", "A", "O", "F"),
            common_name: None,
        });
        let c = Checklist::bootstrap(b, 1965);
        let svc = ColService::new(
            c,
            ServiceConfig {
                availability: 0.0,
                ..ServiceConfig::default()
            },
        );
        let report = OutdatedNameDetector::new(&svc, 2).check_collection(&records());
        assert_eq!(report.unavailable.len(), report.distinct_names);
        assert_eq!(report.checked(), 0);
        assert_eq!(report.accuracy(), 1.0); // vacuous, but defined
    }
}
