//! Stage-2 curation: "using spatial analysis to check errors. Examples of
//! errors found included misidentified species and discovery of possible
//! new species' behavior" (§IV-B, reported fully in Cugler et al. 2013).
//!
//! Collection-level screening (it needs all observations of a species at
//! once, so it is not a per-record [`crate::pass::CurationPass`]): every
//! georeferenced record is grouped by species and screened two ways —
//! against the species' known range when a [`RangeAtlas`] covers it, and
//! by robust within-species clustering otherwise. Hits become review
//! items; the expert decides between "misidentified" and "new behaviour".

use preserva_gazetteer::geo::GeoPoint;
use preserva_gazetteer::outlier::{self, Outlier};
use preserva_gazetteer::ranges::RangeAtlas;
use preserva_metadata::record::Record;
use preserva_metadata::value::Value;

use crate::log::{CurationEvent, CurationLog};
use crate::review::{ReviewItem, ReviewQueue};

/// Screening configuration.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Tolerance outside a known range before flagging (km).
    pub range_slack_km: f64,
    /// MAD multiplier for the clustering screen.
    pub mad_k: f64,
    /// Minimum observations per species for the clustering screen.
    pub min_points: usize,
}

impl Default for SpatialConfig {
    fn default() -> Self {
        SpatialConfig {
            range_slack_km: 50.0,
            mad_k: 6.0,
            min_points: 5,
        }
    }
}

/// Result of one spatial screening run.
#[derive(Debug, Clone, Default)]
pub struct SpatialReport {
    /// Records with usable coordinates + species.
    pub screened: usize,
    /// Records skipped (no coordinates or no species).
    pub skipped: usize,
    /// Range-based hits `(record_id, species, excess_km)`.
    pub out_of_range: Vec<(String, String, f64)>,
    /// Cluster-based hits `(record_id, species, excess_km)`.
    pub cluster_outliers: Vec<(String, String, f64)>,
}

impl SpatialReport {
    /// Total flagged records (a record can appear in both lists).
    pub fn flagged(&self) -> usize {
        self.out_of_range.len() + self.cluster_outliers.len()
    }
}

fn observation(r: &Record) -> Option<(String, GeoPoint)> {
    let species = r.get_text("species")?;
    let Value::Coordinates(c) = r.get("coordinates")? else {
        return None;
    };
    let point = GeoPoint::new(c.lat, c.lon)?;
    Some((species.to_string(), point))
}

/// Screen a collection; flags land in the review queue and the log.
pub fn screen(
    records: &[Record],
    atlas: &RangeAtlas,
    config: &SpatialConfig,
    log: &mut CurationLog,
    queue: &mut ReviewQueue,
) -> SpatialReport {
    let mut report = SpatialReport::default();
    let mut observations: Vec<(String, GeoPoint)> = Vec::new();
    let mut record_ids: Vec<&str> = Vec::new();
    for r in records {
        match observation(r) {
            Some(obs) => {
                observations.push(obs);
                record_ids.push(&r.id);
            }
            None => report.skipped += 1,
        }
    }
    report.screened = observations.len();

    let flag = |record_id: &str,
                o: &Outlier,
                kind: &str,
                log: &mut CurationLog,
                queue: &mut ReviewQueue| {
        let message = format!(
            "spatial {kind}: {} observed {:.0} km beyond expectation at {:.4},{:.4} — misidentified species or new behaviour?",
            o.species, o.excess_km, o.point.lat, o.point.lon
        );
        log.append(
            record_id,
            "spatial-screening",
            CurationEvent::Flagged {
                field: Some("coordinates".into()),
                message: message.clone(),
            },
        );
        queue.submit(ReviewItem::Flag {
            record_id: record_id.to_string(),
            field: Some("coordinates".into()),
            message,
        });
    };

    for o in outlier::range_outliers(atlas, &observations, config.range_slack_km) {
        let id = record_ids[o.index];
        report
            .out_of_range
            .push((id.to_string(), o.species.clone(), o.excess_km));
        flag(id, &o, "out-of-range", log, queue);
    }
    for o in outlier::cluster_outliers(&observations, config.mad_k, config.min_points) {
        let id = record_ids[o.index];
        report
            .cluster_outliers
            .push((id.to_string(), o.species.clone(), o.excess_km));
        flag(id, &o, "cluster-outlier", log, queue);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_gazetteer::ranges::SpeciesRange;
    use preserva_metadata::value::Coordinates;

    fn rec(id: &str, species: &str, lat: f64, lon: f64) -> Record {
        Record::new(id)
            .with("species", Value::Text(species.into()))
            .with(
                "coordinates",
                Value::Coordinates(Coordinates::new(lat, lon).unwrap()),
            )
    }

    fn run(records: &[Record], atlas: &RangeAtlas) -> (SpatialReport, ReviewQueue, CurationLog) {
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let report = screen(
            records,
            atlas,
            &SpatialConfig::default(),
            &mut log,
            &mut queue,
        );
        (report, queue, log)
    }

    #[test]
    fn planted_cluster_outlier_flagged() {
        let mut records: Vec<Record> = (0..8)
            .map(|i| {
                rec(
                    &format!("r{i}"),
                    "Hyla faber",
                    -22.9 + 0.02 * i as f64,
                    -47.0,
                )
            })
            .collect();
        records.push(rec("r-bogus", "Hyla faber", -3.1, -60.0)); // Manaus
        let (report, queue, log) = run(&records, &RangeAtlas::new());
        assert_eq!(report.cluster_outliers.len(), 1);
        assert_eq!(report.cluster_outliers[0].0, "r-bogus");
        assert_eq!(queue.pending().count(), 1);
        assert_eq!(log.flag_count(), 1);
    }

    #[test]
    fn known_range_violation_flagged() {
        let mut atlas = RangeAtlas::new();
        atlas.insert(
            "Scinax ruber",
            SpeciesRange {
                center: GeoPoint::new(-22.9, -47.0).unwrap(),
                radius_km: 200.0,
            },
        );
        let records = vec![
            rec("ok", "Scinax ruber", -22.5, -47.2),
            rec("far", "Scinax ruber", 4.6, -74.1), // Bogotá
        ];
        let (report, _, _) = run(&records, &atlas);
        assert_eq!(report.out_of_range.len(), 1);
        assert_eq!(report.out_of_range[0].0, "far");
    }

    #[test]
    fn records_without_coordinates_skipped() {
        let records = vec![
            Record::new("no-coords").with("species", Value::Text("Hyla faber".into())),
            rec("ok", "Hyla faber", -22.9, -47.0),
        ];
        let (report, _, _) = run(&records, &RangeAtlas::new());
        assert_eq!(report.screened, 1);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn tight_collection_raises_nothing() {
        let records: Vec<Record> = (0..10)
            .map(|i| {
                rec(
                    &format!("r{i}"),
                    "Hyla faber",
                    -22.9 + 0.001 * i as f64,
                    -47.0,
                )
            })
            .collect();
        let (report, queue, _) = run(&records, &RangeAtlas::new());
        assert_eq!(report.flagged(), 0);
        assert_eq!(queue.pending().count(), 0);
    }

    #[test]
    fn synthetic_collection_with_planted_outlier() {
        use preserva_fnjv_like_setup::*;
        // Generate a small clustered species and verify end-to-end on
        // realistic records (helper below keeps this self-contained).
        let records = clustered_records("Dendropsophus minutus", 12);
        let mut all = records.clone();
        all.push(rec("intruder", "Dendropsophus minutus", 4.6, -74.1));
        let (report, _, _) = run(&all, &RangeAtlas::new());
        assert_eq!(report.cluster_outliers.len(), 1);
        assert_eq!(report.cluster_outliers[0].0, "intruder");
    }

    /// Tiny helper namespace for the last test.
    mod preserva_fnjv_like_setup {
        use super::*;

        pub fn clustered_records(species: &str, n: usize) -> Vec<Record> {
            (0..n)
                .map(|i| {
                    rec(
                        &format!("c{i}"),
                        species,
                        -22.9 + 0.01 * (i % 5) as f64,
                        -47.0 - 0.01 * (i % 3) as f64,
                    )
                })
                .collect()
        }
    }
}
