//! A synthetic climate archive — the authoritative environmental source
//! stage-1 step-3 consults ("obtained from authoritative sources, once
//! location and date were defined").
//!
//! The real prototype queried historical weather services; we model a
//! seasonal climatology: temperature follows latitude and a Southern-
//! hemisphere seasonal sinusoid plus deterministic per-(place, date)
//! noise, so the same query always yields the same answer (a property
//! real archives share and tests rely on).

use preserva_gazetteer::geo::GeoPoint;
use preserva_metadata::value::Date;

/// One climate observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimateRecord {
    /// Air temperature in °C.
    pub temperature_c: f64,
    /// Relative humidity in [0, 1].
    pub relative_humidity: f64,
    /// Atmospheric-conditions vocabulary term.
    pub conditions: &'static str,
}

/// Deterministic pseudo-noise in [0, 1) from the query key.
fn noise(point: &GeoPoint, date: &Date, salt: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix((point.lat * 1e4) as i64 as u64);
    mix((point.lon * 1e4) as i64 as u64);
    mix(date.year as u64);
    mix(date.month as u64);
    mix(date.day as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Day of year in [0, 365).
fn day_of_year(date: &Date) -> f64 {
    const CUM: [u16; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
    (CUM[(date.month - 1) as usize] as f64) + (date.day as f64) - 1.0
}

/// Query the archive.
pub fn lookup(point: &GeoPoint, date: &Date) -> ClimateRecord {
    // Annual mean falls with |latitude|; the tropics are ~26 °C at sea
    // level, dropping ~0.45 °C per degree of latitude beyond the tropics.
    let abs_lat = point.lat.abs();
    let mean = if abs_lat < 23.5 {
        26.0 - abs_lat * 0.10
    } else {
        26.0 - 2.35 - (abs_lat - 23.5) * 0.45
    };
    // Seasonal swing grows with latitude; phase flips by hemisphere
    // (January = summer in the south).
    let amplitude = 2.0 + abs_lat * 0.25;
    let phase = day_of_year(date) / 365.0 * std::f64::consts::TAU;
    let seasonal = if point.lat < 0.0 {
        amplitude * phase.cos()
    } else {
        -amplitude * phase.cos()
    };
    let jitter = (noise(point, date, 1) - 0.5) * 6.0;
    let temperature_c = mean + seasonal + jitter;

    let humidity_noise = noise(point, date, 2);
    let relative_humidity = (0.55 + 0.4 * humidity_noise).clamp(0.0, 1.0);

    let w = noise(point, date, 3);
    let conditions = if w < 0.45 {
        "Clear"
    } else if w < 0.75 {
        "Cloudy"
    } else if w < 0.92 {
        "Rainy"
    } else {
        "Fog"
    };
    ClimateRecord {
        temperature_c,
        relative_humidity,
        conditions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn deterministic() {
        let d = Date::new(1982, 3, 15).unwrap();
        let a = lookup(&p(-22.9, -47.06), &d);
        let b = lookup(&p(-22.9, -47.06), &d);
        assert_eq!(a, b);
    }

    #[test]
    fn temperatures_physically_plausible() {
        for (lat, lon) in [(-3.1, -60.0), (-22.9, -47.0), (-30.0, -51.2)] {
            for month in 1..=12u8 {
                let d = Date::new(1990, month, 15).unwrap();
                let c = lookup(&p(lat, lon), &d);
                assert!(
                    (-10.0..=50.0).contains(&c.temperature_c),
                    "temp {} at lat {lat} month {month}",
                    c.temperature_c
                );
                assert!((0.0..=1.0).contains(&c.relative_humidity));
            }
        }
    }

    #[test]
    fn tropics_warmer_than_south() {
        let d = Date::new(1990, 7, 15).unwrap(); // southern winter
        let manaus = lookup(&p(-3.1, -60.0), &d);
        let porto_alegre = lookup(&p(-30.0, -51.2), &d);
        assert!(manaus.temperature_c > porto_alegre.temperature_c + 3.0);
    }

    #[test]
    fn southern_summer_warmer_than_winter() {
        let january = lookup(&p(-30.0, -51.2), &Date::new(1990, 1, 15).unwrap());
        let july = lookup(&p(-30.0, -51.2), &Date::new(1990, 7, 15).unwrap());
        assert!(january.temperature_c > july.temperature_c);
    }

    #[test]
    fn conditions_are_vocabulary_terms() {
        let vocab = preserva_metadata::vocab::atmospheric_conditions();
        for day in 1..=28u8 {
            let c = lookup(&p(-22.9, -47.0), &Date::new(2000, 6, day).unwrap());
            assert!(vocab.contains(c.conditions), "{}", c.conditions);
        }
    }
}
