//! The curation-pass abstraction: a pass inspects one record and proposes
//! changes and/or review flags. Passes never mutate records in place —
//! the pipeline applies accepted changes and journals everything.

use preserva_metadata::record::Record;
use preserva_metadata::value::Value;

/// One proposed field modification.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldChange {
    /// Field to change.
    pub field: String,
    /// Current value (None = absent).
    pub old: Option<Value>,
    /// Proposed value.
    pub new: Value,
    /// Human-readable justification (journaled).
    pub reason: String,
}

/// A condition a human curator must look at.
#[derive(Debug, Clone, PartialEq)]
pub struct ReviewFlag {
    /// Field concerned (None = whole record).
    pub field: Option<String>,
    /// What the curator should look at.
    pub message: String,
}

/// What a pass proposes for one record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassOutcome {
    /// Proposed field changes.
    pub changes: Vec<FieldChange>,
    /// Conditions needing human review.
    pub flags: Vec<ReviewFlag>,
}

impl PassOutcome {
    /// An outcome proposing nothing.
    pub fn clean() -> Self {
        Self::default()
    }

    /// True when the pass proposes neither changes nor flags.
    pub fn is_clean(&self) -> bool {
        self.changes.is_empty() && self.flags.is_empty()
    }

    /// Add a change (builder style).
    pub fn change(mut self, field: &str, old: Option<Value>, new: Value, reason: &str) -> Self {
        self.changes.push(FieldChange {
            field: field.to_string(),
            old,
            new,
            reason: reason.to_string(),
        });
        self
    }

    /// Add a flag (builder style).
    pub fn flag(mut self, field: Option<&str>, message: &str) -> Self {
        self.flags.push(ReviewFlag {
            field: field.map(str::to_string),
            message: message.to_string(),
        });
        self
    }
}

/// Which record fields a pass reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldSet {
    /// The pass may read any field (the conservative default).
    All,
    /// The pass reads only these fields.
    Only(Vec<String>),
}

impl FieldSet {
    /// A field set naming specific fields.
    pub fn only(fields: &[&str]) -> FieldSet {
        FieldSet::Only(fields.iter().map(|f| f.to_string()).collect())
    }

    /// Whether any of `changed` is in this set.
    pub fn intersects<S: AsRef<str>>(&self, changed: &[S]) -> bool {
        match self {
            FieldSet::All => !changed.is_empty(),
            FieldSet::Only(fields) => changed
                .iter()
                .any(|c| fields.iter().any(|f| f == c.as_ref())),
        }
    }
}

/// What a pass depends on — the delta planner re-runs a pass on a
/// record only when one of its declared inputs changed. Declaring too
/// much is safe (extra re-runs of idempotent passes); declaring too
/// little breaks `delta ≡ full` equivalence, which the cross-crate
/// proptest guards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassDependencies {
    /// Record fields the pass reads.
    pub fields: FieldSet,
    /// Logical external sources the pass consults (e.g. `"gazetteer"`,
    /// `"checklist"`); a version bump of a source re-runs the pass on
    /// every touched record.
    pub sources: Vec<String>,
}

impl PassDependencies {
    /// Depends on everything — the conservative default.
    pub fn all() -> Self {
        PassDependencies {
            fields: FieldSet::All,
            sources: Vec::new(),
        }
    }

    /// Depends only on the named fields.
    pub fn on_fields(fields: &[&str]) -> Self {
        PassDependencies {
            fields: FieldSet::only(fields),
            sources: Vec::new(),
        }
    }

    /// Also depends on an external source (builder style).
    pub fn with_source(mut self, source: &str) -> Self {
        self.sources.push(source.to_string());
        self
    }

    /// Whether a record with `changed_fields` modified, under
    /// `changed_sources` bumped, needs this pass re-run.
    pub fn affected_by<S: AsRef<str>, T: AsRef<str>>(
        &self,
        changed_fields: &[S],
        changed_sources: &[T],
    ) -> bool {
        self.fields.intersects(changed_fields)
            || changed_sources
                .iter()
                .any(|c| self.sources.iter().any(|s| s == c.as_ref()))
    }
}

/// A curation pass.
pub trait CurationPass: Send + Sync {
    /// Stable pass name (journaled with every change).
    fn name(&self) -> &str;

    /// Inspect `record` and propose changes/flags.
    fn inspect(&self, record: &Record) -> PassOutcome;

    /// The fields and external sources this pass reads. The default is
    /// "everything", which is always correct but makes the pass run in
    /// every delta batch; passes should narrow it.
    fn dependencies(&self) -> PassDependencies {
        PassDependencies::all()
    }
}

/// Apply an outcome's changes to a copy of the record.
pub fn apply(record: &Record, outcome: &PassOutcome) -> Record {
    let mut out = record.clone();
    for c in &outcome.changes {
        out.set(&c.field, c.new.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_builders() {
        let o = PassOutcome::clean()
            .change(
                "species",
                None,
                Value::Text("Hyla faber".into()),
                "canonicalized",
            )
            .flag(Some("location"), "too vague");
        assert!(!o.is_clean());
        assert_eq!(o.changes.len(), 1);
        assert_eq!(o.flags.len(), 1);
        assert!(PassOutcome::clean().is_clean());
    }

    #[test]
    fn apply_copies_and_sets() {
        let r = Record::new("r").with("a", Value::Integer(1));
        let o = PassOutcome::clean().change("a", Some(Value::Integer(1)), Value::Integer(2), "fix");
        let r2 = apply(&r, &o);
        assert_eq!(r.get("a"), Some(&Value::Integer(1))); // original untouched
        assert_eq!(r2.get("a"), Some(&Value::Integer(2)));
    }
}
