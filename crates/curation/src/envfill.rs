//! Stage-1 step-3: fill missing environmental fields (temperature,
//! atmospheric conditions) from the climate archive, once location and
//! date are known.

use preserva_gazetteer::geo::GeoPoint;
use preserva_metadata::record::Record;
use preserva_metadata::value::Value;

use crate::climate;
use crate::pass::{CurationPass, PassDependencies, PassOutcome};

/// The environmental-field filler pass. Runs after georeferencing and
/// date parsing (it needs typed `coordinates` and `collect_date`).
pub struct EnvironmentalFillPass;

impl CurationPass for EnvironmentalFillPass {
    fn name(&self) -> &str {
        "environmental-field-fill"
    }

    fn inspect(&self, record: &Record) -> PassOutcome {
        let mut out = PassOutcome::clean();
        let needs_temp = !record.is_filled("air_temperature_c");
        let needs_cond = !record.is_filled("atmospheric_conditions");
        if !needs_temp && !needs_cond {
            return out;
        }
        let Some(Value::Coordinates(c)) = record.get("coordinates") else {
            return out; // can't query without a location
        };
        let Some(Value::Date(d)) = record.get("collect_date") else {
            return out; // can't query without a date
        };
        let Some(point) = GeoPoint::new(c.lat, c.lon) else {
            return out;
        };
        let climate = climate::lookup(&point, d);
        if needs_temp {
            out = out.change(
                "air_temperature_c",
                None,
                Value::Float((climate.temperature_c * 10.0).round() / 10.0),
                "filled from climate archive (location + date)",
            );
        }
        if needs_cond {
            out = out.change(
                "atmospheric_conditions",
                None,
                Value::Text(climate.conditions.to_string()),
                "filled from climate archive (location + date)",
            );
        }
        out
    }

    fn dependencies(&self) -> PassDependencies {
        PassDependencies::on_fields(&[
            "coordinates",
            "collect_date",
            "air_temperature_c",
            "atmospheric_conditions",
        ])
        .with_source("climate-archive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_metadata::value::{Coordinates, Date};

    fn located_record() -> Record {
        Record::new("r")
            .with(
                "coordinates",
                Value::Coordinates(Coordinates::new(-22.9, -47.06).unwrap()),
            )
            .with("collect_date", Value::Date(Date::new(1982, 3, 15).unwrap()))
    }

    #[test]
    fn fills_both_missing_fields() {
        let o = EnvironmentalFillPass.inspect(&located_record());
        assert_eq!(o.changes.len(), 2);
        let fields: Vec<&str> = o.changes.iter().map(|c| c.field.as_str()).collect();
        assert!(fields.contains(&"air_temperature_c"));
        assert!(fields.contains(&"atmospheric_conditions"));
    }

    #[test]
    fn preserves_existing_values() {
        let r = located_record().with("air_temperature_c", Value::Float(19.5));
        let o = EnvironmentalFillPass.inspect(&r);
        assert_eq!(o.changes.len(), 1);
        assert_eq!(o.changes[0].field, "atmospheric_conditions");
    }

    #[test]
    fn skips_without_location_or_date() {
        let no_coords =
            Record::new("r").with("collect_date", Value::Date(Date::new(1982, 3, 15).unwrap()));
        assert!(EnvironmentalFillPass.inspect(&no_coords).is_clean());
        let no_date = Record::new("r").with(
            "coordinates",
            Value::Coordinates(Coordinates::new(-22.9, -47.06).unwrap()),
        );
        assert!(EnvironmentalFillPass.inspect(&no_date).is_clean());
    }

    #[test]
    fn idempotent_after_apply() {
        let r = located_record();
        let o = EnvironmentalFillPass.inspect(&r);
        let r2 = crate::pass::apply(&r, &o);
        assert!(EnvironmentalFillPass.inspect(&r2).is_clean());
    }

    #[test]
    fn filled_temperature_within_domain() {
        let o = EnvironmentalFillPass.inspect(&located_record());
        let temp = o
            .changes
            .iter()
            .find(|c| c.field == "air_temperature_c")
            .unwrap();
        if let Value::Float(t) = temp.new {
            assert!((-10.0..=50.0).contains(&t));
        } else {
            panic!("temperature must be a float");
        }
    }
}
