//! Delta reassessment: consume the storage change journal and re-run
//! only the affected curation passes on only the touched records.
//!
//! The full pipeline ([`crate::pipeline::CurationPipeline::run`]) is a
//! sweep over every record; this module replaces it for incremental
//! maintenance. A [`DeltaPlan`] is distilled from a batch of
//! [`JournalEntry`]s (what changed since the stored cursor), then
//! [`run_delta`] re-runs each pass on a touched record only when the
//! pass's declared [`PassDependencies`] intersect that record's changed
//! fields (or a bumped external source) — including fields changed by
//! *earlier passes in the same sweep*, so in-sweep cascades (species →
//! genus → …) behave exactly as in a full run. Equivalence with the
//! full pipeline is guarded by the cross-crate `delta ≡ full` proptest.

use std::collections::{BTreeMap, BTreeSet};

use preserva_metadata::record::Record;
use preserva_storage::journal::{JournalEntry, ROW_DELETED, ROW_UPSERTED};

use crate::log::{CurationEvent, CurationLog};
use crate::pass;
use crate::pipeline::CurationPipeline;
use crate::review::{ReviewItem, ReviewQueue};

/// Journal event kind: one record field changed; the entry's key is the
/// record id and the payload is the field name.
pub const FIELD_CHANGED: &str = "field-changed";
/// Journal event kind: a checklist name's status changed between
/// backbone editions; the entry's key is the canonical species name.
pub const NAME_STATUS_CHANGED: &str = "name-status-changed";
/// Journal event kind: an external source was swapped/upgraded; the
/// entry's key is the logical source name (e.g. `"checklist"`).
pub const SOURCE_CHANGED: &str = "source-changed";

/// The fields of one record the journal says were touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TouchedFields {
    /// The whole row was rewritten (or we don't know which fields) —
    /// every pass must be reconsidered.
    All,
    /// Only these fields changed.
    Fields(BTreeSet<String>),
}

impl TouchedFields {
    fn add_field(&mut self, field: &str) {
        if let TouchedFields::Fields(set) = self {
            set.insert(field.to_string());
        }
    }

    fn widen(&mut self) {
        *self = TouchedFields::All;
    }
}

/// What a batch of journal entries implies must be reassessed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaPlan {
    /// Touched record ids with the fields that changed.
    pub touched_records: BTreeMap<String, TouchedFields>,
    /// Record ids the journal says were deleted (and not re-upserted
    /// later in the batch).
    pub deleted_records: BTreeSet<String>,
    /// Canonical species names whose checklist status changed.
    pub changed_names: BTreeSet<String>,
    /// External sources that were swapped/upgraded.
    pub changed_sources: BTreeSet<String>,
    /// Sequence number of the last entry consumed (the new cursor).
    pub last_seq: u64,
    /// Number of journal entries consumed.
    pub entries_consumed: usize,
}

impl DeltaPlan {
    /// Whether the batch implies no work at all.
    pub fn is_empty(&self) -> bool {
        self.touched_records.is_empty()
            && self.deleted_records.is_empty()
            && self.changed_names.is_empty()
            && self.changed_sources.is_empty()
    }
}

/// Distill a batch of journal entries into a [`DeltaPlan`].
///
/// Row events on `records_table` mark the record touched ([`TouchedFields::All`]
/// — the journal doesn't know which fields a rewrite changed) or deleted;
/// [`FIELD_CHANGED`] events narrow a touch to specific fields when no row
/// rewrite widened it; [`NAME_STATUS_CHANGED`] and [`SOURCE_CHANGED`]
/// feed the taxonomy/source sets. Events on other tables are ignored.
pub fn plan(entries: &[JournalEntry], records_table: &str) -> DeltaPlan {
    let mut plan = DeltaPlan::default();
    for e in entries {
        plan.last_seq = plan.last_seq.max(e.seq);
        plan.entries_consumed += 1;
        match e.kind.as_str() {
            ROW_UPSERTED if e.table == records_table => {
                let id = String::from_utf8_lossy(&e.key).into_owned();
                plan.deleted_records.remove(&id);
                plan.touched_records
                    .entry(id)
                    .or_insert_with(|| TouchedFields::Fields(BTreeSet::new()))
                    .widen();
            }
            ROW_DELETED if e.table == records_table => {
                let id = String::from_utf8_lossy(&e.key).into_owned();
                plan.touched_records.remove(&id);
                plan.deleted_records.insert(id);
            }
            FIELD_CHANGED if e.table == records_table => {
                let id = String::from_utf8_lossy(&e.key).into_owned();
                let field = String::from_utf8_lossy(&e.payload).into_owned();
                plan.touched_records
                    .entry(id)
                    .or_insert_with(|| TouchedFields::Fields(BTreeSet::new()))
                    .add_field(&field);
            }
            NAME_STATUS_CHANGED => {
                plan.changed_names
                    .insert(String::from_utf8_lossy(&e.key).into_owned());
            }
            SOURCE_CHANGED => {
                plan.changed_sources
                    .insert(String::from_utf8_lossy(&e.key).into_owned());
            }
            _ => {}
        }
    }
    plan
}

/// Aggregate result of one delta sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Records handed to the sweep.
    pub records_considered: usize,
    /// Records on which at least one pass actually ran.
    pub records_reprocessed: usize,
    /// Individual pass executions (the unit of work saved vs full runs).
    pub passes_run: usize,
    /// Field changes applied.
    pub field_changes: usize,
    /// Review flags raised.
    pub flags: usize,
}

/// Re-run only the affected passes of `pipeline` on `records` (the
/// touched records from a [`DeltaPlan`]). Passes execute in pipeline
/// order; a pass runs when its dependencies intersect the record's
/// touched fields, the fields changed by earlier passes in this sweep,
/// or a changed external source. Changes are journaled into `log` and
/// flags into `queue` exactly as in a full run.
pub fn run_delta(
    pipeline: &CurationPipeline,
    records: &[Record],
    touched: &BTreeMap<String, TouchedFields>,
    changed_sources: &BTreeSet<String>,
    log: &mut CurationLog,
    queue: &mut ReviewQueue,
) -> (Vec<Record>, DeltaSummary) {
    let sources: Vec<&str> = changed_sources.iter().map(String::as_str).collect();
    let mut summary = DeltaSummary {
        records_considered: records.len(),
        ..Default::default()
    };
    let mut out = Vec::with_capacity(records.len());
    for record in records {
        let Some(touch) = touched.get(&record.id) else {
            out.push(record.clone());
            continue;
        };
        let mut changed: Vec<String> = match touch {
            TouchedFields::All => Vec::new(), // unused: every pass runs
            TouchedFields::Fields(set) => set.iter().cloned().collect(),
        };
        let run_all = matches!(touch, TouchedFields::All);
        let mut current = record.clone();
        let mut ran_any = false;
        for p in pipeline.passes() {
            let due = run_all || p.dependencies().affected_by(&changed, &sources);
            if !due {
                continue;
            }
            ran_any = true;
            summary.passes_run += 1;
            let outcome = p.inspect(&current);
            for c in &outcome.changes {
                log.append(
                    &current.id,
                    p.name(),
                    CurationEvent::FieldChanged {
                        field: c.field.clone(),
                        old: c.old.clone(),
                        new: c.new.clone(),
                        reason: c.reason.clone(),
                    },
                );
                if !changed.iter().any(|f| f == &c.field) {
                    changed.push(c.field.clone());
                }
                summary.field_changes += 1;
            }
            for f in &outcome.flags {
                log.append(
                    &current.id,
                    p.name(),
                    CurationEvent::Flagged {
                        field: f.field.clone(),
                        message: f.message.clone(),
                    },
                );
                queue.submit(ReviewItem::Flag {
                    record_id: current.id.clone(),
                    field: f.field.clone(),
                    message: f.message.clone(),
                });
                summary.flags += 1;
            }
            current = pass::apply(&current, &outcome);
        }
        if ran_any {
            summary.records_reprocessed += 1;
        }
        out.push(current);
    }
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_gazetteer::builder::build_gazetteer;
    use preserva_metadata::fnjv;
    use preserva_metadata::value::Value;

    fn entry(seq: u64, kind: &str, table: &str, key: &[u8], payload: &[u8]) -> JournalEntry {
        JournalEntry {
            seq,
            kind: kind.to_string(),
            table: table.to_string(),
            key: key.to_vec(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn plan_classifies_event_kinds() {
        let entries = vec![
            entry(1, ROW_UPSERTED, "records", b"r1", b""),
            entry(2, FIELD_CHANGED, "records", b"r2", b"species"),
            entry(3, FIELD_CHANGED, "records", b"r2", b"collect_date"),
            entry(4, ROW_DELETED, "records", b"r3", b""),
            entry(
                5,
                NAME_STATUS_CHANGED,
                "taxonomy",
                b"hyla faber",
                b"synonymized",
            ),
            entry(6, SOURCE_CHANGED, "taxonomy", b"checklist", b"2005->2013"),
            entry(7, ROW_UPSERTED, "provenance_graphs", b"run-1", b""),
        ];
        let p = plan(&entries, "records");
        assert_eq!(p.last_seq, 7);
        assert_eq!(p.entries_consumed, 7);
        assert_eq!(p.touched_records.len(), 2);
        assert_eq!(p.touched_records["r1"], TouchedFields::All);
        assert_eq!(
            p.touched_records["r2"],
            TouchedFields::Fields(
                ["species", "collect_date"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            )
        );
        assert!(p.deleted_records.contains("r3"));
        assert!(p.changed_names.contains("hyla faber"));
        assert!(p.changed_sources.contains("checklist"));
        assert!(!p.is_empty());
        // Row events on other tables are ignored.
        assert!(!p.touched_records.contains_key("run-1"));
    }

    #[test]
    fn row_rewrite_widens_field_touch() {
        let entries = vec![
            entry(1, FIELD_CHANGED, "records", b"r", b"species"),
            entry(2, ROW_UPSERTED, "records", b"r", b""),
        ];
        let p = plan(&entries, "records");
        assert_eq!(p.touched_records["r"], TouchedFields::All);
    }

    #[test]
    fn delete_then_upsert_resurrects() {
        let entries = vec![
            entry(1, ROW_DELETED, "records", b"r", b""),
            entry(2, ROW_UPSERTED, "records", b"r", b""),
        ];
        let p = plan(&entries, "records");
        assert!(p.deleted_records.is_empty());
        assert_eq!(p.touched_records["r"], TouchedFields::All);
    }

    fn pipeline() -> CurationPipeline {
        CurationPipeline::stage1(build_gazetteer(0, 1), fnjv::schema())
    }

    fn dirty_record(id: &str) -> Record {
        Record::new(id)
            .with("phylum", Value::Text("Chordata".into()))
            .with("class", Value::Text("Amphibia".into()))
            .with("order", Value::Text("Anura".into()))
            .with("family", Value::Text("Hylidae".into()))
            .with("species", Value::Text("  hyla   faber ".into()))
            .with("collect_date", Value::Text("15.III.1982".into()))
            .with("country", Value::Text("Brazil".into()))
            .with("state", Value::Text("São Paulo".into()))
            .with("city", Value::Text("Campinas".into()))
    }

    #[test]
    fn delta_on_all_fields_matches_full_run() {
        let p = pipeline();
        let records = vec![dirty_record("FNJV-1"), dirty_record("FNJV-2")];
        let mut log_a = CurationLog::new();
        let mut queue_a = ReviewQueue::new();
        let (full, _) = p.run(&records, &mut log_a, &mut queue_a);

        let touched: BTreeMap<String, TouchedFields> = records
            .iter()
            .map(|r| (r.id.clone(), TouchedFields::All))
            .collect();
        let mut log_b = CurationLog::new();
        let mut queue_b = ReviewQueue::new();
        let (delta, summary) = run_delta(
            &p,
            &records,
            &touched,
            &BTreeSet::new(),
            &mut log_b,
            &mut queue_b,
        );
        assert_eq!(full, delta);
        assert_eq!(summary.records_reprocessed, 2);
    }

    #[test]
    fn narrow_touch_runs_only_dependent_passes() {
        let p = pipeline();
        // A record the full pipeline has already cleaned once.
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (clean, _) = p.run(&[dirty_record("FNJV-1")], &mut log, &mut queue);
        // Its species field is edited afterwards.
        let mut edited = clean[0].clone();
        edited.set("species", Value::Text("  scinax RUBER ".into()));
        let touched: BTreeMap<String, TouchedFields> = [(
            edited.id.clone(),
            TouchedFields::Fields(["species".to_string()].into_iter().collect()),
        )]
        .into_iter()
        .collect();
        let mut log2 = CurationLog::new();
        let mut queue2 = ReviewQueue::new();
        let (out, summary) = run_delta(
            &p,
            &[edited.clone()],
            &touched,
            &BTreeSet::new(),
            &mut log2,
            &mut queue2,
        );
        // Whitespace (depends on all fields), species canonicalization and
        // domain checks (all fields) ran; date/georef/envfill did not.
        assert_eq!(out[0].get_text("species"), Some("Scinax ruber"));
        assert_eq!(out[0].get_text("genus"), Some("Scinax"));
        assert!(summary.passes_run < p.passes().len());
        assert_eq!(summary.records_reprocessed, 1);
        // And the result equals what a full re-run would produce.
        let mut log3 = CurationLog::new();
        let mut queue3 = ReviewQueue::new();
        let (full, _) = p.run(&[edited], &mut log3, &mut queue3);
        assert_eq!(out, full);
    }

    #[test]
    fn untouched_records_run_no_passes() {
        let p = pipeline();
        let records = vec![dirty_record("FNJV-1")];
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (out, summary) = run_delta(
            &p,
            &records,
            &BTreeMap::new(),
            &BTreeSet::new(),
            &mut log,
            &mut queue,
        );
        assert_eq!(out, records, "not in the plan ⇒ untouched");
        assert_eq!(summary.passes_run, 0);
        assert_eq!(summary.records_reprocessed, 0);
    }

    #[test]
    fn source_bump_reruns_dependent_pass() {
        let p = pipeline();
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (clean, _) = p.run(&[dirty_record("FNJV-1")], &mut log, &mut queue);
        // Touched with NO changed fields, but the gazetteer was swapped:
        // only the georeference pass (and cascades) should run.
        let touched: BTreeMap<String, TouchedFields> =
            [(clean[0].id.clone(), TouchedFields::Fields(BTreeSet::new()))]
                .into_iter()
                .collect();
        let sources: BTreeSet<String> = ["gazetteer".to_string()].into_iter().collect();
        let mut log2 = CurationLog::new();
        let mut queue2 = ReviewQueue::new();
        let (_, summary) = run_delta(&p, &clean, &touched, &sources, &mut log2, &mut queue2);
        assert!(summary.passes_run >= 1);
        assert!(
            summary.passes_run < p.passes().len(),
            "only source-dependent passes ran, got {}",
            summary.passes_run
        );
    }
}
