//! The collection generator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use preserva_gazetteer::builder as gaz_builder;
use preserva_gazetteer::db::Gazetteer;
use preserva_metadata::record::Record;
use preserva_metadata::value::{Coordinates, Date, TimeOfDay, Value};
use preserva_taxonomy::builder as tax_builder;
use preserva_taxonomy::checklist::Checklist;
use preserva_taxonomy::name::ScientificName;

use crate::config::GeneratorConfig;

/// Everything the experiments need: records, the evolving checklist the
/// service wraps, the gazetteer, and the ground truth.
#[derive(Debug)]
pub struct SyntheticCollection {
    /// The generated observation records.
    pub records: Vec<Record>,
    /// The evolving checklist (wrap in `ColService` to query).
    pub checklist: Checklist,
    /// The place database used for locations.
    pub gazetteer: Gazetteer,
    /// The distinct names the collection uses (ground truth, sorted).
    pub species_names: Vec<ScientificName>,
    /// The names planted as outdated (ground truth, sorted).
    pub planted_outdated: Vec<ScientificName>,
    /// The configuration that generated all of the above.
    pub config: GeneratorConfig,
}

fn roman(m: u8) -> &'static str {
    [
        "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII",
    ][(m - 1) as usize]
}

/// Render a date in a random legacy text format.
fn legacy_date_text(d: &Date, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!("{}.{}.{}", d.day, roman(d.month), d.year),
        1 => format!("{:02}/{:02}/{}", d.day, d.month, d.year),
        _ => format!("{}-{}-{}", d.day, roman(d.month), d.year),
    }
}

/// Introduce one adjacent transposition into the epithet (a distance-1
/// typo the fuzzy matcher can catch).
fn typo(name: &ScientificName, rng: &mut StdRng) -> String {
    let epithet: Vec<char> = name.epithet().chars().collect();
    if epithet.len() < 3 {
        return name.canonical();
    }
    let i = rng.gen_range(0..epithet.len() - 1);
    let mut e = epithet;
    e.swap(i, i + 1);
    format!("{} {}", name.genus(), e.into_iter().collect::<String>())
}

fn dirty_whitespace(s: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!(" {s}"),
        1 => format!("{s}  "),
        _ => s.replace(' ', "  "),
    }
}

/// Generate the collection.
pub fn generate(config: &GeneratorConfig) -> SyntheticCollection {
    assert!(
        config.records >= config.distinct_species,
        "need records >= species"
    );
    assert!(config.outdated_names <= config.distinct_species);
    assert!(config.doubtful_names <= config.outdated_names);

    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- taxonomy: backbone + evolving checklist ---
    let backbone = tax_builder::build_backbone(config.distinct_species, config.seed);
    let species_names: Vec<ScientificName> = backbone.names().cloned().collect();

    // Distribute the planted churn across the release years (remainder on
    // the last release); doubts land on the final release.
    let renames_total = config.outdated_names - config.doubtful_names;
    let n_rel = config.release_years.len().max(1);
    let per_release = renames_total / n_rel;
    let mut plans = Vec::new();
    let mut assigned = 0usize;
    for (i, &year) in config.release_years.iter().enumerate() {
        let renames = if i + 1 == n_rel {
            renames_total - assigned
        } else {
            per_release
        };
        assigned += renames;
        plans.push(tax_builder::ReleasePlan {
            year,
            renames,
            doubts: if i + 1 == n_rel {
                config.doubtful_names
            } else {
                0
            },
        });
    }
    let checklist = tax_builder::build_checklist(
        backbone,
        config.first_year.min(1965).min(config.release_years[0] - 1),
        &plans,
        Some(&species_names),
        config.seed,
    );
    let latest = checklist.latest();
    let planted_outdated: Vec<ScientificName> = species_names
        .iter()
        .filter(|n| !latest.status(n).is_current())
        .cloned()
        .collect();

    // --- geography ---
    let gazetteer = gaz_builder::build_gazetteer(3, config.seed ^ 0x9E0);
    let cities = gaz_builder::cities();

    // --- records ---
    // Every distinct name appears at least once; the rest are sampled with
    // a squared-uniform skew (few common species, long tail of rare ones).
    let mut name_choices: Vec<usize> = (0..config.distinct_species).collect();
    name_choices.shuffle(&mut rng);
    let mut records = Vec::with_capacity(config.records);
    for i in 0..config.records {
        let species_idx = if let Some(&forced) = name_choices.get(i) {
            forced
        } else {
            let u: f64 = rng.gen::<f64>();
            ((u * u) * config.distinct_species as f64) as usize % config.distinct_species
        };
        let name = &species_names[species_idx];
        let taxon = checklist
            .backbone
            .get(name)
            .expect("names come from backbone");

        let year = rng.gen_range(config.first_year..=config.last_year);
        let month = rng.gen_range(1..=12u8);
        let day = rng.gen_range(1..=28u8);
        let date = Date::new(year, month, day).expect("day <= 28 is always valid");

        let (city, state, lat, lon) = cities[rng.gen_range(0..cities.len())];

        let mut r = Record::new(format!("FNJV-{:06}", i + 1));

        // Identification (row 1).
        let mut species_text = name.canonical();
        if config.typo_rate > 0.0 && rng.gen::<f64>() < config.typo_rate {
            species_text = typo(name, &mut rng);
        }
        if rng.gen::<f64>() < config.whitespace_dirt_rate {
            species_text = dirty_whitespace(&species_text, &mut rng);
        }
        r.set("species", Value::Text(species_text));
        r.set("genus", Value::Text(name.genus().to_string()));
        r.set("phylum", Value::Text(taxon.classification.phylum.clone()));
        r.set("class", Value::Text(taxon.classification.class.clone()));
        r.set("order", Value::Text(taxon.classification.order.clone()));
        r.set("family", Value::Text(taxon.classification.family.clone()));
        if rng.gen::<f64>() < 0.4 {
            r.set(
                "gender",
                Value::Text(if rng.gen::<bool>() { "male" } else { "female" }.into()),
            );
        }
        if rng.gen::<f64>() < 0.7 {
            r.set(
                "number_of_individuals",
                Value::Integer(rng.gen_range(1..=12)),
            );
        }

        // Observation conditions (row 2).
        if rng.gen::<f64>() < config.legacy_date_rate {
            r.set(
                "collect_date",
                Value::Text(legacy_date_text(&date, &mut rng)),
            );
        } else {
            r.set("collect_date", Value::Date(date));
        }
        if rng.gen::<f64>() < 0.6 {
            let t = TimeOfDay::new(rng.gen_range(0..24), rng.gen_range(0..60))
                .expect("generated in range");
            r.set("collect_time", Value::Time(t));
        }
        r.set("country", Value::Text("Brazil".into()));
        r.set("state", Value::Text(state.to_string()));
        r.set("city", Value::Text(city.to_string()));
        let has_gps = year >= config.gps_era && rng.gen::<f64>() > config.gps_missing_rate;
        if has_gps {
            let jlat = lat + rng.gen_range(-0.05..0.05);
            let jlon = lon + rng.gen_range(-0.05..0.05);
            r.set(
                "coordinates",
                Value::Coordinates(Coordinates::new(jlat, jlon).expect("jitter stays in range")),
            );
        }
        if rng.gen::<f64>() > config.missing_env_rate {
            r.set(
                "air_temperature_c",
                Value::Float((rng.gen_range(5.0..35.0) * 10.0f64).round() / 10.0),
            );
            let conds = ["Clear", "Cloudy", "Rainy", "Drizzle", "Fog"];
            r.set(
                "atmospheric_conditions",
                Value::Text(conds[rng.gen_range(0..conds.len())].into()),
            );
        }

        // Recording features (row 3).
        let device =
            ["Nagra III", "Sony TC-D5M", "Marantz PMD661", "Uher 4000"][rng.gen_range(0..4)];
        r.set("recording_device", Value::Text(device.to_string()));
        if rng.gen::<f64>() < 0.8 {
            let mic = ["Sennheiser ME66", "AKG C451", "Sennheiser MKH816"][rng.gen_range(0..3)];
            r.set("microphone_model", Value::Text(mic.to_string()));
        }
        let format = if year < 1995 { "Magnetic tape" } else { "WAV" };
        r.set("sound_file_format", Value::Text(format.to_string()));
        if rng.gen::<f64>() < 0.75 {
            r.set(
                "frequency_khz",
                Value::Float((rng.gen_range(1.0..22.0) * 10.0f64).round() / 10.0),
            );
        }
        records.push(r);
    }

    SyntheticCollection {
        records,
        checklist,
        gazetteer,
        species_names,
        planted_outdated,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn small() -> SyntheticCollection {
        generate(&GeneratorConfig::small(7))
    }

    #[test]
    fn counts_match_config() {
        let c = small();
        assert_eq!(c.records.len(), 600);
        assert_eq!(c.species_names.len(), 120);
        assert_eq!(c.planted_outdated.len(), 9);
    }

    #[test]
    fn every_distinct_name_is_used() {
        let c = small();
        let used: BTreeSet<String> = c
            .records
            .iter()
            .filter_map(|r| r.get_text("species"))
            .filter_map(ScientificName::parse)
            .map(|n| n.canonical())
            .collect();
        // Whitespace dirt normalizes away in parsing; typos are off, so
        // the used set equals the ground-truth name set.
        let truth: BTreeSet<String> = c.species_names.iter().map(|n| n.canonical()).collect();
        assert_eq!(used, truth);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&GeneratorConfig::small(5));
        let b = generate(&GeneratorConfig::small(5));
        assert_eq!(a.records, b.records);
        assert_eq!(a.planted_outdated, b.planted_outdated);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::small(5));
        let b = generate(&GeneratorConfig::small(6));
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn outdated_names_resolve_in_latest_edition() {
        let c = small();
        let ed = c.checklist.latest();
        for n in &c.planted_outdated {
            assert!(!ed.status(n).is_current());
            // Default config uses renames only → every one has a
            // replacement.
            assert!(ed.resolve_accepted(n).is_some(), "{n} has no replacement");
        }
    }

    #[test]
    fn pre_gps_records_lack_coordinates() {
        let c = small();
        for r in &c.records {
            let year = match r.get("collect_date") {
                Some(Value::Date(d)) => d.year,
                _ => continue, // legacy text date: year not parsed here
            };
            if year < c.config.gps_era {
                assert!(!r.has("coordinates"), "{} has pre-GPS coordinates", r.id);
            }
        }
    }

    #[test]
    fn legacy_dates_present_and_parseable() {
        let c = small();
        let legacy: Vec<&str> = c
            .records
            .iter()
            .filter_map(|r| match r.get("collect_date") {
                Some(Value::Text(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(!legacy.is_empty(), "no legacy dates generated");
        for s in legacy {
            assert!(
                preserva_metadata::parse::parse_date(s).is_some(),
                "unparseable legacy date {s:?}"
            );
        }
    }

    #[test]
    fn typo_rate_injects_unknown_names() {
        let mut cfg = GeneratorConfig::small(9);
        cfg.typo_rate = 0.3;
        let c = generate(&cfg);
        let truth: BTreeSet<String> = c.species_names.iter().map(|n| n.canonical()).collect();
        let unknown = c
            .records
            .iter()
            .filter_map(|r| r.get_text("species"))
            .filter_map(ScientificName::parse)
            .filter(|n| !truth.contains(&n.canonical()))
            .count();
        assert!(unknown > 0, "typo injection produced no unknown names");
    }
}
