//! Generator configuration. Defaults reproduce the paper's case study.

/// All the knobs of the synthetic collection.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total records (paper: 11,898).
    pub records: usize,
    /// Distinct species names used by the collection (paper: 1,929).
    pub distinct_species: usize,
    /// Collection names that are outdated in the latest edition
    /// (paper: 134).
    pub outdated_names: usize,
    /// Of the outdated names, how many are *nomina inquirenda* (doubtful,
    /// no replacement) rather than renames. The paper's Figure 2 lists
    /// replacements, so the default is 0.
    pub doubtful_names: usize,
    /// Master seed.
    pub seed: u64,
    /// First and last collection years (core of FNJV dates to the 1960s).
    pub first_year: i32,
    /// Last collection year.
    pub last_year: i32,
    /// Year GPS became common in the field; earlier records lack
    /// coordinates.
    pub gps_era: i32,
    /// Probability a GPS-era record still lacks coordinates.
    pub gps_missing_rate: f64,
    /// Probability a record's date is stored as legacy text
    /// (roman-numeral or slash format) instead of a typed date.
    pub legacy_date_rate: f64,
    /// Probability environmental fields (temperature, conditions) are
    /// missing.
    pub missing_env_rate: f64,
    /// Probability of stray whitespace in text fields.
    pub whitespace_dirt_rate: f64,
    /// Probability a record's species string carries a typo
    /// (0 by default — changes the distinct-name count; used by A2).
    pub typo_rate: f64,
    /// Checklist release years after the bootstrap edition.
    pub release_years: Vec<i32>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            records: 11_898,
            distinct_species: 1_929,
            outdated_names: 134,
            doubtful_names: 0,
            seed: 42,
            first_year: 1961,
            last_year: 2013,
            gps_era: 1995,
            gps_missing_rate: 0.15,
            legacy_date_rate: 0.55,
            missing_env_rate: 0.45,
            whitespace_dirt_rate: 0.12,
            typo_rate: 0.0,
            release_years: vec![1980, 1995, 2005, 2013],
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for fast tests (same defect structure).
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            records: 600,
            distinct_species: 120,
            outdated_names: 9,
            seed,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GeneratorConfig::default();
        assert_eq!(c.records, 11_898);
        assert_eq!(c.distinct_species, 1_929);
        assert_eq!(c.outdated_names, 134);
        assert_eq!(c.typo_rate, 0.0);
    }

    #[test]
    fn small_preserves_structure() {
        let c = GeneratorConfig::small(7);
        assert!(c.records > c.distinct_species);
        assert!(c.outdated_names < c.distinct_species);
        assert_eq!(c.seed, 7);
    }
}
