//! Collection statistics: the numbers the Figure-2 panel and EXPERIMENTS.md
//! report about the dataset itself.

use std::collections::BTreeSet;

use preserva_metadata::fnjv;
use preserva_metadata::record::Record;
use preserva_metadata::value::Value;
use preserva_taxonomy::name::ScientificName;

/// Summary statistics of a record collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Total records.
    pub records: usize,
    /// Distinct parsed species binomials.
    pub distinct_species: usize,
    /// Records with a coordinates field.
    pub with_coordinates: usize,
    /// Records whose date is typed.
    pub with_typed_date: usize,
    /// Records whose date is legacy text.
    pub with_legacy_text_date: usize,
    /// Records with a filled temperature.
    pub with_temperature: usize,
    /// Mean completeness against the 51-field FNJV schema.
    pub mean_completeness: f64,
}

impl CollectionStats {
    /// Compute statistics for `records`.
    pub fn compute(records: &[Record]) -> CollectionStats {
        let schema = fnjv::schema();
        let mut distinct = BTreeSet::new();
        let mut with_coordinates = 0;
        let mut with_typed_date = 0;
        let mut with_legacy_text_date = 0;
        let mut with_temperature = 0;
        for r in records {
            if let Some(name) = r.get_text("species").and_then(ScientificName::parse) {
                distinct.insert(name.canonical());
            }
            if r.has("coordinates") {
                with_coordinates += 1;
            }
            match r.get("collect_date") {
                Some(Value::Date(_)) => with_typed_date += 1,
                Some(Value::Text(_)) => with_legacy_text_date += 1,
                _ => {}
            }
            if r.is_filled("air_temperature_c") {
                with_temperature += 1;
            }
        }
        CollectionStats {
            records: records.len(),
            distinct_species: distinct.len(),
            with_coordinates,
            with_typed_date,
            with_legacy_text_date,
            with_temperature,
            mean_completeness: preserva_metadata::completeness::collection_completeness(
                &schema, records, false,
            ),
        }
    }

    /// Render as a small table.
    pub fn render(&self) -> String {
        format!(
            "records: {}\ndistinct species: {}\nwith coordinates: {}\n\
             typed dates: {}\nlegacy text dates: {}\nwith temperature: {}\n\
             mean completeness: {:.1}%\n",
            self.records,
            self.distinct_species,
            self.with_coordinates,
            self.with_typed_date,
            self.with_legacy_text_date,
            self.with_temperature,
            self.mean_completeness * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn stats_reflect_generated_collection() {
        let c = generate(&GeneratorConfig::small(3));
        let s = CollectionStats::compute(&c.records);
        assert_eq!(s.records, 600);
        assert_eq!(s.distinct_species, 120);
        assert!(s.with_legacy_text_date > 0);
        assert!(s.with_typed_date > 0);
        assert!(s.with_coordinates < s.records); // pre-GPS gap exists
        assert!(s.mean_completeness > 0.2 && s.mean_completeness < 0.9);
    }

    #[test]
    fn empty_collection() {
        let s = CollectionStats::compute(&[]);
        assert_eq!(s.records, 0);
        assert_eq!(s.distinct_species, 0);
        assert_eq!(s.mean_completeness, 0.0);
    }

    #[test]
    fn render_contains_counts() {
        let c = generate(&GeneratorConfig::small(3));
        let text = CollectionStats::compute(&c.records).render();
        assert!(text.contains("records: 600"));
        assert!(text.contains("distinct species: 120"));
    }
}
