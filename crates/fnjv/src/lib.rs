#![warn(missing_docs)]

//! `preserva-fnjv` — a deterministic synthetic stand-in for the Fonoteca
//! Neotropical Jacques Vielliard collection.
//!
//! The real FNJV database is institutional and not redistributable; the
//! paper's experiments depend only on its *defect distribution*, which
//! this generator reproduces exactly (DESIGN.md §3):
//!
//! * 11,898 records over 1,929 distinct species names;
//! * 134 of those names outdated in the latest checklist edition (7%);
//! * legacy records: pre-GPS coordinates absent, dates in heterogeneous
//!   text formats, missing environmental fields, stray whitespace;
//! * optional misspelling injection (off by default — it would change the
//!   distinct-name count; ablation A2 turns it on).
//!
//! Everything derives from a single seed: the same
//! [`config::GeneratorConfig`] always yields byte-identical collections.

pub mod config;
pub mod generator;
pub mod stats;

pub use config::GeneratorConfig;
pub use generator::{generate, SyntheticCollection};
pub use stats::CollectionStats;
