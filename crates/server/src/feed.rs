//! Live change-feed subscriptions.
//!
//! `GET /v1/{tenant}/feed?cursor=N` streams journal entries with
//! `seq > N` as Server-Sent Events over a chunked response. The loop
//! long-polls [`preserva_storage::table::TableStore::tail_journal`], so
//! delivery is push-shaped without any extra bookkeeping: the journal IS
//! the feed, and the client's cursor IS the subscription state. Resume
//! is therefore trivially gap-free — reconnect with
//! `cursor=<last id seen>` and the stream continues exactly where it
//! stopped, no duplicates, no holes.

use std::net::TcpStream;
use std::sync::atomic::Ordering;

use preserva_storage::journal::JournalEntry;

use crate::http::{finish_chunked, start_event_stream, write_chunk, write_response, Request};
use crate::routes::gate_response;
use crate::state::ServerState;

/// Events per tail page. Small enough to keep latency low, large enough
/// to drain a burst in a few polls.
const PAGE: usize = 256;

fn render_event(e: &JournalEntry) -> String {
    let data = serde_json::json!({
        "seq": e.seq,
        "kind": e.kind,
        "table": e.table,
        "key": String::from_utf8_lossy(&e.key).into_owned(),
    });
    format!("id: {}\nevent: change\ndata: {}\n\n", e.seq, data)
}

/// Serve one feed subscription until the client hangs up, `max_events`
/// is reached, or the server shuts down. Consumes the connection —
/// chunked streams are always the connection's last exchange.
pub fn serve_feed(state: &ServerState, stream: &mut TcpStream, req: &Request, tenant: &str) {
    // Authenticate + meter like any request, then claim a subscriber
    // slot so one tenant can't monopolise the worker pool with feeds.
    let coll = match state.manager.admit(tenant, req.api_key()) {
        Ok(c) => c,
        Err(gate) => {
            let _ = write_response(stream, &gate_response(gate), true);
            return;
        }
    };
    let _slot = match state.manager.subscribe(tenant) {
        Ok(s) => s,
        Err(gate) => {
            let _ = write_response(stream, &gate_response(gate), true);
            return;
        }
    };

    let q = req.query();
    let mut cursor: u64 = q.get("cursor").and_then(|v| v.parse().ok()).unwrap_or(0);
    // Test/tooling escape hatch: stop (cleanly, with a proper chunked
    // terminator) after N events instead of streaming forever.
    let max_events: Option<u64> = q.get("max_events").and_then(|v| v.parse().ok());

    if start_event_stream(stream).is_err() {
        return;
    }
    let live = state.live_feeds.fetch_add(1, Ordering::SeqCst) + 1;
    state.metrics.feed_subscribers.set(live as u64);

    let mut delivered: u64 = 0;
    let clean = loop {
        if state.is_shutting_down() {
            break true;
        }
        if max_events.is_some_and(|max| delivered >= max) {
            break true;
        }
        let page = match coll.store().tail_journal(cursor, PAGE, state.feed_poll) {
            Ok(p) => p,
            Err(_) => break false,
        };
        if page.is_empty() {
            // Keepalive comment: proves liveness to the client and
            // surfaces a dead peer to us as a write error.
            if write_chunk(stream, b": keepalive\n\n").is_err() {
                break false;
            }
            continue;
        }
        let mut out = String::new();
        let mut batch = 0u64;
        for e in &page {
            cursor = e.seq;
            out.push_str(&render_event(e));
            batch += 1;
            if max_events.is_some_and(|max| delivered + batch >= max) {
                break;
            }
        }
        delivered += batch;
        state.metrics.feed_events_total.add(batch);
        if write_chunk(stream, out.as_bytes()).is_err() {
            break false;
        }
    };
    if clean {
        let _ = finish_chunked(stream);
    }
    let live = state.live_feeds.fetch_sub(1, Ordering::SeqCst) - 1;
    state.metrics.feed_subscribers.set(live as u64);
}
