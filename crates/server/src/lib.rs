//! `preserva-server`: a multi-tenant HTTP front end for preserva
//! collections.
//!
//! Architecture (std-only, no async runtime):
//!
//! - one accept thread hands each `TcpStream` to a long-lived
//!   [`preserva_wfms::pool::TaskPool`] worker — blocking thread per
//!   connection, bounded by the pool size;
//! - a [`tenants::CollectionManager`] routes `/v1/{tenant}/...` to
//!   isolated [`preserva_core::Collection`]s, each under its own
//!   directory with its own private metrics registry, behind API-key
//!   auth and per-tenant request quotas;
//! - read endpoints pin exactly one storage snapshot per request;
//! - `GET /v1/{tenant}/feed` streams journal changes as Server-Sent
//!   Events by long-polling the journal from a client-supplied cursor;
//! - `GET /metrics` merges every open tenant's registry under a
//!   `tenant` label and appends the server's own `preserva_server_*`
//!   families.
//!
//! Shutdown is explicit and verified: stop intake, drain workers, then
//! [`tenants::CollectionManager::close_all`] — which flushes capture
//! batchers and fails loudly if any snapshot is still pinned.

pub mod feed;
pub mod http;
pub mod routes;
pub mod state;
pub mod tenants;

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use preserva_wfms::pool::TaskPool;

use crate::http::{read_request, write_response};
use crate::state::ServerState;
use crate::tenants::{CollectionManager, TenantConfig};

/// Server configuration. `addr` may use port 0 to let the OS pick (the
/// bound address is on [`Server::addr`]).
pub struct ServerConfig {
    pub addr: String,
    /// Root directory; each tenant gets `data_root/{name}`.
    pub data_root: std::path::PathBuf,
    pub tenants: Vec<TenantConfig>,
    /// Connection-handler threads.
    pub workers: usize,
    /// Idle keep-alive read timeout per connection.
    pub keep_alive: Duration,
    /// How long one feed poll blocks waiting for journal growth. Also
    /// bounds shutdown latency for idle feed subscribers.
    pub feed_poll: Duration,
    /// Operator key for `GET /metrics` — the merged exposition names
    /// every tenant, so it is never served unauthenticated. `None`
    /// disables the endpoint entirely.
    pub admin_key: Option<String>,
}

impl ServerConfig {
    pub fn new(addr: impl Into<String>, data_root: impl Into<std::path::PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            data_root: data_root.into(),
            tenants: Vec::new(),
            workers: 8,
            keep_alive: Duration::from_secs(5),
            feed_poll: Duration::from_millis(250),
            admin_key: None,
        }
    }

    pub fn tenant(mut self, t: TenantConfig) -> ServerConfig {
        self.tenants.push(t);
        self
    }

    pub fn admin_key(mut self, key: impl Into<String>) -> ServerConfig {
        self.admin_key = Some(key.into());
        self
    }
}

/// Errors starting or stopping the server.
#[derive(Debug)]
pub enum ServerError {
    Bind(io::Error),
    Config(String),
    /// One or more tenant collections failed to close cleanly.
    Close(Vec<(String, preserva_core::CollectionError)>),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Bind(e) => write!(f, "bind failed: {e}"),
            ServerError::Config(m) => write!(f, "bad config: {m}"),
            ServerError::Close(fails) => {
                write!(f, "unclean shutdown:")?;
                for (tenant, e) in fails {
                    write!(f, " [{tenant}: {e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// A running server. Call [`Server::shutdown`] to stop it and verify
/// every collection closed with zero pinned snapshots.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    /// Owns the TaskPool: dropping it at the end of the accept loop
    /// drains queued connections and joins the workers.
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, and return.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        let manager = CollectionManager::new(&config.data_root, config.tenants)
            .map_err(ServerError::Config)?;
        let listener = TcpListener::bind(&config.addr).map_err(ServerError::Bind)?;
        let addr = listener.local_addr().map_err(ServerError::Bind)?;
        let state = ServerState::new(manager, config.feed_poll, config.admin_key);
        let pool = TaskPool::new(config.workers.max(1));

        let accept_state = state.clone();
        let keep_alive = config.keep_alive;
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                // Checked before dispatch so the shutdown wake-up
                // connection is dropped, not served.
                if accept_state.is_shutting_down() {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let st = accept_state.clone();
                let accepted = pool.execute(move || {
                    serve_connection(&st, stream, keep_alive);
                });
                if !accepted {
                    break;
                }
            }
            // Dropping the pool here stops intake, finishes queued
            // connections, and joins every worker before the accept
            // thread itself exits.
            drop(pool);
        });

        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for tests and the /metrics smoke.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stop accepting, drain in-flight connections, and close every
    /// tenant collection — flushing batchers and verifying that no
    /// snapshot is left pinned.
    pub fn shutdown(mut self) -> Result<(), ServerError> {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.state.manager.close_all().map_err(ServerError::Close)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort teardown when shutdown() wasn't called.
        if let Some(t) = self.accept_thread.take() {
            self.state.shutting_down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = t.join();
            let _ = self.state.manager.close_all();
        }
    }
}

/// Serve one connection: keep-alive request loop, with feed requests
/// taking over the stream for chunked streaming.
fn serve_connection(state: &Arc<ServerState>, stream: TcpStream, keep_alive: Duration) {
    let _ = stream.set_read_timeout(Some(keep_alive));
    let _ = stream.set_nodelay(true);
    let live = state.live_connections.fetch_add(1, Ordering::SeqCst) + 1;
    state.metrics.active_connections.set(live as u64);
    state.connections_served.fetch_add(1, Ordering::Relaxed);

    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            release_connection(state);
            return;
        }
    };
    let mut reader = BufReader::new(stream);

    loop {
        if state.is_shutting_down() {
            break;
        }
        let req = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => break, // clean keep-alive end (EOF or idle)
            Err(_) => break,   // torn request; nothing sane to answer
        };
        state.metrics.requests_total.inc();
        let started = Instant::now();

        // Feed subscriptions stream on the raw socket and always end
        // the connection.
        if let Some(tenant) = feed_tenant(&req) {
            feed::serve_feed(state, &mut writer, &req, &tenant);
            state
                .metrics
                .request_seconds
                .observe_duration(started.elapsed());
            break;
        }

        let response = routes::route(state, &req);
        let close = req.wants_close();
        let ok = write_response(&mut writer, &response, close);
        state
            .metrics
            .request_seconds
            .observe_duration(started.elapsed());
        if ok.is_err() || close {
            break;
        }
    }
    release_connection(state);
}

fn release_connection(state: &Arc<ServerState>) {
    let live = state.live_connections.fetch_sub(1, Ordering::SeqCst) - 1;
    state.metrics.active_connections.set(live as u64);
}

/// `GET /v1/{tenant}/feed` → the tenant name. Matches on decoded
/// segments (same discipline as `routes::route`): the raw path is
/// split first, so an encoded '/' can't fake or dodge the feed route.
fn feed_tenant(req: &http::Request) -> Option<String> {
    if req.method != "GET" {
        return None;
    }
    match req.segments().as_slice() {
        [v1, tenant, feed] if v1 == "v1" && feed == "feed" => Some(tenant.clone()),
        _ => None,
    }
}
