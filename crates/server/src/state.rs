//! Shared server state: the tenant router, the server's own metrics
//! registry, and the shutdown flag every long-lived loop polls.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use preserva_obs::{Counter, Gauge, Histogram, Registry};

use crate::tenants::CollectionManager;

/// Server-level metric families. All named `preserva_server_*`, disjoint
/// from the per-tenant collection families so the /metrics merge stays a
/// valid exposition.
pub struct ServerMetrics {
    pub requests_total: Arc<Counter>,
    pub auth_failures: Arc<Counter>,
    pub quota_rejections: Arc<Counter>,
    pub active_connections: Arc<Gauge>,
    pub feed_subscribers: Arc<Gauge>,
    pub feed_events_total: Arc<Counter>,
    pub request_seconds: Arc<Histogram>,
}

impl ServerMetrics {
    pub fn register(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            requests_total: registry.counter(
                "preserva_server_requests_total",
                "HTTP requests handled (all tenants, all statuses)",
            ),
            auth_failures: registry.counter(
                "preserva_server_auth_failures_total",
                "Requests rejected for a missing or wrong API key",
            ),
            quota_rejections: registry.counter(
                "preserva_server_quota_rejections_total",
                "Requests rejected by a tenant request quota",
            ),
            active_connections: registry.gauge(
                "preserva_server_active_connections",
                "Connections currently being served",
            ),
            feed_subscribers: registry.gauge(
                "preserva_server_feed_subscribers",
                "Change-feed subscriptions currently streaming",
            ),
            feed_events_total: registry.counter(
                "preserva_server_feed_events_total",
                "Change-feed events delivered to subscribers",
            ),
            request_seconds: registry.histogram(
                "preserva_server_request_seconds",
                "Wall time per handled request",
                &[0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0],
            ),
        }
    }
}

/// Everything a connection handler needs, behind one Arc.
pub struct ServerState {
    pub manager: CollectionManager,
    pub registry: Arc<Registry>,
    pub metrics: ServerMetrics,
    /// Operator credential gating `/metrics` (the merged exposition
    /// leaks tenant names and activity). `None` disables the endpoint.
    pub admin_key: Option<String>,
    /// Set once by shutdown; feed loops and the accept loop poll it.
    pub shutting_down: AtomicBool,
    /// How long one feed poll blocks waiting for new journal entries.
    pub feed_poll: Duration,
    /// Connections served, for tests and the banner.
    pub connections_served: AtomicU64,
    /// Live feed streams; mirrored into the `feed_subscribers` gauge
    /// (gauges are set-only, so the count lives here).
    pub live_feeds: AtomicUsize,
    /// Live connections; mirrored into `active_connections`.
    pub live_connections: AtomicUsize,
}

impl ServerState {
    pub fn new(
        manager: CollectionManager,
        feed_poll: Duration,
        admin_key: Option<String>,
    ) -> Arc<ServerState> {
        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::register(&registry);
        Arc::new(ServerState {
            manager,
            registry,
            metrics,
            admin_key,
            shutting_down: AtomicBool::new(false),
            feed_poll,
            connections_served: AtomicU64::new(0),
            live_feeds: AtomicUsize::new(0),
            live_connections: AtomicUsize::new(0),
        })
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}
