//! Tenant routing: one isolated [`Collection`] per tenant, opened
//! lazily under its own directory with its own private obs registry, so
//! nothing — data, snapshots, metrics — is shared between tenants except
//! the process.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use preserva_core::collection::{Collection, CollectionError, CollectionOptions};

/// Per-tenant request budget: a fixed window that refills wholesale when
/// it elapses. Deliberately simple — the point is isolation (one noisy
/// tenant can't starve the pool), not fairness guarantees.
#[derive(Debug, Clone)]
pub struct Quota {
    /// Requests allowed per window. 0 disables the quota.
    pub max_requests: u64,
    /// Window length.
    pub window: Duration,
    /// Concurrent change-feed subscribers allowed (each holds a worker).
    pub max_subscribers: usize,
}

impl Default for Quota {
    fn default() -> Self {
        Quota {
            max_requests: 0,
            window: Duration::from_secs(1),
            max_subscribers: 16,
        }
    }
}

/// Static declaration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Path segment and metric label. `[a-z0-9_-]+` only.
    pub name: String,
    /// The API key requests must present.
    pub api_key: String,
    pub quota: Quota,
}

struct QuotaWindow {
    started: Instant,
    used: u64,
}

struct TenantState {
    config: TenantConfig,
    dir: PathBuf,
    /// Lazily opened on first request, then shared.
    collection: Mutex<Option<Arc<Collection>>>,
    window: Mutex<QuotaWindow>,
    subscribers: AtomicUsize,
}

/// Why a request bounced before reaching a handler.
#[derive(Debug, PartialEq, Eq)]
pub enum Gate {
    UnknownTenant,
    BadKey,
    OverQuota,
    TooManySubscribers,
}

/// Routes `/v1/{tenant}/...` to isolated collections.
pub struct CollectionManager {
    tenants: BTreeMap<String, TenantState>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
}

/// Constant-time key equality: the XOR-fold visits every candidate
/// byte regardless of where the first mismatch sits, so response
/// timing can't be used to recover the stored key byte by byte. (Only
/// the candidate's own length shapes the loop — that much the attacker
/// already knows.)
pub(crate) fn constant_time_key_eq(candidate: &str, expected: &str) -> bool {
    let c = candidate.as_bytes();
    let e = expected.as_bytes();
    if e.is_empty() {
        return c.is_empty();
    }
    let mut diff = c.len() ^ e.len();
    for (i, &b) in c.iter().enumerate() {
        diff |= (b ^ e[i % e.len()]) as usize;
    }
    diff == 0
}

impl CollectionManager {
    /// Build the routing table. Tenant directories live under `root`,
    /// one per tenant name; invalid names are refused up front.
    pub fn new(root: &std::path::Path, tenants: Vec<TenantConfig>) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        for t in tenants {
            if !valid_name(&t.name) {
                return Err(format!(
                    "tenant name {:?} invalid (lowercase alphanumeric, '-', '_')",
                    t.name
                ));
            }
            let dir = root.join(&t.name);
            map.insert(
                t.name.clone(),
                TenantState {
                    dir,
                    collection: Mutex::new(None),
                    window: Mutex::new(QuotaWindow {
                        started: Instant::now(),
                        used: 0,
                    }),
                    subscribers: AtomicUsize::new(0),
                    config: t,
                },
            );
        }
        Ok(CollectionManager { tenants: map })
    }

    /// Tenant names, for the /metrics merge.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Authenticate + meter one request. On success returns the tenant's
    /// collection (opening it on first touch).
    pub fn admit(&self, tenant: &str, key: Option<&str>) -> Result<Arc<Collection>, Gate> {
        let state = self.tenants.get(tenant).ok_or(Gate::UnknownTenant)?;
        if !key.is_some_and(|k| constant_time_key_eq(k, &state.config.api_key)) {
            return Err(Gate::BadKey);
        }
        if state.config.quota.max_requests > 0 {
            let mut w = state.window.lock().expect("quota window poisoned");
            if w.started.elapsed() >= state.config.quota.window {
                w.started = Instant::now();
                w.used = 0;
            }
            if w.used >= state.config.quota.max_requests {
                return Err(Gate::OverQuota);
            }
            w.used += 1;
        }
        self.open(state).map_err(|_| Gate::UnknownTenant)
    }

    fn open(&self, state: &TenantState) -> Result<Arc<Collection>, CollectionError> {
        let mut slot = state.collection.lock().expect("collection slot poisoned");
        if let Some(c) = slot.as_ref() {
            return Ok(c.clone());
        }
        // Private registry (metrics: None): each tenant's families merge
        // into /metrics under its own `tenant` label.
        let c = Arc::new(Collection::open(&state.dir, CollectionOptions::default())?);
        *slot = Some(c.clone());
        Ok(c)
    }

    /// The collection if it is already open (no auth — internal use,
    /// e.g. the /metrics merge).
    pub fn peek(&self, tenant: &str) -> Option<Arc<Collection>> {
        self.tenants
            .get(tenant)?
            .collection
            .lock()
            .expect("collection slot poisoned")
            .clone()
    }

    /// Try to claim a feed-subscriber slot. The returned guard releases
    /// it on drop.
    pub fn subscribe(&self, tenant: &str) -> Result<SubscriberSlot<'_>, Gate> {
        let state = self.tenants.get(tenant).ok_or(Gate::UnknownTenant)?;
        let max = state.config.quota.max_subscribers.max(1);
        let prev = state.subscribers.fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            state.subscribers.fetch_sub(1, Ordering::SeqCst);
            return Err(Gate::TooManySubscribers);
        }
        Ok(SubscriberSlot {
            counter: &state.subscribers,
        })
    }

    /// Close every open collection, verifying no snapshot is pinned.
    /// Called exactly once at server shutdown.
    pub fn close_all(&self) -> Result<(), Vec<(String, CollectionError)>> {
        let mut failures = Vec::new();
        for (name, state) in &self.tenants {
            let c = state
                .collection
                .lock()
                .expect("collection slot poisoned")
                .take();
            if let Some(c) = c {
                if let Err(e) = c.close() {
                    failures.push((name.clone(), e));
                }
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }
}

/// RAII feed-subscriber slot.
#[derive(Debug)]
pub struct SubscriberSlot<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for SubscriberSlot<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("preserva-tenants-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn manager(root: &std::path::Path) -> CollectionManager {
        CollectionManager::new(
            root,
            vec![
                TenantConfig {
                    name: "alpha".into(),
                    api_key: "ka".into(),
                    quota: Quota {
                        max_requests: 2,
                        window: Duration::from_secs(60),
                        max_subscribers: 1,
                    },
                },
                TenantConfig {
                    name: "beta".into(),
                    api_key: "kb".into(),
                    quota: Quota::default(),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn auth_and_quota_gates() {
        let root = tmp("gates");
        let m = manager(&root);
        assert_eq!(
            m.admit("nope", Some("ka")).unwrap_err(),
            Gate::UnknownTenant
        );
        assert_eq!(m.admit("alpha", Some("kb")).unwrap_err(), Gate::BadKey);
        assert_eq!(m.admit("alpha", None).unwrap_err(), Gate::BadKey);
        m.admit("alpha", Some("ka")).unwrap();
        m.admit("alpha", Some("ka")).unwrap();
        assert_eq!(m.admit("alpha", Some("ka")).unwrap_err(), Gate::OverQuota);
        // beta's quota is disabled and its key is its own.
        for _ in 0..10 {
            m.admit("beta", Some("kb")).unwrap();
        }
        m.close_all().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenants_get_isolated_directories_and_registries() {
        let root = tmp("iso");
        let m = manager(&root);
        let a = m.admit("alpha", Some("ka")).unwrap();
        let b = m.admit("beta", Some("kb")).unwrap();
        assert_ne!(a.dir(), b.dir());
        assert!(!Arc::ptr_eq(a.metrics_registry(), b.metrics_registry()));
        // Same tenant, same collection instance.
        let a2 = m.admit("alpha", Some("ka")).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        m.close_all().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn subscriber_slots_are_bounded_and_released() {
        let root = tmp("subs");
        let m = manager(&root);
        let s1 = m.subscribe("alpha").unwrap();
        assert_eq!(m.subscribe("alpha").unwrap_err(), Gate::TooManySubscribers);
        drop(s1);
        let _s2 = m.subscribe("alpha").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        let cases = [
            ("", "", true),
            ("", "k", false),
            ("k", "", false),
            ("key-herp", "key-herp", true),
            ("key-herp", "key-herq", false),
            ("key-her", "key-herp", false),
            ("key-herpp", "key-herp", false),
            ("aaaaaaaa", "key-herp", false),
            ("key-herpkey-herp", "key-herp", false),
        ];
        for (candidate, expected, want) in cases {
            assert_eq!(
                constant_time_key_eq(candidate, expected),
                want,
                "candidate={candidate:?} expected={expected:?}"
            );
        }
    }

    #[test]
    fn invalid_tenant_names_are_refused() {
        let root = tmp("names");
        assert!(CollectionManager::new(
            &root,
            vec![TenantConfig {
                name: "../escape".into(),
                api_key: "k".into(),
                quota: Quota::default(),
            }],
        )
        .is_err());
    }
}
