//! A deliberately small HTTP/1.1 codec: enough to parse the requests the
//! preserva API serves and write plain or chunked responses. No external
//! dependencies — the workspace is std-only by constraint, and the server
//! needs exactly GET/PUT, headers, a sized body, keep-alive and chunked
//! transfer for the change feed.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Total bytes of request line + headers we will buffer before refusing.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest request body accepted (a single record, generously).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request. Header names are lowercased; the path and query
/// string are split off the target but left ENCODED — use
/// [`Request::segments`] and [`Request::query`], which decode after
/// splitting, so an encoded separator can't change the structure.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub raw_query: String,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Path segments, percent-decoded individually. The raw path is
    /// split on '/' FIRST, so `%2F` inside a segment (e.g. a record id
    /// containing a slash) stays inside that segment instead of
    /// changing the route shape.
    pub fn segments(&self) -> Vec<String> {
        self.path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(percent_decode)
            .collect()
    }

    /// Decoded query parameters, last occurrence winning.
    pub fn query(&self) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for pair in self.raw_query.split('&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            out.insert(percent_decode(k), percent_decode(v));
        }
        out
    }

    /// The client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// The bearer token / API key presented, if any.
    pub fn api_key(&self) -> Option<&str> {
        if let Some(auth) = self.headers.get("authorization") {
            if let Some(token) = auth.strip_prefix("Bearer ") {
                return Some(token.trim());
            }
        }
        self.headers.get("x-api-key").map(|v| v.trim())
    }
}

/// Minimal percent-decoding ('+' as space, `%XX` bytes), lossy on
/// malformed escapes.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).unwrap_or(&[]);
                let decoded = std::str::from_utf8(hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                if let Some(v) = decoded {
                    out.push(v);
                    i += 3;
                    continue;
                }
                out.push(b'%');
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Read one request off the stream. `Ok(None)` means the peer closed (or
/// idled past the read timeout) between requests — a clean keep-alive end.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e)
                if head.is_empty()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::ConnectionReset
                    ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            // EOF: fine between requests, torn mid-head otherwise.
            if head.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn head"));
        }
        if line == "\r\n" || line == "\n" {
            if head.is_empty() {
                continue; // tolerate stray blank lines between requests
            }
            break;
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
        }
    }

    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no target"))?;
    let (path, raw_query) = target.split_once('?').unwrap_or((target, ""));

    let mut headers = BTreeMap::new();
    for l in lines {
        if let Some((k, v)) = l.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }

    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        reader.read_exact(&mut body)?;
    }

    Ok(Some(Request {
        method,
        path: path.to_string(),
        raw_query: raw_query.to_string(),
        headers,
        body,
    }))
}

/// A plain (sized) response.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, value: serde_json::Value) -> Response {
        let mut body = value.to_string().into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    pub fn text(status: u16, text: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: text.into().into_bytes(),
        }
    }

    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, serde_json::json!({ "error": message }))
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a sized response; `close` controls the Connection header.
pub fn write_response(stream: &mut TcpStream, r: &Response, close: bool) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        r.status,
        reason(r.status),
        r.content_type,
        r.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}

/// Start a chunked `text/event-stream` response. Pair with
/// [`write_chunk`] and [`finish_chunked`]. Always `Connection: close` —
/// a feed is the connection's last exchange.
pub fn start_event_stream(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// One chunk of a chunked body.
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the body
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked body.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_spaces_and_escapes() {
        assert_eq!(percent_decode("Hyla+faber"), "Hyla faber");
        assert_eq!(percent_decode("Hyla%20faber"), "Hyla faber");
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn segments_split_before_decoding() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/herp/records/FNJV%2F0001".into(),
            raw_query: String::new(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        // An encoded slash stays INSIDE its segment: still a 4-segment
        // record route, with the id decoded to contain '/'.
        assert_eq!(req.segments(), ["v1", "herp", "records", "FNJV/0001"]);

        // A literal extra slash, by contrast, changes the shape.
        let req = Request {
            path: "/v1/herp/records/FNJV/0001".into(),
            ..req
        };
        assert_eq!(req.segments().len(), 5);
    }
}
