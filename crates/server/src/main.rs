//! The `preserva-server` binary.
//!
//! ```text
//! preserva-server --addr 127.0.0.1:7878 --data-root ./tenants \
//!     --admin-key op-secret \
//!     --tenant herp:key-herp --tenant ornith:key-ornith:200
//! ```
//!
//! Each `--tenant` is `name:api_key[:max_requests_per_sec]`.
//! `--admin-key` gates `GET /metrics` (the merged exposition names
//! every tenant); without it the endpoint is disabled. The server
//! runs until stdin closes or SIGTERM-ish (ctrl-c ends the process; the
//! collections recover on next open thanks to the WAL), but the graceful
//! path is: send a newline on stdin, and the server drains, flushes and
//! verifies zero pinned snapshots before exiting.

use std::time::Duration;

use preserva_server::tenants::{Quota, TenantConfig};
use preserva_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: preserva-server --addr HOST:PORT --data-root DIR \\\n       --tenant name:api_key[:max_requests_per_sec] [--tenant ...] \\\n       [--admin-key KEY] [--workers N]"
    );
    std::process::exit(2);
}

fn parse_tenant(spec: &str) -> Result<TenantConfig, String> {
    let mut parts = spec.splitn(3, ':');
    let name = parts.next().unwrap_or("").to_string();
    let api_key = parts
        .next()
        .ok_or_else(|| format!("tenant {spec:?}: missing api key (name:key)"))?
        .to_string();
    let mut quota = Quota::default();
    if let Some(rate) = parts.next() {
        quota.max_requests = rate
            .parse()
            .map_err(|_| format!("tenant {spec:?}: bad rate {rate:?}"))?;
    }
    Ok(TenantConfig {
        name,
        api_key,
        quota,
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7878".to_string();
    let mut data_root = None;
    let mut tenants = Vec::new();
    let mut workers = 8usize;
    let mut admin_key = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--data-root" => data_root = args.next(),
            "--admin-key" => admin_key = Some(args.next().unwrap_or_else(|| usage())),
            "--tenant" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match parse_tenant(&spec) {
                    Ok(t) => tenants.push(t),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(data_root) = data_root else { usage() };
    if tenants.is_empty() {
        eprintln!("at least one --tenant is required");
        usage();
    }

    let mut config = ServerConfig::new(addr, data_root);
    config.workers = workers;
    config.keep_alive = Duration::from_secs(5);
    config.admin_key = admin_key;
    for t in tenants {
        config = config.tenant(t);
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("preserva-server: {e}");
            std::process::exit(1);
        }
    };
    let names: Vec<&str> = server.state().manager.names();
    eprintln!(
        "preserva-server listening on {} ({} tenant(s): {}) — newline on stdin shuts down",
        server.addr(),
        names.len(),
        names.join(", ")
    );

    // Block until stdin closes or delivers a line, then drain.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    eprintln!("preserva-server: draining...");
    match server.shutdown() {
        Ok(()) => eprintln!("preserva-server: clean shutdown, zero pinned snapshots"),
        Err(e) => {
            eprintln!("preserva-server: {e}");
            std::process::exit(1);
        }
    }
}
