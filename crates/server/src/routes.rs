//! Request routing and the read/write endpoints.
//!
//! Every read endpoint pins exactly ONE storage snapshot for the
//! duration of the request — cross-table panels (records + stats) can
//! never observe a torn view, and the pin is released before the
//! response is written, so a crashed client can't floor the compaction
//! horizon.

use std::sync::Arc;

use preserva_core::collection::Collection;
use preserva_core::repository::decode_row;
use preserva_metadata::record::Record;
use preserva_metadata::value::Value;

use crate::http::{Request, Response};
use crate::state::ServerState;
use crate::tenants::{constant_time_key_eq, Gate};

/// Route one parsed request. Feed requests are NOT handled here — the
/// connection loop intercepts them because they stream.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let segments = req.segments();
    let segments: Vec<&str> = segments.iter().map(String::as_str).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => metrics(state, req),
        (_, ["v1", tenant, rest @ ..]) => tenant_route(state, req, tenant, rest),
        _ => Response::error(404, "no such route"),
    }
}

pub fn gate_response(gate: Gate) -> Response {
    match gate {
        Gate::UnknownTenant => Response::error(404, "unknown tenant"),
        Gate::BadKey => Response::error(401, "missing or invalid API key"),
        Gate::OverQuota => Response::error(429, "tenant request quota exceeded"),
        Gate::TooManySubscribers => Response::error(429, "tenant subscriber limit reached"),
    }
}

fn tenant_route(state: &ServerState, req: &Request, tenant: &str, rest: &[&str]) -> Response {
    let coll = match state.manager.admit(tenant, req.api_key()) {
        Ok(c) => c,
        Err(gate) => {
            if gate == Gate::BadKey {
                state.metrics.auth_failures.inc();
            }
            if gate == Gate::OverQuota {
                state.metrics.quota_rejections.inc();
            }
            return gate_response(gate);
        }
    };
    match (req.method.as_str(), rest) {
        ("GET", ["records", id]) => get_record(&coll, id),
        ("GET", ["records"]) => scan_records(&coll, req),
        ("PUT", ["records"]) | ("POST", ["records"]) => put_record(&coll, req),
        ("GET", ["stats"]) => stats(&coll),
        ("GET", ["prov", "runs"]) => prov_runs(&coll, req),
        ("GET", ["search"]) => search(&coll, req),
        ("GET", ["facets"]) => facets(&coll, req),
        _ => Response::error(404, "no such route"),
    }
}

fn get_record(coll: &Arc<Collection>, id: &str) -> Response {
    let snap = coll.store().snapshot();
    let row = match snap.get(coll.options().records_table.as_str(), id.as_bytes()) {
        Ok(r) => r,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    match row.as_deref().and_then(decode_row::<Record>) {
        Some(record) => Response::json(
            200,
            serde_json::json!({
                "record": record,
                "as_of_lsn": snap.lsn(),
            }),
        ),
        None => Response::error(404, "no such record"),
    }
}

fn scan_records(coll: &Arc<Collection>, req: &Request) -> Response {
    let q = req.query();
    let limit: usize = q
        .get("limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
        .min(1000);
    let year: Option<i32> = q.get("year").and_then(|v| v.parse().ok());
    let snap = coll.store().snapshot();
    let all = match coll.catalog().all_at(&snap) {
        Ok(r) => r,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let matches = |r: &Record| {
        if let Some(s) = q.get("species") {
            if r.get_text("species") != Some(s.as_str()) {
                return false;
            }
        }
        if let Some(s) = q.get("state") {
            if r.get_text("state") != Some(s.as_str()) {
                return false;
            }
        }
        if let Some(y) = year {
            match r.get("collect_date") {
                Some(Value::Date(d)) if d.year == y => {}
                _ => return false,
            }
        }
        true
    };
    let mut total = 0usize;
    let mut hits = Vec::new();
    for r in all.iter().filter(|r| matches(r)) {
        total += 1;
        if hits.len() < limit {
            hits.push(r);
        }
    }
    Response::json(
        200,
        serde_json::json!({
            "total": total,
            "records": hits,
            "as_of_lsn": snap.lsn(),
        }),
    )
}

fn put_record(coll: &Arc<Collection>, req: &Request) -> Response {
    let record: Record = match serde_json::from_slice(&req.body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("bad record body: {e}")),
    };
    match coll.catalog().insert(&record) {
        Ok(receipt) => Response::json(
            201,
            serde_json::json!({
                "id": record.id,
                "first_seq": receipt.first_seq,
                "last_seq": receipt.last_seq,
                "lsn": receipt.lsn,
            }),
        ),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn stats(coll: &Arc<Collection>) -> Response {
    let snap = coll.store().snapshot();
    let as_of_lsn = snap.lsn();
    let records = match coll.catalog().all_at(&snap) {
        Ok(r) => r.len(),
        Err(e) => return Response::error(500, &e.to_string()),
    };
    // Release our own pin before reading the gauge, so a healthy idle
    // collection reports zero.
    drop(snap);
    let levels: Vec<serde_json::Value> = coll
        .engine()
        .runs_per_level()
        .into_iter()
        .map(|(level, runs)| serde_json::json!({ "level": level, "runs": runs }))
        .collect();
    Response::json(
        200,
        serde_json::json!({
            "records": records,
            "journal_head": coll.journal_head(),
            "as_of_lsn": as_of_lsn,
            "committed_lsn": coll.engine().committed_lsn(),
            "snapshots_pinned": coll.snapshots_pinned(),
            "runs_per_level": levels,
            "options_fingerprint": coll.options().fingerprint(),
        }),
    )
}

fn prov_runs(coll: &Arc<Collection>, req: &Request) -> Response {
    let q = req.query();
    // Fold in anything captured since the last refresh, then answer
    // from the index.
    let index = coll.prov_index();
    if let Err(e) = index.refresh() {
        return Response::error(500, &e.to_string());
    }
    let after: u64 = q.get("after").and_then(|v| v.parse().ok()).unwrap_or(0);
    let touched = q.get("touched").map(|v| v == "true").unwrap_or(false);
    let result = match (q.get("workflow"), q.get("artifact")) {
        (Some(wf), Some(art)) => index.runs_of_workflow_touching(wf, art),
        (Some(wf), None) => index.runs_of_workflow(wf),
        (None, Some(art)) if touched => index.runs_touching_artifact(art, after),
        (None, Some(art)) => index.runs_using_artifact(art, after),
        (None, None) => coll.provenance().run_ids(),
    };
    match result {
        Ok(runs) => Response::json(200, serde_json::json!({ "runs": runs })),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Token and fuzzy search over the journal-fed index. Folds anything
/// committed since the last index run first (like `prov_runs`), then
/// pins ONE snapshot and answers entirely from the search tables,
/// reporting the snapshot LSN, the index cursor it embodies, and the
/// live lag behind the journal head.
fn search(coll: &Arc<Collection>, req: &Request) -> Response {
    let q = req.query();
    if let Err(e) = coll.search().run() {
        return Response::error(500, &e.to_string());
    }
    let reader = coll.search().reader();
    let snap = coll.store().snapshot();
    let cursor = match reader.cursor_at(&snap) {
        Ok(c) => c,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let lag = coll.journal_head().saturating_sub(cursor);
    let meta = |mut v: serde_json::Value| {
        let obj = v.as_object_mut().expect("object");
        obj.insert("as_of_lsn".into(), serde_json::json!(snap.lsn()));
        obj.insert("index_cursor".into(), serde_json::json!(cursor));
        obj.insert("index_lag".into(), serde_json::json!(lag));
        Response::json(200, v)
    };
    if let Some(fuzzy_q) = q.get("fuzzy") {
        let distance: usize = q.get("distance").and_then(|v| v.parse().ok()).unwrap_or(2);
        return match reader.fuzzy(&snap, fuzzy_q, distance) {
            Ok(hit) => meta(serde_json::json!({
                "query": fuzzy_q,
                "distance_budget": distance,
                "match": hit.map(|h| serde_json::json!({
                    "name": h.name,
                    "distance": h.distance,
                    "candidates_scored": h.candidates_scored,
                })),
            })),
            Err(e) => Response::error(500, &e.to_string()),
        };
    }
    let terms = match q.get("q") {
        Some(t) => t,
        None => return Response::error(400, "missing query: pass q= or fuzzy="),
    };
    let limit: usize = q
        .get("limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
        .min(1000);
    match reader.query(&snap, q.get("field").map(String::as_str), terms, limit) {
        Ok(hits) => meta(serde_json::json!({
            "query": terms,
            "total": hits.total,
            "ids": hits.ids,
        })),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Facet breakdowns straight off the counter rows — the record table is
/// never read. Same freshness/pinning protocol as `search`.
fn facets(coll: &Arc<Collection>, req: &Request) -> Response {
    let q = req.query();
    if let Err(e) = coll.search().run() {
        return Response::error(500, &e.to_string());
    }
    let reader = coll.search().reader();
    let snap = coll.store().snapshot();
    let cursor = match reader.cursor_at(&snap) {
        Ok(c) => c,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    match reader.facets(&snap, q.get("facet").map(String::as_str)) {
        Ok(counts) => Response::json(
            200,
            serde_json::json!({
                "facets": counts,
                "as_of_lsn": snap.lsn(),
                "index_cursor": cursor,
                "index_lag": coll.journal_head().saturating_sub(cursor),
            }),
        ),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn metrics(state: &ServerState, req: &Request) -> Response {
    // The merged exposition names every tenant and exposes per-tenant
    // activity, so it is operator-only: it requires the admin key, a
    // credential distinct from any tenant's. An unconfigured admin key
    // means the endpoint is disabled, never open.
    let authorized = match &state.admin_key {
        Some(admin) => req
            .api_key()
            .is_some_and(|k| constant_time_key_eq(k, admin)),
        None => false,
    };
    if !authorized {
        state.metrics.auth_failures.inc();
        return Response::error(401, "metrics requires the admin key");
    }
    // Merge every OPEN tenant registry under a `tenant` label, then
    // append the server's own families (disjoint names, so the
    // exposition stays valid).
    let names = state.manager.names();
    let open: Vec<(String, Arc<Collection>)> = names
        .iter()
        .filter_map(|n| state.manager.peek(n).map(|c| (n.to_string(), c)))
        .collect();
    let parts: Vec<(&str, &preserva_obs::Registry)> = open
        .iter()
        .map(|(n, c)| (n.as_str(), c.metrics_registry().as_ref()))
        .collect();
    let mut text = preserva_obs::Registry::render_prometheus_merged("tenant", &parts);
    text.push_str(&state.registry.render_prometheus());
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: text.into_bytes(),
    }
}
