//! End-to-end exercises over a real socket: auth, tenant isolation,
//! snapshot reads, the live change feed (including resume-from-cursor),
//! the merged /metrics exposition, and verified-clean shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use preserva_server::tenants::{Quota, TenantConfig};
use preserva_server::{Server, ServerConfig};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("preserva-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tenant(name: &str, key: &str) -> TenantConfig {
    TenantConfig {
        name: name.into(),
        api_key: key.into(),
        quota: Quota::default(),
    }
}

fn start(tag: &str) -> (Server, PathBuf) {
    let root = tmp(tag);
    let config = ServerConfig::new("127.0.0.1:0", &root)
        .tenant(tenant("herp", "key-herp"))
        .tenant(tenant("ornith", "key-ornith"))
        .admin_key("op-secret");
    let mut config = config;
    config.feed_poll = Duration::from_millis(50);
    config.keep_alive = Duration::from_secs(2);
    (Server::start(config).unwrap(), root)
}

/// A parsed response: status, headers skipped, body fully read (sized or
/// chunked).
struct Reply {
    status: u16,
    body: String,
}

impl Reply {
    fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body).unwrap_or(serde_json::Value::Null)
    }
}

/// One-shot request over a fresh connection.
fn call(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    key: Option<&str>,
    body: Option<&str>,
) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let auth = key
        .map(|k| format!("Authorization: Bearer {k}\r\n"))
        .unwrap_or_default();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{auth}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    read_reply(&mut BufReader::new(stream))
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut len = 0usize;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
        if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
            chunked = true;
        }
    }
    let body = if chunked {
        read_chunked(reader)
    } else {
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf).unwrap();
        String::from_utf8_lossy(&buf).into_owned()
    };
    Reply { status, body }
}

fn read_chunked(reader: &mut BufReader<TcpStream>) -> String {
    let mut out = String::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line).is_err() {
            break;
        }
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        let mut buf = vec![0u8; size + 2]; // chunk + trailing CRLF
        reader.read_exact(&mut buf).unwrap();
        out.push_str(&String::from_utf8_lossy(&buf[..size]));
    }
    out
}

fn record_json(id: &str, species: &str) -> String {
    serde_json::json!({
        "id": id,
        "fields": { "species": { "Text": species } }
    })
    .to_string()
}

/// SSE event ids (journal seqs) in arrival order.
fn feed_seqs(body: &str) -> Vec<u64> {
    body.lines()
        .filter_map(|l| l.strip_prefix("id: "))
        .filter_map(|v| v.parse().ok())
        .collect()
}

#[test]
fn auth_and_tenant_isolation_end_to_end() {
    let (server, root) = start("iso");
    let addr = server.addr();

    // No auth needed for health.
    assert_eq!(call(addr, "GET", "/healthz", None, None).status, 200);

    // Wrong / missing key and unknown tenant bounce correctly.
    assert_eq!(
        call(addr, "GET", "/v1/herp/records", None, None).status,
        401
    );
    assert_eq!(
        call(addr, "GET", "/v1/herp/records", Some("wrong"), None).status,
        401
    );
    assert_eq!(
        call(addr, "GET", "/v1/nosuch/records", Some("key-herp"), None).status,
        404
    );

    // Write to herp; visible to herp, invisible to ornith.
    let put = call(
        addr,
        "PUT",
        "/v1/herp/records",
        Some("key-herp"),
        Some(&record_json("r1", "Hyla faber")),
    );
    assert_eq!(put.status, 201, "body: {}", put.body);
    assert!(put.json()["lsn"].as_u64().is_some());

    let got = call(addr, "GET", "/v1/herp/records/r1", Some("key-herp"), None);
    assert_eq!(got.status, 200);
    assert_eq!(got.json()["record"]["id"], "r1");

    let other = call(
        addr,
        "GET",
        "/v1/ornith/records/r1",
        Some("key-ornith"),
        None,
    );
    assert_eq!(other.status, 404, "tenants must not share data");

    // Filtered scan under a single pinned snapshot.
    call(
        addr,
        "PUT",
        "/v1/herp/records",
        Some("key-herp"),
        Some(&record_json("r2", "Puma concolor")),
    );
    let scan = call(
        addr,
        "GET",
        "/v1/herp/records?species=Hyla+faber",
        Some("key-herp"),
        None,
    );
    assert_eq!(scan.status, 200);
    assert_eq!(scan.json()["total"], 1);

    // Stats reports zero pinned snapshots once the request is done.
    let stats = call(addr, "GET", "/v1/herp/stats", Some("key-herp"), None);
    assert_eq!(stats.status, 200);
    assert_eq!(stats.json()["records"], 2);
    assert_eq!(stats.json()["snapshots_pinned"], 0);
    assert!(stats.json()["options_fingerprint"]
        .as_str()
        .unwrap()
        .contains("records_table=records"));

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn feed_streams_live_changes_and_resumes_without_gaps() {
    let (server, root) = start("feed");
    let addr = server.addr();

    for i in 0..5 {
        let put = call(
            addr,
            "PUT",
            "/v1/herp/records",
            Some("key-herp"),
            Some(&record_json(&format!("r{i}"), "Hyla faber")),
        );
        assert_eq!(put.status, 201);
    }
    let head = call(addr, "GET", "/v1/herp/stats", Some("key-herp"), None).json()["journal_head"]
        .as_u64()
        .unwrap();
    assert!(head >= 5);

    // Full replay from cursor 0.
    let full = call(
        addr,
        "GET",
        &format!("/v1/herp/feed?cursor=0&max_events={head}"),
        Some("key-herp"),
        None,
    );
    assert_eq!(full.status, 200);
    let all = feed_seqs(&full.body);
    assert_eq!(all.len() as u64, head);
    assert!(full.body.contains("event: change"));
    // Strictly increasing — no duplicates, no reordering.
    assert!(all.windows(2).all(|w| w[0] < w[1]), "seqs: {all:?}");

    // Resume from a mid-stream cursor: exactly the suffix, gap-free.
    let mid = all[2];
    let remaining = all.len() - 3;
    let rest = call(
        addr,
        "GET",
        &format!("/v1/herp/feed?cursor={mid}&max_events={remaining}"),
        Some("key-herp"),
        None,
    );
    let suffix = feed_seqs(&rest.body);
    assert_eq!(
        suffix,
        all[3..].to_vec(),
        "resume must be gap- and dup-free"
    );

    // Live push: subscribe first, then write, and see the event arrive.
    let addr2 = addr;
    let sub = std::thread::spawn(move || {
        call(
            addr2,
            "GET",
            &format!("/v1/herp/feed?cursor={head}&max_events=1"),
            Some("key-herp"),
            None,
        )
    });
    std::thread::sleep(Duration::from_millis(150)); // let the long-poll park
    call(
        addr,
        "PUT",
        "/v1/herp/records",
        Some("key-herp"),
        Some(&record_json("live", "Caiman latirostris")),
    );
    let pushed = sub.join().unwrap();
    let seqs = feed_seqs(&pushed.body);
    assert_eq!(seqs.len(), 1);
    assert!(seqs[0] > head);

    // A cursor at the journal head yields only keepalives until
    // max_events… so use the past-the-end cursor u64::MAX: the feed
    // treats it as "nothing ever", closing after one poll cycle is not
    // guaranteed — skip streaming and just check the edge doesn't wedge
    // the server: the request below must still be answerable.
    assert_eq!(call(addr, "GET", "/healthz", None, None).status, 200);

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_merge_tenant_families_with_server_families() {
    let (server, root) = start("metrics");
    let addr = server.addr();

    // Touch both tenants so their registries are open and populated.
    call(
        addr,
        "PUT",
        "/v1/herp/records",
        Some("key-herp"),
        Some(&record_json("m1", "Hyla faber")),
    );
    call(addr, "GET", "/v1/ornith/stats", Some("key-ornith"), None);
    // And provoke an auth failure for the counter.
    call(addr, "GET", "/v1/herp/stats", Some("bad"), None);

    // The merged exposition names every tenant, so it is operator-only:
    // no key and tenant keys are both rejected (and counted).
    assert_eq!(call(addr, "GET", "/metrics", None, None).status, 401);
    assert_eq!(
        call(addr, "GET", "/metrics", Some("key-herp"), None).status,
        401,
        "a tenant key must not unlock the cross-tenant exposition"
    );

    let metrics = call(addr, "GET", "/metrics", Some("op-secret"), None);
    assert_eq!(metrics.status, 200);
    let text = &metrics.body;
    assert!(
        text.contains("preserva_server_requests_total"),
        "server families present"
    );
    // 1 tenant bad-key + 2 rejected /metrics scrapes above.
    assert!(text.contains("preserva_server_auth_failures_total 3"));
    assert!(
        text.contains("tenant=\"herp\"") && text.contains("tenant=\"ornith\""),
        "tenant-labeled families present:\n{text}"
    );
    assert!(
        text.contains("preserva_collection_options_info"),
        "collection fingerprint info gauge is exported"
    );

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn record_ids_containing_slashes_are_reachable() {
    let (server, root) = start("slashid");
    let addr = server.addr();
    let put = call(
        addr,
        "PUT",
        "/v1/herp/records",
        Some("key-herp"),
        Some(&record_json("FNJV/0001", "Hyla faber")),
    );
    assert_eq!(put.status, 201, "body: {}", put.body);
    // %2F stays inside the id segment: the record is reachable.
    let got = call(
        addr,
        "GET",
        "/v1/herp/records/FNJV%2F0001",
        Some("key-herp"),
        None,
    );
    assert_eq!(got.status, 200, "body: {}", got.body);
    assert_eq!(got.json()["record"]["id"], "FNJV/0001");
    // A literal slash genuinely changes the route shape — clean 404,
    // not a mis-route.
    let raw = call(
        addr,
        "GET",
        "/v1/herp/records/FNJV/0001",
        Some("key-herp"),
        None,
    );
    assert_eq!(raw.status, 404);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn search_and_facets_end_to_end() {
    let (server, root) = start("search");
    let addr = server.addr();

    // Both search endpoints sit behind tenant auth.
    assert_eq!(
        call(addr, "GET", "/v1/herp/search?q=hyla", None, None).status,
        401
    );
    assert_eq!(
        call(addr, "GET", "/v1/herp/facets", Some("wrong"), None).status,
        401
    );

    // Seed herp; ornith stays empty — isolation check below.
    for (id, species) in [
        ("s1", "Hyla faber"),
        ("s2", "Hyla faber"),
        ("s3", "Scinax ruber"),
    ] {
        assert_eq!(
            call(
                addr,
                "PUT",
                "/v1/herp/records",
                Some("key-herp"),
                Some(&record_json(id, species)),
            )
            .status,
            201
        );
    }

    // Token search folds the journal in first, then answers under one
    // pinned snapshot, reporting LSN + cursor + lag.
    let hits = call(
        addr,
        "GET",
        "/v1/herp/search?q=hyla&field=species",
        Some("key-herp"),
        None,
    );
    assert_eq!(hits.status, 200, "body: {}", hits.body);
    let j = hits.json();
    assert_eq!(j["total"], 2);
    assert_eq!(j["ids"], serde_json::json!(["s1", "s2"]));
    assert!(j["as_of_lsn"].as_u64().unwrap() > 0);
    assert_eq!(j["index_lag"], 0, "handler refreshed before answering");
    let cursor = j["index_cursor"].as_u64().unwrap();
    assert!(cursor >= 3, "cursor covers the three inserts");

    // Missing query parameter is a clean 400.
    assert_eq!(
        call(addr, "GET", "/v1/herp/search", Some("key-herp"), None).status,
        400
    );

    // Fuzzy lookup through the persisted n-gram index.
    let fuzzy = call(
        addr,
        "GET",
        "/v1/herp/search?fuzzy=Hyla+fabre&distance=2",
        Some("key-herp"),
        None,
    );
    assert_eq!(fuzzy.status, 200);
    assert_eq!(fuzzy.json()["match"]["name"], "Hyla faber");
    assert_eq!(fuzzy.json()["match"]["distance"], 1);

    // Facets answered off the counter rows alone.
    let facets = call(addr, "GET", "/v1/herp/facets", Some("key-herp"), None);
    assert_eq!(facets.status, 200);
    let f = facets.json();
    assert_eq!(f["facets"]["georeferenced"]["no"], 3);
    assert_eq!(f["facets"]["quality"]["low"], 3);
    assert_eq!(f["index_lag"], 0);

    // Tenant isolation: ornith's index is empty, not herp's.
    let other = call(
        addr,
        "GET",
        "/v1/ornith/search?q=hyla",
        Some("key-ornith"),
        None,
    );
    assert_eq!(other.status, 200);
    assert_eq!(other.json()["total"], 0, "tenants must not share indexes");

    // Consistency with a concurrent writer: a record landing while we
    // query is either fully visible (in hits AND facets at a later
    // cursor) or fully invisible — never half-indexed. After the next
    // search, it must be visible with lag 0 again.
    assert_eq!(
        call(
            addr,
            "PUT",
            "/v1/herp/records",
            Some("key-herp"),
            Some(&record_json("s4", "Hyla faber")),
        )
        .status,
        201
    );
    let after = call(
        addr,
        "GET",
        "/v1/herp/search?q=faber",
        Some("key-herp"),
        None,
    );
    assert_eq!(after.json()["total"], 3);
    assert_eq!(after.json()["index_lag"], 0);
    assert!(after.json()["index_cursor"].as_u64().unwrap() > cursor);
    let facets2 = call(addr, "GET", "/v1/herp/facets", Some("key-herp"), None);
    assert_eq!(facets2.json()["facets"]["georeferenced"]["no"], 4);

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn search_respects_request_quota() {
    let root = tmp("search-quota");
    let mut config = ServerConfig::new("127.0.0.1:0", &root);
    config.feed_poll = Duration::from_millis(50);
    let config = config.tenant(TenantConfig {
        name: "small".into(),
        api_key: "k".into(),
        quota: Quota {
            max_requests: 2,
            window: Duration::from_secs(60),
            max_subscribers: 1,
        },
    });
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    assert_eq!(
        call(addr, "GET", "/v1/small/search?q=x", Some("k"), None).status,
        200
    );
    assert_eq!(
        call(addr, "GET", "/v1/small/facets", Some("k"), None).status,
        200
    );
    assert_eq!(
        call(addr, "GET", "/v1/small/search?q=x", Some("k"), None).status,
        429,
        "search requests count against the tenant quota"
    );

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quota_limits_requests_per_window() {
    let root = tmp("quota");
    let mut config = ServerConfig::new("127.0.0.1:0", &root);
    config.feed_poll = Duration::from_millis(50);
    let config = config.tenant(TenantConfig {
        name: "small".into(),
        api_key: "k".into(),
        quota: Quota {
            max_requests: 3,
            window: Duration::from_secs(60),
            max_subscribers: 1,
        },
    });
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    for _ in 0..3 {
        assert_eq!(
            call(addr, "GET", "/v1/small/stats", Some("k"), None).status,
            200
        );
    }
    assert_eq!(
        call(addr, "GET", "/v1/small/stats", Some("k"), None).status,
        429
    );

    // This server configured no admin key: /metrics is disabled, not
    // open — even a tenant key doesn't unlock it.
    assert_eq!(call(addr, "GET", "/metrics", None, None).status, 401);
    assert_eq!(call(addr, "GET", "/metrics", Some("k"), None).status, 401);

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_closes_collections_cleanly_and_data_survives_restart() {
    let root = tmp("restart");
    let build = |root: &PathBuf| {
        let mut c = ServerConfig::new("127.0.0.1:0", root).tenant(tenant("herp", "key-herp"));
        c.feed_poll = Duration::from_millis(50);
        c
    };

    let server = Server::start(build(&root)).unwrap();
    let addr = server.addr();
    assert_eq!(
        call(
            addr,
            "PUT",
            "/v1/herp/records",
            Some("key-herp"),
            Some(&record_json("persist", "Hyla faber")),
        )
        .status,
        201
    );
    server.shutdown().unwrap();

    // Reopen over the same directory: the record is still there.
    let server = Server::start(build(&root)).unwrap();
    let got = call(
        server.addr(),
        "GET",
        "/v1/herp/records/persist",
        Some("key-herp"),
        None,
    );
    assert_eq!(got.status, 200);
    assert_eq!(got.json()["record"]["id"], "persist");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
