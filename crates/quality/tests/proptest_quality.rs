//! Property tests for quality invariants (DESIGN.md §7): scores stay in
//! [0,1], aggregation is weight-scale-invariant, decay is monotone.

use proptest::prelude::*;

use preserva_quality::aggregate::{combine, Combine};
use preserva_quality::decay;
use preserva_quality::dimension::{clamp_score, Dimension};
use preserva_quality::goal::QualityGoal;
use preserva_quality::metric::{AssessmentContext, Metric};
use preserva_quality::model::QualityModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All combinators keep scores in [0, 1] for arbitrary inputs.
    #[test]
    fn combinators_bounded(pairs in proptest::collection::vec((-2.0f64..3.0, 0.0f64..5.0), 0..10)) {
        for how in [Combine::WeightedMean, Combine::Min, Combine::Geometric] {
            if let Some(got) = combine(&pairs, how) {
                prop_assert!((0.0..=1.0).contains(&got), "{how:?} -> {got}");
            }
        }
    }

    /// Weighted mean is invariant under uniform weight scaling.
    #[test]
    fn weighted_mean_scale_invariant(
        pairs in proptest::collection::vec((0.0f64..1.0, 0.01f64..5.0), 1..8),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<(f64, f64)> = pairs.iter().map(|(s, w)| (*s, w * scale)).collect();
        let a = combine(&pairs, Combine::WeightedMean).unwrap();
        let b = combine(&scaled, Combine::WeightedMean).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Min ≤ geometric ≤ weighted mean (the AM–GM chain for scores).
    #[test]
    fn combinator_ordering(scores in proptest::collection::vec(0.01f64..1.0, 1..8)) {
        let pairs: Vec<(f64, f64)> = scores.iter().map(|s| (*s, 1.0)).collect();
        let min = combine(&pairs, Combine::Min).unwrap();
        let geo = combine(&pairs, Combine::Geometric).unwrap();
        let mean = combine(&pairs, Combine::WeightedMean).unwrap();
        prop_assert!(min <= geo + 1e-9);
        prop_assert!(geo <= mean + 1e-9);
    }

    /// Metric measurement always lands in [0, 1] no matter what the
    /// method returns.
    #[test]
    fn metric_scores_clamped(raw in -10.0f64..10.0) {
        let m = Metric::new("wild", Dimension::new("d"), move |_| Some(raw));
        let got = m.measure(&AssessmentContext::new()).unwrap();
        prop_assert!((0.0..=1.0).contains(&got));
        prop_assert_eq!(got, clamp_score(raw));
    }

    /// Decay functions are monotone non-increasing in age and bounded.
    #[test]
    fn decay_monotone(half_life in 0.5f64..100.0, churn in 0.0f64..0.2) {
        let mut last_c = f64::INFINITY;
        let mut last_a = f64::INFINITY;
        for age in 0..60 {
            let c = decay::currency(age as f64, half_life);
            let a = decay::expected_name_accuracy(age as f64, churn);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(c <= last_c + 1e-12);
            prop_assert!(a <= last_a + 1e-12);
            last_c = c;
            last_a = a;
        }
    }

    /// years_until_recuration inverts expected_name_accuracy.
    #[test]
    fn recuration_inverts_decay(churn in 0.001f64..0.2, threshold in 0.1f64..0.99) {
        if let Some(years) = decay::years_until_recuration(churn, threshold) {
            let acc = decay::expected_name_accuracy(years, churn);
            prop_assert!((acc - threshold).abs() < 1e-6, "acc {acc} vs {threshold}");
        }
    }

    /// Goal evaluation: satisfied ⇔ every term's dimension scored ≥ its
    /// minimum.
    #[test]
    fn goal_satisfaction_consistent(
        scores in proptest::collection::vec(0.0f64..1.0, 3),
        mins in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let dims = [Dimension::accuracy(), Dimension::completeness(), Dimension::reputation()];
        let model = {
            let mut m = QualityModel::new();
            for (d, s) in dims.iter().zip(&scores) {
                let s = *s;
                m.add_metric(Metric::new("m", d.clone(), move |_| Some(s)));
            }
            m
        };
        let report = model.assess("s", &AssessmentContext::new());
        let mut goal = QualityGoal::new("g");
        for (d, min) in dims.iter().zip(&mins) {
            goal = goal.require(d.clone(), 1.0, *min);
        }
        let eval = goal.evaluate(&report);
        let expect_satisfied = scores.iter().zip(&mins).all(|(s, m)| clamp_score(*s) >= *m);
        prop_assert_eq!(eval.satisfied(), expect_satisfied);
        if let Some(overall) = eval.overall {
            prop_assert!((0.0..=1.0).contains(&overall));
        }
    }
}
