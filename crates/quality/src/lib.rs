#![warn(missing_docs)]

//! `preserva-quality` — the quality metamodel and assessment engine behind
//! the paper's Data Quality Manager.
//!
//! The design follows Lemos' proposal the paper says its final Quality
//! Manager will be based on: users define **quality goals** over
//! **dimensions**, each dimension measured by **metrics** whose
//! **measurement methods** are pluggable code. Assessment draws on three
//! inputs (paper §III): (a) stored provenance, (b) quality annotations
//! added by the Workflow Adapter, and (c) external data sources.
//!
//! * [`dimension`] — the dimension vocabulary (accuracy, completeness,
//!   timeliness, availability, reputation, …)
//! * [`metric`] — metrics + measurement methods over an
//!   [`metric::AssessmentContext`]
//! * [`model`] — the metamodel: register metrics, run assessments
//! * [`goal`] — quality goals with weights and minimum thresholds
//! * [`report`] — assessment reports (per-dimension scores + provenance of
//!   the assessment itself)
//! * [`provenance_based`] — score propagation over OPM lineage (the
//!   paper's approach)
//! * [`attribute_based`] — the related-work baseline that ignores
//!   provenance (ablation A1 contrasts the two)
//! * [`decay`] — temporal quality decay ("quality decrease with time")
//! * [`aggregate`] — weighted/min/geometric score combinators

pub mod aggregate;
pub mod attribute_based;
pub mod decay;
pub mod dimension;
pub mod goal;
pub mod ledger;
pub mod metric;
pub mod model;
pub mod provenance_based;
pub mod report;
pub mod sources;

pub use dimension::Dimension;
pub use goal::QualityGoal;
pub use ledger::{Contribution, ContributionLedger};
pub use metric::{AssessmentContext, Metric};
pub use model::QualityModel;
pub use report::QualityReport;
