//! Quality dimensions: "a set of data quality attributes that allow to
//! represent a particular characteristic of quality" (paper §II-B).

use serde::{Deserialize, Serialize};

/// A named quality dimension. Scores for every dimension are normalized to
/// `[0, 1]`, 1 being best.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dimension(pub String);

impl Dimension {
    /// Create a dimension by name (lowercased for identity).
    pub fn new(name: &str) -> Self {
        Dimension(name.to_lowercase())
    }

    /// Fraction of values that agree with an authoritative source — the
    /// dimension the case study computes (93%).
    pub fn accuracy() -> Self {
        Dimension::new("accuracy")
    }

    /// Fraction of fields actually filled.
    pub fn completeness() -> Self {
        Dimension::new("completeness")
    }

    /// How up-to-date values are relative to current knowledge.
    pub fn timeliness() -> Self {
        Dimension::new("timeliness")
    }

    /// Absence of internal contradictions.
    pub fn consistency() -> Self {
        Dimension::new("consistency")
    }

    /// Fraction of requests an external source answers (paper: 0.9).
    pub fn availability() -> Self {
        Dimension::new("availability")
    }

    /// Expert-assigned trust in a source (paper: 1.0).
    pub fn reputation() -> Self {
        Dimension::new("reputation")
    }

    /// Probability a process completes correctly.
    pub fn reliability() -> Self {
        Dimension::new("reliability")
    }

    /// Freshness of the data itself (decays with age).
    pub fn currency() -> Self {
        Dimension::new("currency")
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Dimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Clamp any raw score into the legal `[0, 1]` range (NaN → 0).
pub fn clamp_score(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(Dimension::new("Accuracy"), Dimension::accuracy());
        assert_eq!(Dimension::new("ACCURACY").name(), "accuracy");
    }

    #[test]
    fn builtin_dimensions_distinct() {
        let all = [
            Dimension::accuracy(),
            Dimension::completeness(),
            Dimension::timeliness(),
            Dimension::consistency(),
            Dimension::availability(),
            Dimension::reputation(),
            Dimension::reliability(),
            Dimension::currency(),
        ];
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn clamp_handles_edge_cases() {
        assert_eq!(clamp_score(0.5), 0.5);
        assert_eq!(clamp_score(-1.0), 0.0);
        assert_eq!(clamp_score(2.0), 1.0);
        assert_eq!(clamp_score(f64::NAN), 0.0);
    }
}
