//! Score combinators: how several dimension scores become one number.

use crate::dimension::clamp_score;

/// How to combine multiple scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Weighted arithmetic mean (weights normalized).
    WeightedMean,
    /// The worst score dominates — appropriate when any failing dimension
    /// makes the data unusable. Weights are ignored entirely: "unusable"
    /// does not become usable by being down-weighted, so even a
    /// zero-weight dimension can dominate.
    Min,
    /// Geometric mean — penalizes imbalance more than the arithmetic mean.
    Geometric,
}

/// Combine `(score, weight)` pairs. Returns `None` for an empty input —
/// and, for the weight-sensitive combinators, for all-zero weights.
///
/// `Combine::Min` is weight-*insensitive* by definition: it answers "how
/// bad is the worst dimension", and a dimension does not stop being the
/// worst because its weight is zero. (An earlier implementation filtered
/// zero-weight pairs before *every* combinator, which silently let a
/// zero-weighted worst dimension stop dominating the minimum.)
pub fn combine(pairs: &[(f64, f64)], how: Combine) -> Option<f64> {
    if let Combine::Min = how {
        return pairs
            .iter()
            .map(|(s, _)| clamp_score(*s))
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.min(s)))
            });
    }
    let pairs: Vec<(f64, f64)> = pairs
        .iter()
        .filter(|(_, w)| *w > 0.0)
        .map(|(s, w)| (clamp_score(*s), *w))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let total_w: f64 = pairs.iter().map(|(_, w)| w).sum();
    Some(match how {
        Combine::WeightedMean => pairs.iter().map(|(s, w)| s * w).sum::<f64>() / total_w,
        Combine::Min => unreachable!("handled above"),
        Combine::Geometric => {
            // Weighted geometric mean; zero scores yield zero.
            if pairs.iter().any(|(s, _)| *s == 0.0) {
                0.0
            } else {
                (pairs
                    .iter()
                    .map(|(s, w)| (w / total_w) * s.ln())
                    .sum::<f64>())
                .exp()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_basic() {
        let got = combine(&[(1.0, 1.0), (0.5, 1.0)], Combine::WeightedMean).unwrap();
        assert!((got - 0.75).abs() < 1e-12);
        let weighted = combine(&[(1.0, 3.0), (0.0, 1.0)], Combine::WeightedMean).unwrap();
        assert!((weighted - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_is_scale_invariant_in_weights() {
        let a = combine(&[(0.9, 1.0), (0.6, 2.0)], Combine::WeightedMean).unwrap();
        let b = combine(&[(0.9, 10.0), (0.6, 20.0)], Combine::WeightedMean).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn min_takes_worst() {
        assert_eq!(combine(&[(0.9, 1.0), (0.2, 1.0)], Combine::Min), Some(0.2));
    }

    /// Regression: zero-weight pairs were filtered out before `Min`, so a
    /// zero-weighted worst dimension silently stopped dominating.
    #[test]
    fn min_ignores_weights_entirely() {
        // The worst score carries weight 0.0 — it must still dominate.
        assert_eq!(combine(&[(0.9, 1.0), (0.2, 0.0)], Combine::Min), Some(0.2));
        // All-zero weights: Min is still defined (weights are irrelevant),
        // unlike the weight-sensitive combinators.
        assert_eq!(combine(&[(0.9, 0.0)], Combine::Min), Some(0.9));
        // Weight magnitudes never change the winner.
        assert_eq!(
            combine(&[(0.5, 100.0), (0.6, 0.001)], Combine::Min),
            Some(0.5)
        );
        // Scores are still clamped to the unit interval.
        assert_eq!(combine(&[(-3.0, 0.0)], Combine::Min), Some(0.0));
    }

    #[test]
    fn geometric_penalizes_imbalance() {
        let arith = combine(&[(1.0, 1.0), (0.25, 1.0)], Combine::WeightedMean).unwrap();
        let geo = combine(&[(1.0, 1.0), (0.25, 1.0)], Combine::Geometric).unwrap();
        assert!(geo < arith);
        assert!((geo - 0.5).abs() < 1e-9); // sqrt(0.25)
    }

    #[test]
    fn geometric_zero_dominates() {
        assert_eq!(
            combine(&[(0.0, 1.0), (1.0, 1.0)], Combine::Geometric),
            Some(0.0)
        );
    }

    #[test]
    fn empty_or_zero_weights_none() {
        assert_eq!(combine(&[], Combine::Min), None);
        assert_eq!(combine(&[(0.9, 0.0)], Combine::WeightedMean), None);
    }

    #[test]
    fn results_stay_in_unit_interval() {
        for how in [Combine::WeightedMean, Combine::Min, Combine::Geometric] {
            let got = combine(&[(2.0, 1.0), (-1.0, 2.0), (0.5, 3.0)], how).unwrap();
            assert!((0.0..=1.0).contains(&got), "{how:?} → {got}");
        }
    }
}
