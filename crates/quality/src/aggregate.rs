//! Score combinators: how several dimension scores become one number.

use crate::dimension::clamp_score;

/// How to combine multiple scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Weighted arithmetic mean (weights normalized).
    WeightedMean,
    /// The worst score dominates — appropriate when any failing dimension
    /// makes the data unusable.
    Min,
    /// Geometric mean — penalizes imbalance more than the arithmetic mean.
    Geometric,
}

/// Combine `(score, weight)` pairs. Returns `None` for an empty input or
/// all-zero weights.
pub fn combine(pairs: &[(f64, f64)], how: Combine) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = pairs
        .iter()
        .filter(|(_, w)| *w > 0.0)
        .map(|(s, w)| (clamp_score(*s), *w))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let total_w: f64 = pairs.iter().map(|(_, w)| w).sum();
    Some(match how {
        Combine::WeightedMean => pairs.iter().map(|(s, w)| s * w).sum::<f64>() / total_w,
        Combine::Min => pairs.iter().map(|(s, _)| *s).fold(f64::INFINITY, f64::min),
        Combine::Geometric => {
            // Weighted geometric mean; zero scores yield zero.
            if pairs.iter().any(|(s, _)| *s == 0.0) {
                0.0
            } else {
                (pairs
                    .iter()
                    .map(|(s, w)| (w / total_w) * s.ln())
                    .sum::<f64>())
                .exp()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_basic() {
        let got = combine(&[(1.0, 1.0), (0.5, 1.0)], Combine::WeightedMean).unwrap();
        assert!((got - 0.75).abs() < 1e-12);
        let weighted = combine(&[(1.0, 3.0), (0.0, 1.0)], Combine::WeightedMean).unwrap();
        assert!((weighted - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_is_scale_invariant_in_weights() {
        let a = combine(&[(0.9, 1.0), (0.6, 2.0)], Combine::WeightedMean).unwrap();
        let b = combine(&[(0.9, 10.0), (0.6, 20.0)], Combine::WeightedMean).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn min_takes_worst() {
        assert_eq!(combine(&[(0.9, 1.0), (0.2, 1.0)], Combine::Min), Some(0.2));
    }

    #[test]
    fn geometric_penalizes_imbalance() {
        let arith = combine(&[(1.0, 1.0), (0.25, 1.0)], Combine::WeightedMean).unwrap();
        let geo = combine(&[(1.0, 1.0), (0.25, 1.0)], Combine::Geometric).unwrap();
        assert!(geo < arith);
        assert!((geo - 0.5).abs() < 1e-9); // sqrt(0.25)
    }

    #[test]
    fn geometric_zero_dominates() {
        assert_eq!(
            combine(&[(0.0, 1.0), (1.0, 1.0)], Combine::Geometric),
            Some(0.0)
        );
    }

    #[test]
    fn empty_or_zero_weights_none() {
        assert_eq!(combine(&[], Combine::Min), None);
        assert_eq!(combine(&[(0.9, 0.0)], Combine::WeightedMean), None);
    }

    #[test]
    fn results_stay_in_unit_interval() {
        for how in [Combine::WeightedMean, Combine::Min, Combine::Geometric] {
            let got = combine(&[(2.0, 1.0), (-1.0, 2.0), (0.5, 3.0)], how).unwrap();
            assert!((0.0..=1.0).contains(&got), "{how:?} → {got}");
        }
    }
}
