//! The quality metamodel: registered metrics, run on demand.
//!
//! End users (scientists) register the dimensions they care about and the
//! metrics that compute them; [`QualityModel::assess`] runs every metric
//! against a context and reports scores plus which requested dimensions
//! were unavailable.

use crate::dimension::Dimension;
use crate::metric::{AssessmentContext, Metric};
use crate::report::QualityReport;

/// A user-configured set of metrics.
///
/// # Example
///
/// ```
/// use preserva_quality::dimension::Dimension;
/// use preserva_quality::metric::{AssessmentContext, Metric};
/// use preserva_quality::model::QualityModel;
///
/// let model = QualityModel::new().with_metric(Metric::from_ratio(
///     "accuracy", Dimension::accuracy(), "names_correct", "names_checked",
/// ));
/// let ctx = AssessmentContext::new()
///     .with_fact("names_checked", 1929.0)
///     .with_fact("names_correct", 1795.0);
/// let report = model.assess("fnjv", &ctx);
/// let acc = report.score(&Dimension::accuracy()).unwrap();
/// assert!((acc - 0.9305).abs() < 0.001); // the paper's 93%
/// ```
#[derive(Debug, Clone, Default)]
pub struct QualityModel {
    metrics: Vec<Metric>,
}

impl QualityModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a metric (builder style).
    pub fn with_metric(mut self, m: Metric) -> Self {
        self.add_metric(m);
        self
    }

    /// Register a metric.
    pub fn add_metric(&mut self, m: Metric) {
        self.metrics.push(m);
    }

    /// Registered metrics.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Dimensions covered by at least one metric.
    pub fn dimensions(&self) -> Vec<&Dimension> {
        let mut out: Vec<&Dimension> = self.metrics.iter().map(|m| &m.dimension).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Run every metric against `ctx`. Metrics that return `None` put
    /// their dimension on the `unavailable` list (unless another metric
    /// computed it).
    pub fn assess(&self, subject: &str, ctx: &AssessmentContext) -> QualityReport {
        let mut report = QualityReport::new(subject);
        let mut missing: Vec<Dimension> = Vec::new();
        for m in &self.metrics {
            match m.measure(ctx) {
                Some(score) => report.push(m.dimension.clone(), &m.name, score),
                None => missing.push(m.dimension.clone()),
            }
        }
        missing.retain(|d| report.score(d).is_none());
        missing.sort();
        missing.dedup();
        report.unavailable = missing;
        report
    }

    /// The default model for the paper's case study: accuracy from the
    /// name-check counts, reputation/availability from the Catalogue of
    /// Life annotations, reliability from observed run behaviour.
    pub fn case_study_default() -> QualityModel {
        QualityModel::new()
            .with_metric(Metric::from_ratio(
                "species-name accuracy (vs Catalogue of Life)",
                Dimension::accuracy(),
                "names_correct",
                "names_checked",
            ))
            .with_metric(Metric::from_annotation(
                "Catalogue of Life reputation (expert annotation)",
                Dimension::reputation(),
                "reputation",
            ))
            .with_metric(Metric::from_annotation(
                "Catalogue of Life availability (expert annotation)",
                Dimension::availability(),
                "availability",
            ))
            .with_metric(Metric::from_fact(
                "workflow reliability (observed)",
                Dimension::reliability(),
                "observed_availability",
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_study_ctx() -> AssessmentContext {
        AssessmentContext::new()
            .with_fact("names_checked", 1929.0)
            .with_fact("names_correct", 1795.0)
            .with_annotation("reputation", 1.0)
            .with_annotation("availability", 0.9)
            .with_fact("observed_availability", 0.91)
    }

    #[test]
    fn case_study_model_reproduces_93_percent() {
        let model = QualityModel::case_study_default();
        let report = model.assess("fnjv", &case_study_ctx());
        let acc = report.score(&Dimension::accuracy()).unwrap();
        assert!((acc - 0.9305).abs() < 0.001, "accuracy {acc}");
        assert_eq!(report.score(&Dimension::reputation()), Some(1.0));
        assert_eq!(report.score(&Dimension::availability()), Some(0.9));
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn missing_inputs_reported_unavailable() {
        let model = QualityModel::case_study_default();
        let report = model.assess("fnjv", &AssessmentContext::new());
        assert!(report.unavailable.contains(&Dimension::accuracy()));
        assert!(report.attributes.is_empty());
    }

    #[test]
    fn dimension_available_if_any_metric_computes() {
        let model = QualityModel::new()
            .with_metric(Metric::new("never", Dimension::accuracy(), |_| None))
            .with_metric(Metric::new("always", Dimension::accuracy(), |_| Some(0.5)));
        let report = model.assess("s", &AssessmentContext::new());
        assert_eq!(report.score(&Dimension::accuracy()), Some(0.5));
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn dimensions_deduplicated() {
        let model = QualityModel::new()
            .with_metric(Metric::new("a", Dimension::accuracy(), |_| Some(1.0)))
            .with_metric(Metric::new("b", Dimension::accuracy(), |_| Some(0.9)));
        assert_eq!(model.dimensions().len(), 1);
        assert_eq!(model.metrics().len(), 2);
    }
}
