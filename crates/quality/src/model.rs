//! The quality metamodel: registered metrics, run on demand.
//!
//! End users (scientists) register the dimensions they care about and the
//! metrics that compute them; [`QualityModel::assess`] runs every metric
//! against a context and reports scores plus which requested dimensions
//! were unavailable.

use std::sync::Arc;
use std::time::Instant;

use preserva_obs::Registry;

use crate::dimension::Dimension;
use crate::metric::{AssessmentContext, Metric};
use crate::report::QualityReport;

/// A user-configured set of metrics.
///
/// # Example
///
/// ```
/// use preserva_quality::dimension::Dimension;
/// use preserva_quality::metric::{AssessmentContext, Metric};
/// use preserva_quality::model::QualityModel;
///
/// let model = QualityModel::new().with_metric(Metric::from_ratio(
///     "accuracy", Dimension::accuracy(), "names_correct", "names_checked",
/// ));
/// let ctx = AssessmentContext::new()
///     .with_fact("names_checked", 1929.0)
///     .with_fact("names_correct", 1795.0);
/// let report = model.assess("fnjv", &ctx);
/// let acc = report.score(&Dimension::accuracy()).unwrap();
/// assert!((acc - 0.9305).abs() < 0.001); // the paper's 93%
/// ```
#[derive(Debug, Clone, Default)]
pub struct QualityModel {
    metrics: Vec<Metric>,
}

impl QualityModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a metric (builder style).
    pub fn with_metric(mut self, m: Metric) -> Self {
        self.add_metric(m);
        self
    }

    /// Register a metric.
    pub fn add_metric(&mut self, m: Metric) {
        self.metrics.push(m);
    }

    /// Registered metrics.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Dimensions covered by at least one metric.
    pub fn dimensions(&self) -> Vec<&Dimension> {
        let mut out: Vec<&Dimension> = self.metrics.iter().map(|m| &m.dimension).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Run every metric against `ctx`. Metrics that return `None` put
    /// their dimension on the `unavailable` list (unless another metric
    /// computed it).
    pub fn assess(&self, subject: &str, ctx: &AssessmentContext) -> QualityReport {
        self.assess_inner(subject, ctx, None)
    }

    /// Like [`assess`](Self::assess), but reports evaluation timings to
    /// `obs`:
    ///
    /// - `preserva_quality_assessments_total` — assessments run;
    /// - `preserva_quality_evaluation_seconds` — whole-assessment latency;
    /// - `preserva_quality_metric_evaluation_seconds{metric}` — per-metric
    ///   latency, labelled by metric name.
    pub fn assess_observed(
        &self,
        subject: &str,
        ctx: &AssessmentContext,
        obs: &Arc<Registry>,
    ) -> QualityReport {
        self.assess_inner(subject, ctx, Some(obs))
    }

    fn assess_inner(
        &self,
        subject: &str,
        ctx: &AssessmentContext,
        obs: Option<&Arc<Registry>>,
    ) -> QualityReport {
        let started = obs.map(|_| Instant::now());
        let mut report = QualityReport::new(subject);
        let mut missing: Vec<Dimension> = Vec::new();
        for m in &self.metrics {
            let metric_started = obs.map(|_| Instant::now());
            let measured = m.measure(ctx);
            if let (Some(obs), Some(t0)) = (obs, metric_started) {
                obs.latency_histogram_with(
                    "preserva_quality_metric_evaluation_seconds",
                    "Latency of individual quality-metric evaluations.",
                    &[("metric", &m.name)],
                )
                .observe_duration(t0.elapsed());
            }
            match measured {
                Some(score) => report.push(m.dimension.clone(), &m.name, score),
                None => missing.push(m.dimension.clone()),
            }
        }
        missing.retain(|d| report.score(d).is_none());
        missing.sort();
        missing.dedup();
        report.unavailable = missing;
        if let (Some(obs), Some(t0)) = (obs, started) {
            obs.counter(
                "preserva_quality_assessments_total",
                "Quality assessments run.",
            )
            .inc();
            obs.latency_histogram(
                "preserva_quality_evaluation_seconds",
                "Latency of whole quality assessments (all metrics).",
            )
            .observe_duration(t0.elapsed());
        }
        report
    }

    /// The default model for the paper's case study: accuracy from the
    /// name-check counts, reputation/availability from the Catalogue of
    /// Life annotations, reliability from observed run behaviour.
    pub fn case_study_default() -> QualityModel {
        QualityModel::new()
            .with_metric(Metric::from_ratio(
                "species-name accuracy (vs Catalogue of Life)",
                Dimension::accuracy(),
                "names_correct",
                "names_checked",
            ))
            .with_metric(Metric::from_annotation(
                "Catalogue of Life reputation (expert annotation)",
                Dimension::reputation(),
                "reputation",
            ))
            .with_metric(Metric::from_annotation(
                "Catalogue of Life availability (expert annotation)",
                Dimension::availability(),
                "availability",
            ))
            .with_metric(Metric::from_fact(
                "workflow reliability (observed)",
                Dimension::reliability(),
                "observed_availability",
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_study_ctx() -> AssessmentContext {
        AssessmentContext::new()
            .with_fact("names_checked", 1929.0)
            .with_fact("names_correct", 1795.0)
            .with_annotation("reputation", 1.0)
            .with_annotation("availability", 0.9)
            .with_fact("observed_availability", 0.91)
    }

    #[test]
    fn case_study_model_reproduces_93_percent() {
        let model = QualityModel::case_study_default();
        let report = model.assess("fnjv", &case_study_ctx());
        let acc = report.score(&Dimension::accuracy()).unwrap();
        assert!((acc - 0.9305).abs() < 0.001, "accuracy {acc}");
        assert_eq!(report.score(&Dimension::reputation()), Some(1.0));
        assert_eq!(report.score(&Dimension::availability()), Some(0.9));
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn missing_inputs_reported_unavailable() {
        let model = QualityModel::case_study_default();
        let report = model.assess("fnjv", &AssessmentContext::new());
        assert!(report.unavailable.contains(&Dimension::accuracy()));
        assert!(report.attributes.is_empty());
    }

    #[test]
    fn dimension_available_if_any_metric_computes() {
        let model = QualityModel::new()
            .with_metric(Metric::new("never", Dimension::accuracy(), |_| None))
            .with_metric(Metric::new("always", Dimension::accuracy(), |_| Some(0.5)));
        let report = model.assess("s", &AssessmentContext::new());
        assert_eq!(report.score(&Dimension::accuracy()), Some(0.5));
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn observed_assessment_times_every_metric() {
        let obs = Arc::new(Registry::new());
        let model = QualityModel::case_study_default();
        let a = model.assess("fnjv", &case_study_ctx());
        let b = model.assess_observed("fnjv", &case_study_ctx(), &obs);
        assert_eq!(
            a.attributes.len(),
            b.attributes.len(),
            "same report either way"
        );
        let text = obs.render_prometheus();
        assert!(text.contains("preserva_quality_assessments_total 1"));
        assert!(text.contains("preserva_quality_evaluation_seconds_count 1"));
        // One labelled series per registered metric, one observation each.
        for m in model.metrics() {
            let h = obs.latency_histogram_with(
                "preserva_quality_metric_evaluation_seconds",
                "Latency of individual quality-metric evaluations.",
                &[("metric", &m.name)],
            );
            assert_eq!(h.count(), 1, "metric {:?} timed once", m.name);
        }
    }

    #[test]
    fn dimensions_deduplicated() {
        let model = QualityModel::new()
            .with_metric(Metric::new("a", Dimension::accuracy(), |_| Some(1.0)))
            .with_metric(Metric::new("b", Dimension::accuracy(), |_| Some(0.9)));
        assert_eq!(model.dimensions().len(), 1);
        assert_eq!(model.metrics().len(), 2);
    }
}
