//! Per-subject metric contributions, so ratio dimension scores update
//! incrementally instead of via whole-collection recomputes.
//!
//! The paper's accuracy score (93 % = 1795 correct / 1929 checked
//! species names) is a ratio over per-name contributions. A
//! [`ContributionLedger`] stores each contribution keyed by its subject
//! (here: the canonical species name) together with running totals;
//! when a backbone upgrade flips k names, only those k entries are
//! re-set and the totals adjust in O(k) — the resulting facts feed the
//! same [`crate::metric::Metric::from_ratio`] metrics as a full
//! recompute, producing bit-identical scores (sums are maintained
//! exactly, not via floating accumulation drift: totals are recomputed
//! from the map on demand only in debug assertions).
//!
//! The ledger is plain serializable data: persistence is the caller's
//! concern (core stores it as one row and updates it inside the same
//! atomic commit as the records it reflects).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metric::AssessmentContext;

/// One subject's contribution to a ratio metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Contribution {
    /// Contribution to the denominator (e.g. 1.0 = "this name was checked").
    pub checked: f64,
    /// Contribution to the numerator (e.g. 1.0 = "this name is current").
    pub correct: f64,
}

impl Contribution {
    /// A checked subject that is correct/current.
    pub fn correct() -> Self {
        Contribution {
            checked: 1.0,
            correct: 1.0,
        }
    }

    /// A checked subject that is incorrect/outdated.
    pub fn incorrect() -> Self {
        Contribution {
            checked: 1.0,
            correct: 0.0,
        }
    }
}

/// Keyed contributions with incrementally-maintained totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ContributionLedger {
    entries: BTreeMap<String, Contribution>,
    checked_total: f64,
    correct_total: f64,
}

impl ContributionLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a subject's contribution, adjusting totals by
    /// the difference. Returns the previous contribution, if any.
    pub fn set(&mut self, subject: &str, c: Contribution) -> Option<Contribution> {
        let old = self.entries.insert(subject.to_string(), c);
        let (old_checked, old_correct) = old.map(|o| (o.checked, o.correct)).unwrap_or((0.0, 0.0));
        self.checked_total += c.checked - old_checked;
        self.correct_total += c.correct - old_correct;
        old
    }

    /// Remove a subject's contribution, adjusting totals.
    pub fn remove(&mut self, subject: &str) -> Option<Contribution> {
        let old = self.entries.remove(subject);
        if let Some(o) = old {
            self.checked_total -= o.checked;
            self.correct_total -= o.correct;
        }
        old
    }

    /// A subject's current contribution.
    pub fn get(&self, subject: &str) -> Option<Contribution> {
        self.entries.get(subject).copied()
    }

    /// Number of subjects tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no subjects are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(checked_total, correct_total)` — the running ratio inputs.
    pub fn totals(&self) -> (f64, f64) {
        debug_assert!({
            let checked: f64 = self.entries.values().map(|c| c.checked).sum();
            let correct: f64 = self.entries.values().map(|c| c.correct).sum();
            (checked - self.checked_total).abs() < 1e-6
                && (correct - self.correct_total).abs() < 1e-6
        });
        (self.checked_total, self.correct_total)
    }

    /// The ratio `correct / checked`, or `None` when nothing is checked.
    pub fn ratio(&self) -> Option<f64> {
        let (checked, correct) = self.totals();
        (checked > 0.0).then(|| correct / checked)
    }

    /// Iterate subjects with their contributions, in subject order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Contribution)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Export the totals as assessment facts (builder style), so the
    /// same ratio metrics a full recompute feeds read them unchanged.
    pub fn export_facts(
        &self,
        ctx: AssessmentContext,
        checked_fact: &str,
        correct_fact: &str,
    ) -> AssessmentContext {
        let (checked, correct) = self.totals();
        ctx.with_fact(checked_fact, checked)
            .with_fact(correct_fact, correct)
    }

    /// Re-derive the totals from the entries, replacing the running
    /// sums. Used after deserializing ledgers produced by older
    /// versions or hand-edited fixtures; a ledger maintained purely
    /// through [`set`](Self::set)/[`remove`](Self::remove) never needs it.
    pub fn rebuild_totals(&mut self) {
        self.checked_total = self.entries.values().map(|c| c.checked).sum();
        self.correct_total = self.entries.values().map(|c| c.correct).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::metric::Metric;
    use crate::model::QualityModel;

    #[test]
    fn totals_track_set_and_remove() {
        let mut l = ContributionLedger::new();
        l.set("hyla faber", Contribution::correct());
        l.set("scinax ruber", Contribution::correct());
        l.set("elachistocleis ovalis", Contribution::incorrect());
        assert_eq!(l.totals(), (3.0, 2.0));
        assert_eq!(l.len(), 3);
        // Flip one entry: only its delta moves the totals.
        l.set("hyla faber", Contribution::incorrect());
        assert_eq!(l.totals(), (3.0, 1.0));
        l.remove("elachistocleis ovalis");
        assert_eq!(l.totals(), (2.0, 1.0));
        assert_eq!(l.ratio(), Some(0.5));
    }

    #[test]
    fn empty_ledger_has_no_ratio() {
        let l = ContributionLedger::new();
        assert_eq!(l.ratio(), None);
        assert_eq!(l.totals(), (0.0, 0.0));
        assert!(l.is_empty());
    }

    #[test]
    fn reproduces_case_study_accuracy() {
        // 1929 names checked, 134 outdated → the paper's 93 %.
        let mut l = ContributionLedger::new();
        for i in 0..1929 {
            let c = if i < 134 {
                Contribution::incorrect()
            } else {
                Contribution::correct()
            };
            l.set(&format!("species-{i:04}"), c);
        }
        let model = QualityModel::new().with_metric(Metric::from_ratio(
            "accuracy",
            Dimension::accuracy(),
            "names_correct",
            "names_checked",
        ));
        let ctx = l.export_facts(AssessmentContext::new(), "names_checked", "names_correct");
        let report = model.assess("fnjv", &ctx);
        let acc = report.score(&Dimension::accuracy()).unwrap();
        assert!((acc - 0.9305).abs() < 0.001, "accuracy {acc}");
    }

    #[test]
    fn incremental_equals_rebuild() {
        let mut l = ContributionLedger::new();
        for i in 0..50 {
            l.set(
                &format!("n{i}"),
                if i % 3 == 0 {
                    Contribution::incorrect()
                } else {
                    Contribution::correct()
                },
            );
        }
        for i in (0..50).step_by(7) {
            l.set(&format!("n{i}"), Contribution::correct());
        }
        for i in (0..50).step_by(11) {
            l.remove(&format!("n{i}"));
        }
        let incremental = l.totals();
        let mut rebuilt = l.clone();
        rebuilt.rebuild_totals();
        assert_eq!(incremental, rebuilt.totals());
    }

    #[test]
    fn roundtrips_through_json() {
        let mut l = ContributionLedger::new();
        l.set("a", Contribution::correct());
        l.set("b", Contribution::incorrect());
        let json = serde_json::to_string(&l).unwrap();
        let back: ContributionLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.totals(), l.totals());
    }
}
