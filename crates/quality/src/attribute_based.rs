//! Attribute-based quality assessment — the related-work baseline that
//! "disregards \[provenance\], considering other attributes" (§II-B).
//!
//! The baseline looks only at the data's own observable attributes:
//! how many fields are filled, how many pass their domain checks, how
//! internally consistent the records are. It is deliberately blind to
//! *where the data came from*, which is exactly what ablation A1 probes:
//! when a source degrades, attribute-based scores stay flat while
//! provenance-based scores drop.

use serde::{Deserialize, Serialize};

use crate::dimension::{clamp_score, Dimension};
use crate::report::QualityReport;

/// Observable attribute counts for one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeCounts {
    /// Declared field slots across all records.
    pub total_fields: usize,
    /// Slots actually filled.
    pub filled_fields: usize,
    /// Values that were checked against a domain.
    pub domain_checked: usize,
    /// Checked values that passed.
    pub domain_valid: usize,
    /// Records checked for internal consistency.
    pub consistency_checked: usize,
    /// Records with no internal contradiction.
    pub consistent: usize,
}

impl AttributeCounts {
    fn ratio(num: usize, den: usize) -> Option<f64> {
        if den == 0 {
            None
        } else {
            Some(clamp_score(num as f64 / den as f64))
        }
    }

    /// Completeness = filled / total.
    pub fn completeness(&self) -> Option<f64> {
        Self::ratio(self.filled_fields, self.total_fields)
    }

    /// Domain validity = valid / checked (a *syntactic* accuracy proxy —
    /// it cannot see semantically outdated values).
    pub fn domain_validity(&self) -> Option<f64> {
        Self::ratio(self.domain_valid, self.domain_checked)
    }

    /// Consistency = consistent / checked.
    pub fn consistency(&self) -> Option<f64> {
        Self::ratio(self.consistent, self.consistency_checked)
    }
}

/// Produce a quality report from attributes alone.
pub fn assess(subject: &str, counts: &AttributeCounts) -> QualityReport {
    let mut report = QualityReport::new(subject);
    let mut unavailable = Vec::new();
    match counts.completeness() {
        Some(s) => report.push(Dimension::completeness(), "attribute: fill rate", s),
        None => unavailable.push(Dimension::completeness()),
    }
    match counts.domain_validity() {
        Some(s) => report.push(Dimension::accuracy(), "attribute: domain validity", s),
        None => unavailable.push(Dimension::accuracy()),
    }
    match counts.consistency() {
        Some(s) => report.push(Dimension::consistency(), "attribute: consistency", s),
        None => unavailable.push(Dimension::consistency()),
    }
    report.unavailable = unavailable;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> AttributeCounts {
        AttributeCounts {
            total_fields: 100,
            filled_fields: 80,
            domain_checked: 50,
            domain_valid: 45,
            consistency_checked: 10,
            consistent: 10,
        }
    }

    #[test]
    fn ratios_computed() {
        let c = counts();
        assert_eq!(c.completeness(), Some(0.8));
        assert_eq!(c.domain_validity(), Some(0.9));
        assert_eq!(c.consistency(), Some(1.0));
    }

    #[test]
    fn zero_denominators_unavailable() {
        let report = assess("s", &AttributeCounts::default());
        assert!(report.attributes.is_empty());
        assert_eq!(report.unavailable.len(), 3);
    }

    #[test]
    fn report_carries_all_three_dimensions() {
        let report = assess("s", &counts());
        assert_eq!(report.score(&Dimension::completeness()), Some(0.8));
        assert_eq!(report.score(&Dimension::accuracy()), Some(0.9));
        assert_eq!(report.score(&Dimension::consistency()), Some(1.0));
        assert!(report.unavailable.is_empty());
    }

    #[test]
    fn blind_to_source_degradation() {
        // The defining limitation: identical attributes → identical score,
        // regardless of any upstream source change.
        let before = assess("s", &counts());
        let after = assess("s", &counts()); // source degraded "elsewhere"
        assert_eq!(
            before.score(&Dimension::accuracy()),
            after.score(&Dimension::accuracy())
        );
    }
}
