//! Provenance-based quality assessment — the paper's core idea.
//!
//! "Related work either considers provenance to assess quality (which we
//! call provenance-based) or disregards it" (§II-B). Here quality flows
//! along the OPM graph: an artifact is only as trustworthy as the sources
//! and processes in its lineage. Nodes carry `Q(dimension)` annotations
//! (put there by the Workflow Adapter / Provenance Manager merge);
//! [`lineage_score`] combines every annotated value found in a node's
//! lineage — including the node itself — under a chosen combinator.

use preserva_opm::graph::OpmGraph;
use preserva_opm::model::NodeId;

use crate::aggregate::{combine, Combine};
use crate::dimension::Dimension;

fn annotation_value(g: &OpmGraph, node: &NodeId, key: &str) -> Option<f64> {
    let ann = g
        .artifacts
        .get(node)
        .map(|a| &a.annotations)
        .or_else(|| g.processes.get(node).map(|p| &p.annotations))
        .or_else(|| g.agents.get(node).map(|a| &a.annotations))?;
    ann.get(key)?.parse::<f64>().ok()
}

/// Combine every `Q(dimension)` annotation found on `node` and its lineage.
/// Returns `None` when no node in the lineage is annotated for the
/// dimension — the provenance simply doesn't speak to it.
pub fn lineage_score(
    g: &OpmGraph,
    node: &NodeId,
    dimension: &Dimension,
    how: Combine,
) -> Option<f64> {
    let key = format!("Q({})", dimension.name());
    let mut values = Vec::new();
    if let Some(v) = annotation_value(g, node, &key) {
        values.push((v, 1.0));
    }
    for n in g.lineage(node) {
        if let Some(v) = annotation_value(g, &n, &key) {
            values.push((v, 1.0));
        }
    }
    combine(&values, how)
}

/// Assess one node across several dimensions.
pub fn assess_node(
    g: &OpmGraph,
    node: &NodeId,
    dimensions: &[Dimension],
    how: Combine,
) -> Vec<(Dimension, Option<f64>)> {
    dimensions
        .iter()
        .map(|d| (d.clone(), lineage_score(g, node, d, how)))
        .collect()
}

/// Rank artifacts by a dimension's lineage score (best first; unscored
/// artifacts excluded). This is the "scoring and ranking data" use the
/// related work (Gamble & Goble) motivates.
pub fn rank_artifacts(g: &OpmGraph, dimension: &Dimension, how: Combine) -> Vec<(NodeId, f64)> {
    let mut out: Vec<(NodeId, f64)> = g
        .artifacts
        .keys()
        .filter_map(|id| lineage_score(g, id, dimension, how).map(|s| (id.clone(), s)))
        .collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use preserva_opm::edge::Edge;
    use preserva_opm::model::{Artifact, Process};

    /// source(rep 0.6) -> p:clean(rep 1.0) -> a:out; a:other standalone(0.9)
    fn graph() -> OpmGraph {
        let mut g = OpmGraph::new();
        g.add_artifact(
            Artifact::new("a:src", "raw metadata").with_annotation("Q(reputation)", "0.6"),
        );
        g.add_process(Process::new("p:clean", "cleaning").with_annotation("Q(reputation)", "1.0"));
        g.add_artifact(Artifact::new("a:out", "cleaned metadata"));
        g.add_artifact(
            Artifact::new("a:other", "unrelated").with_annotation("Q(reputation)", "0.9"),
        );
        g.add_edge(Edge::used("p:clean".into(), "a:src".into(), Some("in")))
            .unwrap();
        g.add_edge(Edge::was_generated_by(
            "a:out".into(),
            "p:clean".into(),
            Some("out"),
        ))
        .unwrap();
        g
    }

    #[test]
    fn lineage_score_combines_upstream_annotations() {
        let g = graph();
        let rep = Dimension::reputation();
        // a:out has no own annotation; lineage = {p:clean 1.0, a:src 0.6}.
        let mean = lineage_score(&g, &"a:out".into(), &rep, Combine::WeightedMean).unwrap();
        assert!((mean - 0.8).abs() < 1e-12);
        let min = lineage_score(&g, &"a:out".into(), &rep, Combine::Min).unwrap();
        assert!((min - 0.6).abs() < 1e-12);
    }

    #[test]
    fn own_annotation_included() {
        let g = graph();
        let rep = Dimension::reputation();
        let own = lineage_score(&g, &"a:other".into(), &rep, Combine::Min).unwrap();
        assert!((own - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unannotated_dimension_is_none() {
        let g = graph();
        assert_eq!(
            lineage_score(&g, &"a:out".into(), &Dimension::currency(), Combine::Min),
            None
        );
    }

    #[test]
    fn degraded_source_lowers_derived_artifact() {
        // The provenance-based hallmark: downgrading the *source* changes
        // the score of the *derived* artifact even though nothing about
        // the artifact itself changed.
        let mut g = graph();
        let rep = Dimension::reputation();
        let before = lineage_score(&g, &"a:out".into(), &rep, Combine::Min).unwrap();
        g.artifacts
            .get_mut(&"a:src".into())
            .unwrap()
            .annotations
            .insert("Q(reputation)".into(), "0.2".into());
        let after = lineage_score(&g, &"a:out".into(), &rep, Combine::Min).unwrap();
        assert!(after < before);
        assert!((after - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ranking_orders_by_score() {
        let g = graph();
        let ranked = rank_artifacts(&g, &Dimension::reputation(), Combine::Min);
        // a:other (0.9) > a:out (0.6 via lineage) > a:src (0.6 own).
        assert_eq!(ranked[0].0.as_str(), "a:other");
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn assess_node_reports_per_dimension() {
        let g = graph();
        let dims = [Dimension::reputation(), Dimension::currency()];
        let got = assess_node(&g, &"a:out".into(), &dims, Combine::Min);
        assert_eq!(got.len(), 2);
        assert!(got[0].1.is_some());
        assert!(got[1].1.is_none());
    }
}
