//! Quality goals: user-defined targets over dimensions (Lemos' metamodel:
//! "the input is based on the definition of quality goals and a set of
//! quality metrics").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::aggregate::Combine;
use crate::dimension::Dimension;
use crate::report::QualityReport;

/// One dimension's target inside a goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalTerm {
    /// Dimension this term constrains.
    pub dimension: Dimension,
    /// Weight in the overall score.
    pub weight: f64,
    /// Minimum acceptable score; below it the term fails.
    pub min_score: f64,
}

/// A named quality goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityGoal {
    /// Goal name.
    pub name: String,
    /// The constrained dimensions.
    pub terms: Vec<GoalTerm>,
}

/// Evaluation outcome of a goal against a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalEvaluation {
    /// Name of the evaluated goal.
    pub goal: String,
    /// Weighted overall score (None when nothing was measurable).
    pub overall: Option<f64>,
    /// Terms whose minimum was not met, with the observed score
    /// (None = dimension unavailable, which also fails the term).
    pub failed_terms: Vec<(Dimension, Option<f64>)>,
}

impl GoalEvaluation {
    /// The goal is satisfied when every term met its minimum.
    pub fn satisfied(&self) -> bool {
        self.failed_terms.is_empty()
    }
}

impl QualityGoal {
    /// Create a goal.
    pub fn new(name: &str) -> Self {
        QualityGoal {
            name: name.to_string(),
            terms: Vec::new(),
        }
    }

    /// Add a term (builder style).
    pub fn require(mut self, dimension: Dimension, weight: f64, min_score: f64) -> Self {
        self.terms.push(GoalTerm {
            dimension,
            weight,
            min_score,
        });
        self
    }

    /// Evaluate against a report.
    pub fn evaluate(&self, report: &QualityReport) -> GoalEvaluation {
        let mut failed = Vec::new();
        for t in &self.terms {
            match report.score(&t.dimension) {
                Some(s) if s >= t.min_score => {}
                other => failed.push((t.dimension.clone(), other)),
            }
        }
        let weights: BTreeMap<Dimension, f64> = self
            .terms
            .iter()
            .map(|t| (t.dimension.clone(), t.weight))
            .collect();
        GoalEvaluation {
            goal: self.name.clone(),
            overall: report.overall(&weights, Combine::WeightedMean),
            failed_terms: failed,
        }
    }

    /// The preservation-readiness goal used in the examples: accurate,
    /// reasonably complete metadata from a reputable source.
    pub fn preservation_ready() -> QualityGoal {
        QualityGoal::new("preservation-ready")
            .require(Dimension::accuracy(), 3.0, 0.9)
            .require(Dimension::completeness(), 2.0, 0.6)
            .require(Dimension::reputation(), 1.0, 0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(acc: f64, comp: f64, rep: f64) -> QualityReport {
        let mut r = QualityReport::new("s");
        r.push(Dimension::accuracy(), "m", acc);
        r.push(Dimension::completeness(), "m", comp);
        r.push(Dimension::reputation(), "m", rep);
        r
    }

    #[test]
    fn satisfied_goal() {
        let e = QualityGoal::preservation_ready().evaluate(&report(0.93, 0.7, 1.0));
        assert!(e.satisfied());
        assert!(e.overall.unwrap() > 0.8);
    }

    #[test]
    fn failing_term_reported_with_score() {
        let e = QualityGoal::preservation_ready().evaluate(&report(0.85, 0.7, 1.0));
        assert!(!e.satisfied());
        assert_eq!(e.failed_terms, vec![(Dimension::accuracy(), Some(0.85))]);
    }

    #[test]
    fn unavailable_dimension_fails_term() {
        let mut r = QualityReport::new("s");
        r.push(Dimension::accuracy(), "m", 0.95);
        let e = QualityGoal::preservation_ready().evaluate(&r);
        assert!(!e.satisfied());
        assert!(e
            .failed_terms
            .iter()
            .any(|(d, s)| d == &Dimension::completeness() && s.is_none()));
    }

    #[test]
    fn overall_uses_term_weights() {
        let goal = QualityGoal::new("g")
            .require(Dimension::accuracy(), 1.0, 0.0)
            .require(Dimension::completeness(), 3.0, 0.0);
        let e = goal.evaluate(&report(1.0, 0.5, 0.0));
        // reputation has weight 0 → excluded; (1*1 + 0.5*3) / 4 = 0.625.
        assert!((e.overall.unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let g = QualityGoal::preservation_ready();
        let s = serde_json::to_string(&g).unwrap();
        let back: QualityGoal = serde_json::from_str(&s).unwrap();
        assert_eq!(g, back);
    }
}
