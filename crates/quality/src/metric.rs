//! Metrics and measurement methods.
//!
//! A metric binds a [`Dimension`] to a *measurement method* — code that
//! computes a normalized score from an [`AssessmentContext`]. End users
//! "specify dimensions and indicate means to compute them — e.g.,
//! designating web services or software components" (paper §IV-C); here a
//! method is any `Fn(&AssessmentContext) -> Option<f64>`.

use std::collections::BTreeMap;
use std::sync::Arc;

use preserva_opm::graph::OpmGraph;

use crate::dimension::{clamp_score, Dimension};

/// Everything a measurement method may draw on — the three input kinds of
/// the paper's Data Quality Manager.
#[derive(Debug, Clone, Default)]
pub struct AssessmentContext {
    /// (a) stored provenance of the assessed data.
    pub provenance: Option<OpmGraph>,
    /// (b) quality annotations from the Workflow Adapter
    /// (e.g. `"reputation" → 1.0` for the Catalogue of Life processor).
    pub annotations: BTreeMap<String, f64>,
    /// (c) facts from external sources / the workflow output
    /// (e.g. `"names_checked" → 1929`, `"names_outdated" → 134`).
    pub facts: BTreeMap<String, f64>,
}

impl AssessmentContext {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: attach provenance.
    pub fn with_provenance(mut self, g: OpmGraph) -> Self {
        self.provenance = Some(g);
        self
    }

    /// Builder: add a workflow quality annotation.
    pub fn with_annotation(mut self, key: &str, value: f64) -> Self {
        self.annotations.insert(key.to_string(), value);
        self
    }

    /// Builder: add an external fact / measurement.
    pub fn with_fact(mut self, key: &str, value: f64) -> Self {
        self.facts.insert(key.to_string(), value);
        self
    }

    /// `facts[num] / facts[den]`, when both exist and den > 0.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let n = self.facts.get(num)?;
        let d = self.facts.get(den)?;
        if *d > 0.0 {
            Some(n / d)
        } else {
            None
        }
    }
}

/// A measurement method: computes a raw score, `None` when the context
/// lacks what it needs ("not all quality dimensions requested by the end
/// user may be available" — §III).
pub type MeasurementMethod = Arc<dyn Fn(&AssessmentContext) -> Option<f64> + Send + Sync>;

/// A metric: a named way of measuring one dimension.
#[derive(Clone)]
pub struct Metric {
    /// Human-readable metric name (shown in reports).
    pub name: String,
    /// Dimension this metric measures.
    pub dimension: Dimension,
    method: MeasurementMethod,
}

impl std::fmt::Debug for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metric")
            .field("name", &self.name)
            .field("dimension", &self.dimension)
            .finish()
    }
}

impl Metric {
    /// Create a metric from a closure.
    pub fn new<F>(name: &str, dimension: Dimension, method: F) -> Metric
    where
        F: Fn(&AssessmentContext) -> Option<f64> + Send + Sync + 'static,
    {
        Metric {
            name: name.to_string(),
            dimension,
            method: Arc::new(method),
        }
    }

    /// A metric that reads one annotation verbatim (how reputation and
    /// availability flow from Listing 1 into the report).
    pub fn from_annotation(name: &str, dimension: Dimension, key: &str) -> Metric {
        let key = key.to_string();
        Metric::new(name, dimension, move |ctx| {
            ctx.annotations.get(&key).copied()
        })
    }

    /// A metric that reads one fact verbatim.
    pub fn from_fact(name: &str, dimension: Dimension, key: &str) -> Metric {
        let key = key.to_string();
        Metric::new(name, dimension, move |ctx| ctx.facts.get(&key).copied())
    }

    /// A ratio-of-facts metric, e.g. accuracy = correct / checked.
    pub fn from_ratio(name: &str, dimension: Dimension, num: &str, den: &str) -> Metric {
        let num = num.to_string();
        let den = den.to_string();
        Metric::new(name, dimension, move |ctx| ctx.ratio(&num, &den))
    }

    /// Run the method, clamping into `[0, 1]`.
    pub fn measure(&self, ctx: &AssessmentContext) -> Option<f64> {
        (self.method)(ctx).map(clamp_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_metric_reads_annotation() {
        let m = Metric::from_annotation("rep", Dimension::reputation(), "reputation");
        let ctx = AssessmentContext::new().with_annotation("reputation", 1.0);
        assert_eq!(m.measure(&ctx), Some(1.0));
        assert_eq!(m.measure(&AssessmentContext::new()), None);
    }

    #[test]
    fn ratio_metric_computes_case_study_accuracy() {
        // 1929 names checked, 134 outdated → 1795 correct → 93.05%.
        let m = Metric::from_ratio(
            "acc",
            Dimension::accuracy(),
            "names_correct",
            "names_checked",
        );
        let ctx = AssessmentContext::new()
            .with_fact("names_checked", 1929.0)
            .with_fact("names_correct", 1929.0 - 134.0);
        let score = m.measure(&ctx).unwrap();
        assert!((score - 0.9305).abs() < 0.001, "got {score}");
    }

    #[test]
    fn ratio_with_zero_denominator_is_none() {
        let m = Metric::from_ratio("r", Dimension::accuracy(), "a", "b");
        let ctx = AssessmentContext::new()
            .with_fact("a", 1.0)
            .with_fact("b", 0.0);
        assert_eq!(m.measure(&ctx), None);
    }

    #[test]
    fn scores_are_clamped() {
        let m = Metric::new("wild", Dimension::new("custom"), |_| Some(3.5));
        assert_eq!(m.measure(&AssessmentContext::new()), Some(1.0));
        let neg = Metric::new("neg", Dimension::new("custom"), |_| Some(-0.5));
        assert_eq!(neg.measure(&AssessmentContext::new()), Some(0.0));
    }

    #[test]
    fn fact_metric_reads_fact() {
        let m = Metric::from_fact("avail", Dimension::availability(), "observed_availability");
        let ctx = AssessmentContext::new().with_fact("observed_availability", 0.9);
        assert_eq!(m.measure(&ctx), Some(0.9));
    }
}
