//! Temporal quality decay — "curated (meta)data that in the past was
//! reliable may have its content degraded with time … new discoveries may
//! invalidate (meta)data" (§IV-A).
//!
//! Two mechanisms matter to the architecture:
//!
//! * [`currency`]: a smooth freshness decay of a value assessed at some
//!   age (half-life model) — drives re-assessment scheduling;
//! * [`expected_name_accuracy`]: the *knowledge-evolution* decay of the
//!   case study — if a fraction `churn` of accepted names changes per
//!   year, metadata checked `age` years ago is expected to be only
//!   `(1 − churn)^age` accurate today.

/// Freshness in `[0, 1]` after `age_years` with the given half-life.
pub fn currency(age_years: f64, half_life_years: f64) -> f64 {
    if half_life_years <= 0.0 {
        return if age_years <= 0.0 { 1.0 } else { 0.0 };
    }
    0.5f64.powf(age_years.max(0.0) / half_life_years)
}

/// Expected species-name accuracy after `age_years` when a fraction
/// `annual_churn` of accepted names changes each year.
pub fn expected_name_accuracy(age_years: f64, annual_churn: f64) -> f64 {
    (1.0 - annual_churn.clamp(0.0, 1.0)).powf(age_years.max(0.0))
}

/// Years until quality decays from 1.0 to `threshold` under
/// [`expected_name_accuracy`] — i.e. when re-curation is due.
/// `None` when churn is 0 (never decays) or threshold ≥ 1.
pub fn years_until_recuration(annual_churn: f64, threshold: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&threshold) {
        return None;
    }
    let keep = 1.0 - annual_churn.clamp(0.0, 1.0);
    if keep >= 1.0 {
        return None;
    }
    if keep <= 0.0 {
        return Some(0.0);
    }
    Some(threshold.ln() / keep.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currency_halves_at_half_life() {
        assert!((currency(10.0, 10.0) - 0.5).abs() < 1e-12);
        assert_eq!(currency(0.0, 10.0), 1.0);
        assert!(currency(40.0, 10.0) < 0.07);
    }

    #[test]
    fn currency_monotone_in_age() {
        let mut last = 1.1;
        for age in 0..50 {
            let c = currency(age as f64, 15.0);
            assert!(c < last);
            last = c;
        }
    }

    #[test]
    fn degenerate_half_life() {
        assert_eq!(currency(5.0, 0.0), 0.0);
        assert_eq!(currency(0.0, 0.0), 1.0);
    }

    #[test]
    fn name_accuracy_matches_case_study_scale() {
        // The paper found 7% of names outdated for a collection whose core
        // dates back ~48 years (1965→2013). That implies annual churn of
        // about 0.15%: (1 − 0.0015)^48 ≈ 0.931.
        let acc = expected_name_accuracy(48.0, 0.0015);
        assert!((acc - 0.93).abs() < 0.01, "got {acc}");
    }

    #[test]
    fn recuration_due_when_threshold_crossed() {
        let years = years_until_recuration(0.0015, 0.93).unwrap();
        // Decaying to 93% at 0.15%/year takes ≈ 48 years.
        assert!((years - 48.0).abs() < 2.0, "got {years}");
        // Sanity: plugging back in lands on the threshold.
        assert!((expected_name_accuracy(years, 0.0015) - 0.93).abs() < 1e-9);
    }

    #[test]
    fn recuration_edge_cases() {
        assert_eq!(years_until_recuration(0.0, 0.9), None);
        assert_eq!(years_until_recuration(1.0, 0.9), Some(0.0));
        assert_eq!(years_until_recuration(0.1, 1.0), None);
        assert_eq!(years_until_recuration(0.1, -0.1), None);
    }
}
