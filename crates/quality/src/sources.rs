//! External semantic data sources — input (c) of the Data Quality
//! Manager: "the Data Quality Manager can also look for information from
//! external semantic data sources to complement the facts provided by the
//! repositories" (§III).
//!
//! A source answers fact queries about a subject; a [`SourceRegistry`]
//! holds the sources an installation knows and merges their answers into
//! an assessment context. Sources are ordered: later registrations
//! override earlier ones on key collisions (more specific sources are
//! registered later).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::metric::AssessmentContext;

/// Anything that can contribute facts about a subject.
pub trait ExternalSource: Send + Sync {
    /// Stable source name (recorded with provenance of the assessment).
    fn name(&self) -> &str;

    /// Facts this source knows about `subject` (empty map = nothing).
    fn facts(&self, subject: &str) -> BTreeMap<String, f64>;
}

/// A source backed by a closure.
pub struct FnSource<F> {
    name: String,
    f: F,
}

impl<F> FnSource<F>
where
    F: Fn(&str) -> BTreeMap<String, f64> + Send + Sync,
{
    /// Wrap a closure as a source.
    pub fn new(name: &str, f: F) -> Self {
        FnSource {
            name: name.to_string(),
            f,
        }
    }
}

impl<F> ExternalSource for FnSource<F>
where
    F: Fn(&str) -> BTreeMap<String, f64> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn facts(&self, subject: &str) -> BTreeMap<String, f64> {
        (self.f)(subject)
    }
}

/// A static source: fixed facts per subject.
#[derive(Default)]
pub struct StaticSource {
    name: String,
    by_subject: BTreeMap<String, BTreeMap<String, f64>>,
}

impl StaticSource {
    /// Create an empty static source.
    pub fn new(name: &str) -> Self {
        StaticSource {
            name: name.to_string(),
            by_subject: BTreeMap::new(),
        }
    }

    /// Add one fact (builder style).
    pub fn with_fact(mut self, subject: &str, key: &str, value: f64) -> Self {
        self.by_subject
            .entry(subject.to_string())
            .or_default()
            .insert(key.to_string(), value);
        self
    }
}

impl ExternalSource for StaticSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn facts(&self, subject: &str) -> BTreeMap<String, f64> {
        self.by_subject.get(subject).cloned().unwrap_or_default()
    }
}

/// An ordered collection of sources.
#[derive(Clone, Default)]
pub struct SourceRegistry {
    sources: Vec<Arc<dyn ExternalSource>>,
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceRegistry")
            .field(
                "sources",
                &self
                    .sources
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source (later registrations win on key collisions).
    pub fn register(&mut self, source: Arc<dyn ExternalSource>) {
        self.sources.push(source);
    }

    /// Registered source names, in consultation order.
    pub fn names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.name()).collect()
    }

    /// Merge every source's facts about `subject`.
    pub fn facts(&self, subject: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for s in &self.sources {
            out.extend(s.facts(subject));
        }
        out
    }

    /// Enrich an assessment context in place.
    pub fn enrich(&self, subject: &str, ctx: &mut AssessmentContext) {
        for (k, v) in self.facts(subject) {
            ctx.facts.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_source_answers_per_subject() {
        let s = StaticSource::new("climatology")
            .with_fact("fnjv", "mean_humidity", 0.72)
            .with_fact("other", "mean_humidity", 0.4);
        assert_eq!(s.facts("fnjv").get("mean_humidity"), Some(&0.72));
        assert!(s.facts("unknown").is_empty());
        assert_eq!(s.name(), "climatology");
    }

    #[test]
    fn fn_source_computes() {
        let s = FnSource::new("len", |subject: &str| {
            let mut m = BTreeMap::new();
            m.insert("subject_len".into(), subject.len() as f64);
            m
        });
        assert_eq!(s.facts("fnjv").get("subject_len"), Some(&4.0));
    }

    #[test]
    fn registry_merges_with_later_override() {
        let mut r = SourceRegistry::new();
        r.register(Arc::new(StaticSource::new("coarse").with_fact(
            "fnjv",
            "reputation",
            0.5,
        )));
        r.register(Arc::new(
            StaticSource::new("specific")
                .with_fact("fnjv", "reputation", 0.9)
                .with_fact("fnjv", "coverage", 0.8),
        ));
        let facts = r.facts("fnjv");
        assert_eq!(facts.get("reputation"), Some(&0.9)); // later wins
        assert_eq!(facts.get("coverage"), Some(&0.8));
        assert_eq!(r.names(), vec!["coarse", "specific"]);
    }

    #[test]
    fn enrich_adds_facts_to_context() {
        let mut r = SourceRegistry::new();
        r.register(Arc::new(StaticSource::new("s").with_fact(
            "fnjv",
            "names_checked",
            1929.0,
        )));
        let mut ctx = AssessmentContext::new().with_fact("existing", 1.0);
        r.enrich("fnjv", &mut ctx);
        assert_eq!(ctx.facts.get("names_checked"), Some(&1929.0));
        assert_eq!(ctx.facts.get("existing"), Some(&1.0));
    }
}
