//! Assessment reports — "the results of quality assessment are published
//! in two formats: (i) the workflow trace; and (ii) computed quality
//! attributes" (paper §III). This type is format (ii); it records which
//! run produced it so format (i) can always be joined back.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::aggregate::{combine, Combine};
use crate::dimension::Dimension;

/// One row of [`QualityReport::diff`]:
/// `(dimension, earlier score, later score, later − earlier)`.
pub type DimensionDelta<'a> = (&'a Dimension, Option<f64>, Option<f64>, Option<f64>);

/// One computed quality attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputedAttribute {
    /// Dimension measured.
    pub dimension: Dimension,
    /// Metric that produced the score.
    pub metric: String,
    /// Normalized score in [0, 1].
    pub score: f64,
}

/// The computed quality attributes of one assessment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// What was assessed (dataset / record-set identifier).
    pub subject: String,
    /// The workflow run whose trace backs this assessment, if any.
    pub run_id: Option<String>,
    /// Every computed attribute, in computation order.
    pub attributes: Vec<ComputedAttribute>,
    /// Dimensions requested but not computable from the available inputs.
    pub unavailable: Vec<Dimension>,
}

impl QualityReport {
    /// Create an empty report for `subject`.
    pub fn new(subject: &str) -> Self {
        QualityReport {
            subject: subject.to_string(),
            ..Default::default()
        }
    }

    /// Record a computed attribute.
    pub fn push(&mut self, dimension: Dimension, metric: &str, score: f64) {
        self.attributes.push(ComputedAttribute {
            dimension,
            metric: metric.to_string(),
            score,
        });
    }

    /// Score for a dimension (first metric that computed it).
    pub fn score(&self, dimension: &Dimension) -> Option<f64> {
        self.attributes
            .iter()
            .find(|a| &a.dimension == dimension)
            .map(|a| a.score)
    }

    /// All scores per dimension.
    pub fn by_dimension(&self) -> BTreeMap<&Dimension, Vec<f64>> {
        let mut out: BTreeMap<&Dimension, Vec<f64>> = BTreeMap::new();
        for a in &self.attributes {
            out.entry(&a.dimension).or_default().push(a.score);
        }
        out
    }

    /// Overall score with per-dimension weights (unknown dimensions get
    /// weight 0 and drop out).
    pub fn overall(&self, weights: &BTreeMap<Dimension, f64>, how: Combine) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .attributes
            .iter()
            .map(|a| (a.score, weights.get(&a.dimension).copied().unwrap_or(0.0)))
            .collect();
        combine(&pairs, how)
    }

    /// Compare against an earlier assessment of the same subject: for
    /// every dimension either report scores, the delta `later − earlier`.
    /// Dimensions scored by only one side appear with the side's score and
    /// `None` for the other. The tool behind "periodically assessing
    /// (meta)data quality": a negative accuracy delta is the signal that
    /// re-curation is due.
    pub fn diff<'a>(&'a self, earlier: &'a QualityReport) -> Vec<DimensionDelta<'a>> {
        let mut dims: Vec<&Dimension> = self
            .attributes
            .iter()
            .chain(earlier.attributes.iter())
            .map(|a| &a.dimension)
            .collect();
        dims.sort();
        dims.dedup();
        dims.into_iter()
            .map(|d| {
                let was = earlier.score(d);
                let now = self.score(d);
                let delta = match (was, now) {
                    (Some(w), Some(n)) => Some(n - w),
                    _ => None,
                };
                (d, was, now, delta)
            })
            .collect()
    }

    /// Render the report as the user-facing text block of Figure 2's
    /// summary panel.
    pub fn render_text(&self) -> String {
        let mut out = format!("Quality assessment for {}\n", self.subject);
        if let Some(run) = &self.run_id {
            out.push_str(&format!("  backed by workflow trace: {run}\n"));
        }
        for a in &self.attributes {
            out.push_str(&format!(
                "  {:<14} {:>7.2}%   ({})\n",
                a.dimension.name(),
                a.score * 100.0,
                a.metric
            ));
        }
        for d in &self.unavailable {
            out.push_str(&format!("  {:<14} unavailable\n", d.name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> QualityReport {
        let mut r = QualityReport::new("fnjv-species-names");
        r.run_id = Some("run-000001".into());
        r.push(Dimension::accuracy(), "col-check", 0.93);
        r.push(Dimension::reputation(), "annotation", 1.0);
        r.push(Dimension::availability(), "annotation", 0.9);
        r
    }

    #[test]
    fn score_lookup() {
        let r = report();
        assert_eq!(r.score(&Dimension::accuracy()), Some(0.93));
        assert_eq!(r.score(&Dimension::currency()), None);
    }

    #[test]
    fn overall_weighted() {
        let r = report();
        let mut w = BTreeMap::new();
        w.insert(Dimension::accuracy(), 2.0);
        w.insert(Dimension::reputation(), 1.0);
        let got = r.overall(&w, Combine::WeightedMean).unwrap();
        assert!((got - (0.93 * 2.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_key_numbers() {
        let text = report().render_text();
        assert!(text.contains("accuracy"));
        assert!(text.contains("93.00%"));
        assert!(text.contains("run-000001"));
    }

    #[test]
    fn unavailable_dimensions_rendered() {
        let mut r = report();
        r.unavailable.push(Dimension::currency());
        assert!(r.render_text().contains("currency"));
        assert!(r.render_text().contains("unavailable"));
    }

    #[test]
    fn diff_tracks_decay() {
        let mut earlier = QualityReport::new("fnjv");
        earlier.push(Dimension::accuracy(), "m", 0.99);
        earlier.push(Dimension::reputation(), "m", 1.0);
        let mut later = QualityReport::new("fnjv");
        later.push(Dimension::accuracy(), "m", 0.93);
        later.push(Dimension::currency(), "m", 0.8);
        let d = later.diff(&earlier);
        // Sorted by dimension name: accuracy, currency, reputation.
        assert_eq!(d.len(), 3);
        let acc = d
            .iter()
            .find(|(dim, ..)| **dim == Dimension::accuracy())
            .unwrap();
        assert!(
            (acc.3.unwrap() + 0.06).abs() < 1e-12,
            "accuracy fell by 6pp"
        );
        let cur = d
            .iter()
            .find(|(dim, ..)| **dim == Dimension::currency())
            .unwrap();
        assert_eq!(cur.1, None); // not scored earlier
        assert_eq!(cur.3, None);
        let rep = d
            .iter()
            .find(|(dim, ..)| **dim == Dimension::reputation())
            .unwrap();
        assert_eq!(rep.2, None); // not scored later
    }

    #[test]
    fn diff_with_self_is_zero() {
        let r = report();
        for (_, _, _, delta) in r.diff(&r) {
            assert_eq!(delta, Some(0.0));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let r = report();
        let s = serde_json::to_string(&r).unwrap();
        let back: QualityReport = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }
}
