//! Registry under contention: totals must be exact, quantiles sane.

use std::sync::Arc;
use std::thread;

use preserva_obs::Registry;

#[test]
fn counters_are_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                // Half the threads resolve the handle once (the intended hot
                // path); the other half re-resolve per batch to stress the
                // get-or-create lock.
                if t % 2 == 0 {
                    let c = reg.counter("contended_total", "C.");
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                } else {
                    for chunk in 0..(PER_THREAD / 1000) {
                        let c = reg.counter("contended_total", "C.");
                        let _ = chunk;
                        for _ in 0..1000 {
                            c.inc();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        reg.counter("contended_total", "C.").get(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn labeled_series_do_not_cross_talk_under_contention() {
    const THREADS: usize = 6;
    const PER_THREAD: u64 = 20_000;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let svc = format!("svc{}", t % 3);
                let c = reg.counter_with("per_svc_total", "C.", &[("svc", &svc)]);
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for s in 0..3 {
        let svc = format!("svc{s}");
        let c = reg.counter_with("per_svc_total", "C.", &[("svc", &svc)]);
        assert_eq!(c.get(), 2 * PER_THREAD, "series {svc}");
    }
}

#[test]
fn histogram_totals_exact_and_quantiles_sane_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25_000;
    let reg = Arc::new(Registry::new());
    let h = reg.histogram("contended_seconds", "H.", &[0.001, 0.01, 0.1, 1.0, 10.0]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic mix: 80% fast (5ms), 15% medium (50ms),
                    // 5% slow (500ms) — integral in units of 5ms so the
                    // CAS-accumulated sum is exactly representable.
                    let v = match (t + i) % 20 {
                        0 => 0.5,
                        1..=3 => 0.05,
                        _ => 0.005,
                    };
                    h.observe(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let n = (THREADS * PER_THREAD) as u64;
    assert_eq!(h.count(), n);
    let buckets = h.bucket_counts();
    assert_eq!(buckets.iter().sum::<u64>(), n);
    // 16/20 at 5ms, 3/20 at 50ms, 1/20 at 500ms.
    assert_eq!(buckets, vec![0, n * 16 / 20, n * 3 / 20, n / 20, 0, 0]);
    // Sum is exact: every observation is a multiple of 0.005 and the CAS
    // loop never drops an add.
    let expected_sum =
        0.005 * (n * 16 / 20) as f64 + 0.05 * (n * 3 / 20) as f64 + 0.5 * (n / 20) as f64;
    assert!((h.sum() - expected_sum).abs() < 1e-6);
    // Quantile sanity: p50 inside the 5ms bucket, p95 at/under the 50ms
    // bound's bucket, p99 inside the 500ms bucket.
    let p50 = h.quantile(0.5).unwrap();
    assert!(p50 > 0.001 && p50 <= 0.01, "p50 = {p50}");
    let p95 = h.quantile(0.95).unwrap();
    assert!(p95 > 0.001 && p95 <= 0.1, "p95 = {p95}");
    let p99 = h.quantile(0.99).unwrap();
    assert!(p99 > 0.1 && p99 <= 1.0, "p99 = {p99}");
    // Quantiles are monotone in q.
    assert!(p50 <= p95 && p95 <= p99);
}

#[test]
fn trace_ring_sequences_are_unique_under_contention() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 600; // > ring capacity, forces eviction
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.trace("stress", format!("t{t} e{i}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let events = reg.trace_events();
    let ring = reg.trace_ring();
    assert_eq!(ring.recorded(), (THREADS * PER_THREAD) as u64);
    assert_eq!(events.len() as u64 + ring.dropped(), ring.recorded());
    // Sequence numbers strictly increase — no duplicates, no reordering.
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
}
