//! Lock-free scalar instruments: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// `inc`/`add` are single relaxed atomic RMW ops. A disabled counter (from
/// [`crate::Registry::noop`]) short-circuits on a branch the CPU predicts
/// perfectly, which is what the instrumentation-overhead bench compares
/// against.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: bool,
}

impl Counter {
    pub(crate) fn new(enabled: bool) -> Counter {
        Counter {
            value: AtomicU64::new(0),
            enabled,
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or high-water) gauge for non-negative quantities.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
    enabled: bool,
}

impl Gauge {
    pub(crate) fn new(enabled: bool) -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
            enabled,
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.enabled {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new(true);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn disabled_counter_stays_zero() {
        let c = Counter::new(false);
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new(true);
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.set(2);
        assert_eq!(g.get(), 2);
    }
}
