//! Process-wide observability for preserva.
//!
//! The paper treats quality assessment as a *continuous* process over stored
//! provenance; this crate gives the system itself the same property — every
//! layer (storage, wfms, provenance, quality) records what it does into one
//! [`Registry`] that can be rendered as Prometheus-style text exposition or
//! a human summary at any moment.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost must be a handful of atomic ops.** Counters and gauges
//!    are single `AtomicU64`s; histograms are fixed-bucket arrays indexed by
//!    binary search over a bound slice — no allocation, no locking, no
//!    syscalls on `inc`/`observe`.
//! 2. **Std only.** `preserva-storage` is deliberately dependency-free and
//!    depends on this crate, so this crate must not pull in anything.
//! 3. **Registries are values, not ambient state.** Components default to a
//!    private registry (tests keep exact per-instance counts); the CLI wires
//!    [`Registry::global`] through every layer to get the process-wide view.
//!
//! ```
//! use preserva_obs::Registry;
//! use std::time::Duration;
//!
//! let reg = Registry::new();
//! let commits = reg.counter("demo_commits_total", "Batches committed.");
//! commits.inc();
//! let lat = reg.latency_histogram("demo_commit_seconds", "Commit latency.");
//! lat.observe_duration(Duration::from_micros(250));
//! let text = reg.render_prometheus();
//! assert!(text.contains("demo_commits_total 1"));
//! assert!(text.contains("demo_commit_seconds_count 1"));
//! ```

mod histogram;
mod instrument;
mod registry;
mod render;
mod trace;

pub use histogram::{Histogram, LATENCY_SECONDS_BUCKETS, SIZE_BYTES_BUCKETS};
pub use instrument::{Counter, Gauge};
pub use registry::Registry;
pub use trace::{TraceEvent, TraceRing, DEFAULT_TRACE_CAPACITY};
