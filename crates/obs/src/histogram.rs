//! Fixed-bucket histograms: p50/p95/p99 without hot-path allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default buckets for latency histograms, in seconds: 1µs … 10s.
///
/// A 1-2.5-5 progression keeps relative quantile error under ~2.5× per
/// decade, which is plenty for "did commit latency regress" questions while
/// the whole histogram stays 23 cache lines of atomics.
pub const LATENCY_SECONDS_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Default buckets for byte-size histograms: 64 B … 64 MiB in powers of four.
pub const SIZE_BYTES_BUCKETS: &[f64] = &[
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
    67108864.0,
];

/// A fixed-bucket histogram with atomic bucket counts.
///
/// `observe` does a branchless-ish binary search over the (immutable) bound
/// slice, one relaxed `fetch_add` on the chosen bucket, and a CAS loop to
/// accumulate the f64 sum — no allocation, no lock. Quantiles are estimated
/// by linear interpolation inside the covering bucket, the standard
/// Prometheus approach.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, ascending. `buckets[i]` counts observations
    /// `<= bounds[i]`; `buckets[bounds.len()]` is the +Inf bucket.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations as f64 bits, CAS-accumulated.
    sum_bits: AtomicU64,
    enabled: bool,
}

impl Histogram {
    pub(crate) fn new(bounds: &[f64], enabled: bool) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, || AtomicU64::new(0));
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            enabled,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !self.enabled {
            return;
        }
        let idx = self
            .bounds
            .partition_point(|b| *b < v)
            .min(self.bounds.len());
        // partition_point gives the first bound >= v, i.e. the Prometheus
        // `le` bucket; out-of-range values land in +Inf.
        let idx = if idx < self.bounds.len() && v <= self.bounds[idx] {
            idx
        } else {
            self.bounds.len()
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a [`Duration`] in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Finite upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the +Inf bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimated `q`-quantile (`0 < q <= 1`), or `None` if empty.
    ///
    /// Linear interpolation inside the covering bucket; observations in the
    /// +Inf bucket report the largest finite bound (an under-estimate, by
    /// construction — widen the buckets if that matters).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= rank {
                if i >= self.bounds.len() {
                    return Some(*self.bounds.last().unwrap());
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = if *c == 0 {
                    1.0
                } else {
                    (rank - prev) as f64 / *c as f64
                };
                return Some(lower + (upper - lower) * frac);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_le_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0], true);
        h.observe(0.5); // le=1
        h.observe(1.0); // le=1 (inclusive upper bound)
        h.observe(3.0); // le=4
        h.observe(100.0); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 0, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 104.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(&[1.0, 2.0, 4.0], true);
        for _ in 0..100 {
            h.observe(0.5);
        }
        // All mass in the first bucket: p50 interpolates inside (0, 1].
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.0 && p50 <= 1.0, "p50 = {p50}");
        // p100 still inside the first bucket.
        assert!(h.quantile(1.0).unwrap() <= 1.0);
    }

    #[test]
    fn inf_bucket_reports_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0], true);
        h.observe(50.0);
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(&[1.0], true);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::new(&[1.0], false);
        h.observe(0.5);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn default_bucket_tables_are_ascending() {
        assert!(LATENCY_SECONDS_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert!(SIZE_BYTES_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }
}
