//! A bounded ring buffer of structured trace events.
//!
//! Trace events capture *state transitions* (breaker opened, checkpoint
//! written, duplicate run rejected) rather than per-operation samples, so a
//! small ring is enough to answer "what just happened" without unbounded
//! memory. Recording takes a short mutex on a `VecDeque` — acceptable
//! because transitions are rare by construction; the per-operation hot path
//! uses counters and histograms instead.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default number of events retained by a [`TraceRing`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub elapsed_micros: u128,
    /// Coarse category, e.g. `"storage"`, `"breaker"`, `"provenance"`.
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity event ring; oldest events are evicted first.
#[derive(Debug)]
pub struct TraceRing {
    start: Instant,
    capacity: usize,
    enabled: bool,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize, enabled: bool) -> TraceRing {
        TraceRing {
            start: Instant::now(),
            capacity,
            enabled,
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity.min(64)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Record an event; oldest event is evicted when the ring is full.
    pub fn record(&self, category: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        let elapsed = self.start.elapsed();
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent {
            seq,
            elapsed_micros: elapsed.as_micros(),
            category,
            message,
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").next_seq
    }

    /// Time since the ring (and owning registry) was created.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let r = TraceRing::new(8, true);
        r.record("a", "first".into());
        r.record("b", "second".into());
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[1].category, "b");
    }

    #[test]
    fn evicts_oldest_when_full() {
        let r = TraceRing::new(3, true);
        for i in 0..5 {
            r.record("t", format!("e{i}"));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].message, "e2");
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let r = TraceRing::new(3, false);
        r.record("t", "x".into());
        assert!(r.events().is_empty());
        assert_eq!(r.recorded(), 0);
    }
}
