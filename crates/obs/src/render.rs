//! Renderers: Prometheus text exposition and a human-readable summary.

use std::fmt::Write as _;

use crate::registry::{InstrumentRef, LabelSet, Registry};

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render one family's series (HELP/TYPE header plus every sample line)
/// into `out`. Shared by the single-registry and merged expositions.
fn render_family(out: &mut String, name: &str, help: &str, series: &[(LabelSet, InstrumentRef)]) {
    let kind = match series.first() {
        Some((_, InstrumentRef::Counter(_))) => "counter",
        Some((_, InstrumentRef::Gauge(_))) => "gauge",
        Some((_, InstrumentRef::Histogram(_))) => "histogram",
        None => return,
    };
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (labels, instrument) in series {
        match instrument {
            InstrumentRef::Counter(c) => {
                let _ = writeln!(out, "{name}{} {}", format_labels(labels, None), c.get());
            }
            InstrumentRef::Gauge(g) => {
                let _ = writeln!(out, "{name}{} {}", format_labels(labels, None), g.get());
            }
            InstrumentRef::Histogram(h) => {
                let counts = h.bucket_counts();
                let mut cum = 0u64;
                for (i, bound) in h.bounds().iter().enumerate() {
                    cum += counts[i];
                    let le = format!("{bound}");
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        format_labels(labels, Some(("le", &le)))
                    );
                }
                cum += counts[h.bounds().len()];
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    format_labels(labels, Some(("le", "+Inf")))
                );
                let _ = writeln!(out, "{name}_sum{} {}", format_labels(labels, None), h.sum());
                let _ = writeln!(
                    out,
                    "{name}_count{} {}",
                    format_labels(labels, None),
                    h.count()
                );
            }
        }
    }
}

impl Registry {
    /// Render every family in Prometheus text exposition format.
    ///
    /// Families are sorted by name; histogram series expand into
    /// `_bucket{le=...}`, `_sum` and `_count` lines, cumulative as the
    /// format requires.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, series) in self.snapshot() {
            render_family(&mut out, &name, &help, &series);
        }
        out
    }

    /// Render several registries as ONE valid exposition, stamping every
    /// series of each part with `label_key="part name"`. Families that
    /// appear in more than one registry merge under a single HELP/TYPE
    /// header (the format forbids repeating it), with each part's series
    /// distinguished by the injected label — how a multi-tenant server
    /// scrapes N per-collection registries through one `/metrics`.
    ///
    /// Series within a family keep label-sorted order; a part whose name
    /// collides with an existing label key on a series still gets the
    /// injected label appended (last wins at scrape time).
    pub fn render_prometheus_merged(label_key: &str, parts: &[(&str, &Registry)]) -> String {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<String, (String, Vec<(LabelSet, InstrumentRef)>)> =
            BTreeMap::new();
        for (part, registry) in parts {
            for (name, help, series) in registry.snapshot() {
                let slot = merged.entry(name).or_insert_with(|| (help, Vec::new()));
                for (mut labels, instrument) in series {
                    labels.push((label_key.to_string(), part.to_string()));
                    labels.sort();
                    slot.1.push((labels, instrument));
                }
            }
        }
        let mut out = String::new();
        for (name, (help, mut series)) in merged {
            series.sort_by(|a, b| a.0.cmp(&b.0));
            render_family(&mut out, &name, &help, &series);
        }
        out
    }

    /// Render a compact human-readable summary: counters and gauges as
    /// `name = value`, histograms as count/mean/p50/p95/p99, plus the tail
    /// of the trace ring.
    pub fn render_summary(&self) -> String {
        let mut scalars = String::new();
        let mut histograms = String::new();
        for (name, _help, series) in self.snapshot() {
            for (labels, instrument) in &series {
                let id = format!("{name}{}", format_labels(labels, None));
                match instrument {
                    InstrumentRef::Counter(c) => {
                        let _ = writeln!(scalars, "  {id} = {}", c.get());
                    }
                    InstrumentRef::Gauge(g) => {
                        let _ = writeln!(scalars, "  {id} = {}", g.get());
                    }
                    InstrumentRef::Histogram(h) => {
                        if h.count() == 0 {
                            let _ = writeln!(histograms, "  {id}: no observations");
                            continue;
                        }
                        // Time units only make sense for latency families;
                        // size/count histograms print plain numbers.
                        let is_duration = name.ends_with("_seconds");
                        let fmt = |v: Option<f64>| match v {
                            Some(v) if !is_duration => format!("{v:.0}"),
                            Some(v) if v >= 1.0 => format!("{v:.3}s"),
                            Some(v) if v >= 1e-3 => format!("{:.3}ms", v * 1e3),
                            Some(v) => format!("{:.1}us", v * 1e6),
                            None => "-".to_string(),
                        };
                        let _ = writeln!(
                            histograms,
                            "  {id}: count={} mean={} p50={} p95={} p99={}",
                            h.count(),
                            fmt(h.mean()),
                            fmt(h.quantile(0.50)),
                            fmt(h.quantile(0.95)),
                            fmt(h.quantile(0.99)),
                        );
                    }
                }
            }
        }
        let mut out = String::new();
        if !scalars.is_empty() {
            out.push_str("counters & gauges:\n");
            out.push_str(&scalars);
        }
        if !histograms.is_empty() {
            out.push_str("latency & size distributions:\n");
            out.push_str(&histograms);
        }
        let events = self.trace_events();
        if !events.is_empty() {
            out.push_str("recent trace events:\n");
            let tail = events.len().saturating_sub(12);
            for e in &events[tail..] {
                let _ = writeln!(
                    out,
                    "  [{:>10}us] #{:<4} {:<12} {}",
                    e.elapsed_micros, e.seq, e.category, e.message
                );
            }
        }
        if out.is_empty() {
            out.push_str("no metrics recorded\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("demo_ops_total", "Ops.").add(7);
        r.gauge("demo_depth", "Depth.").set(3);
        let h = r.histogram("demo_seconds", "Latency.", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE demo_ops_total counter"));
        assert!(text.contains("demo_ops_total 7"));
        assert!(text.contains("# TYPE demo_depth gauge"));
        assert!(text.contains("demo_depth 3"));
        assert!(text.contains("# TYPE demo_seconds histogram"));
        assert!(text.contains("demo_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("demo_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("demo_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("demo_seconds_count 2"));
    }

    #[test]
    fn labeled_series_render_sorted_labels() {
        let r = Registry::new();
        r.counter_with("jobs_total", "Jobs.", &[("state", "ok"), ("svc", "a")])
            .inc();
        let text = r.render_prometheus();
        // Labels are stored sorted by key.
        assert!(text.contains("jobs_total{state=\"ok\",svc=\"a\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("esc_total", "Esc.", &[("p", "a\"b\\c")])
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("esc_total{p=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn summary_mentions_quantiles_and_traces() {
        let r = Registry::new();
        let h = r.latency_histogram("s_seconds", "S.");
        h.observe(0.002);
        r.trace("test", "something happened".into());
        let s = r.render_summary();
        assert!(s.contains("p95="));
        assert!(s.contains("something happened"));
    }

    #[test]
    fn summary_size_histograms_print_plain_numbers() {
        let r = Registry::new();
        let h = r.size_histogram("payload_bytes", "Payload sizes.");
        h.observe(2684.0);
        let s = r.render_summary();
        assert!(s.contains("count=1 mean=2684"), "{s}");
        assert!(!s.contains("2684.000s"), "{s}");
    }

    #[test]
    fn empty_registry_summary() {
        let r = Registry::new();
        assert!(r.render_summary().contains("no metrics recorded"));
    }

    #[test]
    fn merged_exposition_labels_each_part_once_per_family() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared_total", "Shared.").add(2);
        b.counter("shared_total", "Shared.").add(5);
        b.gauge_with("only_b", "B only.", &[("k", "v")]).set(1);
        let text = Registry::render_prometheus_merged("tenant", &[("alpha", &a), ("beta", &b)]);
        assert!(text.contains("shared_total{tenant=\"alpha\"} 2"), "{text}");
        assert!(text.contains("shared_total{tenant=\"beta\"} 5"), "{text}");
        assert!(text.contains("only_b{k=\"v\",tenant=\"beta\"} 1"), "{text}");
        // One header per family even when both parts carry it.
        assert_eq!(text.matches("# TYPE shared_total counter").count(), 1);
        // Histograms merge too, with the label on every expanded line.
        let h = a.histogram("lat_seconds", "Lat.", &[1.0]);
        h.observe(0.5);
        let text = Registry::render_prometheus_merged("tenant", &[("alpha", &a), ("beta", &b)]);
        assert!(
            text.contains("lat_seconds_bucket{tenant=\"alpha\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_count{tenant=\"alpha\"} 1"),
            "{text}"
        );
    }
}
