//! The metrics registry: named, optionally labeled instrument families.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{Histogram, LATENCY_SECONDS_BUCKETS, SIZE_BYTES_BUCKETS};
use crate::instrument::{Counter, Gauge};
use crate::trace::{TraceEvent, TraceRing, DEFAULT_TRACE_CAPACITY};

/// Label set: sorted `(key, value)` pairs identifying one series in a family.
pub(crate) type LabelSet = Vec<(String, String)>;

/// One rendered family: `(name, help, series)` with each series carrying
/// its sorted label set.
pub(crate) type FamilySnapshot = (String, String, Vec<(LabelSet, InstrumentRef)>);

#[derive(Debug, Clone)]
pub(crate) enum InstrumentRef {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl InstrumentRef {
    fn kind(&self) -> &'static str {
        match self {
            InstrumentRef::Counter(_) => "counter",
            InstrumentRef::Gauge(_) => "gauge",
            InstrumentRef::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) series: BTreeMap<LabelSet, InstrumentRef>,
}

/// A set of named metric families plus a trace-event ring.
///
/// Get-or-create lookups (`counter`, `gauge`, `histogram` and their
/// `_with`-labels variants) take a registry-wide mutex; callers are expected
/// to resolve handles once at construction time and hammer the returned
/// `Arc`s on the hot path. Re-resolving the same name returns the same
/// underlying instrument, which is also how tests read values written by
/// instrumented components.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    families: Mutex<BTreeMap<String, Family>>,
    trace: TraceRing,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            families: Mutex::new(BTreeMap::new()),
            trace: TraceRing::new(DEFAULT_TRACE_CAPACITY, true),
        }
    }

    /// A registry whose instruments record nothing.
    ///
    /// Handles resolve normally but every `inc`/`observe`/`record` is a
    /// predicted-not-taken branch; the overhead bench compares an engine
    /// wired to `noop()` against one wired to `new()`.
    pub fn noop() -> Registry {
        Registry {
            enabled: false,
            families: Mutex::new(BTreeMap::new()),
            trace: TraceRing::new(1, false),
        }
    }

    /// The process-wide registry, created on first use.
    ///
    /// Nothing registers here implicitly: components default to private
    /// registries and the CLI passes this one down explicitly.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new())).clone()
    }

    /// Whether instruments from this registry record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn series<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], make: F) -> InstrumentRef
    where
        F: FnOnce(bool) -> InstrumentRef,
    {
        let mut labels: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let made = make(self.enabled);
        let existing = family.series.entry(labels).or_insert_with(|| made.clone());
        assert_eq!(
            existing.kind(),
            made.kind(),
            "metric `{name}` registered twice with different types ({} vs {})",
            existing.kind(),
            made.kind(),
        );
        existing.clone()
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or create a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, labels, |en| {
            InstrumentRef::Counter(Arc::new(Counter::new(en)))
        }) {
            InstrumentRef::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, labels, |en| {
            InstrumentRef::Gauge(Arc::new(Gauge::new(en)))
        }) {
            InstrumentRef::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get or create an unlabeled histogram with explicit bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get or create a labeled histogram series with explicit bucket bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, labels, |en| {
            InstrumentRef::Histogram(Arc::new(Histogram::new(bounds, en)))
        }) {
            InstrumentRef::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Histogram with the default latency buckets (1µs … 10s).
    pub fn latency_histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram(name, help, LATENCY_SECONDS_BUCKETS)
    }

    /// Labeled histogram with the default latency buckets.
    pub fn latency_histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, LATENCY_SECONDS_BUCKETS, labels)
    }

    /// Histogram with the default byte-size buckets (64 B … 64 MiB).
    pub fn size_histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram(name, help, SIZE_BYTES_BUCKETS)
    }

    /// Record a trace event.
    pub fn trace(&self, category: &'static str, message: String) {
        self.trace.record(category, message);
    }

    /// Retained trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// The underlying trace ring.
    pub fn trace_ring(&self) -> &TraceRing {
        &self.trace
    }

    /// Stable snapshot of every family for rendering.
    pub(crate) fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = self.families.lock().expect("registry poisoned");
        families
            .iter()
            .map(|(name, fam)| {
                (
                    name.clone(),
                    fam.help.clone(),
                    fam.series
                        .iter()
                        .map(|(l, i)| (l.clone(), i.clone()))
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn label_sets_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter_with("y_total", "y", &[("svc", "a")]);
        let b = r.counter_with("y_total", "y", &[("svc", "b")]);
        a.add(3);
        assert_eq!(b.get(), 0);
        // Label order must not matter.
        let a2 = r.counter_with("y_total", "y", &[("svc", "a")]);
        assert_eq!(a2.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different types")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("z", "z");
        let _ = r.gauge("z", "z");
    }

    #[test]
    fn noop_registry_records_nothing() {
        let r = Registry::noop();
        let c = r.counter("c_total", "c");
        c.inc();
        assert_eq!(c.get(), 0);
        r.trace("t", "event".into());
        assert!(r.trace_events().is_empty());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
