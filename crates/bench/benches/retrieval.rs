//! Retrieval microbenchmarks: indexed vs scan query paths over the
//! catalog — the payoff of the secondary indexes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use preserva_core::retrieval::RecordCatalog;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_metadata::query::{Filter, Query};
use preserva_storage::engine::{Engine, EngineOptions};
use preserva_storage::table::TableStore;

fn setup(n_records: usize) -> (RecordCatalog, String, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "preserva-bench-retrieval-{}-{n_records}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(TableStore::new(Arc::new(
        Engine::open(&dir, EngineOptions::default()).unwrap(),
    )));
    let catalog = RecordCatalog::open(store).unwrap();
    let collection = generator::generate(&GeneratorConfig {
        records: n_records,
        distinct_species: (n_records / 6).max(10),
        outdated_names: 0,
        seed: 5,
        ..GeneratorConfig::default()
    });
    catalog.insert_all(&collection.records).unwrap();
    let species = collection.species_names[0].canonical();
    (catalog, species, dir)
}

fn bench_queries(c: &mut Criterion) {
    let (catalog, species, dir) = setup(5_000);
    let mut g = c.benchmark_group("retrieval/query_5k");
    g.sample_size(30);
    g.throughput(Throughput::Elements(1));

    let indexed = Query::new(Filter::species(&species));
    g.bench_function("species_indexed", |b| {
        b.iter(|| catalog.query(&indexed).unwrap())
    });

    // Same predicate, forced down the scan path via a non-plannable Or.
    let scan = Query::new(Filter::Or(vec![Filter::species(&species)]));
    g.bench_function("species_scan", |b| b.iter(|| catalog.query(&scan).unwrap()));

    let filled = Query::new(Filter::Filled {
        field: "coordinates".into(),
    });
    g.bench_function("filled_scan", |b| {
        b.iter(|| catalog.query(&filled).unwrap())
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_insert(c: &mut Criterion) {
    let (catalog, _, dir) = setup(100);
    let collection = generator::generate(&GeneratorConfig::small(9));
    let mut g = c.benchmark_group("retrieval/insert");
    g.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    g.bench_function("indexed_insert", |b| {
        b.iter(|| {
            let r = &collection.records[i % collection.records.len()];
            i += 1;
            catalog.insert(r).unwrap()
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_queries, bench_insert);
criterion_main!(benches);
