//! Workflow-engine microbenchmarks: run latency of the diamond graph and
//! trace→OPM export.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use preserva_wfms::engine::{Engine, EngineConfig};
use preserva_wfms::model::{Processor, Workflow};
use preserva_wfms::opm_export;
use preserva_wfms::services::{port, PortMap, ServiceError, ServiceRegistry};
use preserva_wfms::{BufferingSink, NullSink};

fn registry() -> ServiceRegistry {
    let mut r = ServiceRegistry::new();
    r.register_fn("double", |i: &PortMap| {
        let x = i["in"]
            .as_i64()
            .ok_or(ServiceError::Permanent("int".into()))?;
        Ok(port("out", json!(x * 2)))
    });
    r.register_fn("add", |i: &PortMap| {
        Ok(port(
            "out",
            json!(i["l"].as_i64().unwrap_or(0) + i["r"].as_i64().unwrap_or(0)),
        ))
    });
    r
}

fn diamond() -> Workflow {
    Workflow::new("w1", "diamond")
        .with_input("x")
        .with_output("y")
        .with_processor(Processor::service("a", "double", &["in"], &["out"]))
        .with_processor(Processor::service("b", "double", &["in"], &["out"]))
        .with_processor(Processor::service("c", "double", &["in"], &["out"]))
        .with_processor(Processor::service("d", "add", &["l", "r"], &["out"]))
        .link_input("x", "a", "in")
        .link("a", "out", "b", "in")
        .link("a", "out", "c", "in")
        .link("b", "out", "d", "l")
        .link("c", "out", "d", "r")
        .link_output("d", "out", "y")
}

fn bench_run(c: &mut Criterion) {
    let w = diamond();
    let seq = Engine::new(
        registry(),
        EngineConfig {
            parallel: false,
            max_attempts: 1,
            ..Default::default()
        },
    )
    .with_sink(Arc::new(NullSink));
    let par = Engine::new(
        registry(),
        EngineConfig {
            parallel: true,
            max_attempts: 1,
            ..Default::default()
        },
    )
    .with_sink(Arc::new(NullSink));
    let input = port("x", json!(21));
    let mut g = c.benchmark_group("wfms/run_diamond");
    g.bench_function("sequential", |b| b.iter(|| seq.run(&w, &input).unwrap()));
    g.bench_function("parallel", |b| b.iter(|| par.run(&w, &input).unwrap()));
    g.finish();
}

/// Cost of provenance recording at the sink seam: the same diamond run
/// with the no-op sink versus one that clones every trace into memory.
fn bench_sink_overhead(c: &mut Criterion) {
    let w = diamond();
    let cfg = EngineConfig {
        parallel: false,
        max_attempts: 1,
        ..Default::default()
    };
    let null = Engine::new(registry(), cfg.clone()).with_sink(Arc::new(NullSink));
    let buffering_sink = Arc::new(BufferingSink::new());
    let buffered = Engine::new(registry(), cfg).with_sink(buffering_sink.clone());
    let input = port("x", json!(21));
    let mut g = c.benchmark_group("wfms/sink_overhead");
    g.bench_function("null_sink", |b| b.iter(|| null.run(&w, &input).unwrap()));
    g.bench_function("buffering_sink", |b| {
        b.iter(|| {
            let t = buffered.run(&w, &input).unwrap();
            buffering_sink.drain(); // keep memory flat across iterations
            t
        })
    });
    g.finish();
}

fn bench_export(c: &mut Criterion) {
    let w = diamond();
    let e = Engine::new(registry(), EngineConfig::default());
    let trace = e.run(&w, &port("x", json!(21))).unwrap();
    c.bench_function("wfms/opm_export_diamond", |b| {
        b.iter(|| opm_export::export(&w, &trace))
    });
}

criterion_group!(benches, bench_run, bench_sink_overhead, bench_export);
criterion_main!(benches);
