//! Storage-engine microbenchmarks: put / get / scan / recovery — the cost
//! floor under every repository in the architecture.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use preserva_storage::engine::{Engine, EngineOptions};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "preserva-bench-storage-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/put");
    g.throughput(Throughput::Elements(1));
    let dir = tmpdir("put");
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    let mut i = 0u64;
    g.bench_function("single_key", |b| {
        b.iter(|| {
            i += 1;
            engine
                .put(
                    "records",
                    &i.to_be_bytes(),
                    b"one observation record payload",
                )
                .unwrap();
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_get_scan(c: &mut Criterion) {
    let dir = tmpdir("get");
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    for i in 0..10_000u64 {
        engine
            .put("records", &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    engine.checkpoint().unwrap();
    let mut g = c.benchmark_group("storage/read");
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            engine.get("records", &i.to_be_bytes()).unwrap()
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("scan_10k", |b| {
        b.iter(|| engine.scan_all("records").unwrap())
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_recovery(c: &mut Criterion) {
    let dir = tmpdir("recovery");
    {
        let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
        for i in 0..5_000u64 {
            engine.put("records", &i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
    } // drop without checkpoint: recovery replays the WAL
    let mut g = c.benchmark_group("storage/recovery");
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("wal_replay_5k", |b| {
        b.iter_batched(
            || (),
            |_| Engine::open(&dir, EngineOptions::default()).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_put, bench_get_scan, bench_recovery);
criterion_main!(benches);
