//! Storage-engine microbenchmarks: put / get / scan / recovery — the cost
//! floor under every repository in the architecture.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use preserva_storage::engine::{BatchOp, Engine, EngineOptions};
use preserva_storage::CompactionOptions;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "preserva-bench-storage-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/put");
    g.throughput(Throughput::Elements(1));
    let dir = tmpdir("put");
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    let mut i = 0u64;
    g.bench_function("single_key", |b| {
        b.iter(|| {
            i += 1;
            engine
                .put(
                    "records",
                    &i.to_be_bytes(),
                    b"one observation record payload",
                )
                .unwrap();
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_get_scan(c: &mut Criterion) {
    let dir = tmpdir("get");
    let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
    for i in 0..10_000u64 {
        engine
            .put("records", &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    engine.checkpoint().unwrap();
    let mut g = c.benchmark_group("storage/read");
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            engine.get("records", &i.to_be_bytes()).unwrap()
        })
    });
    g.throughput(Throughput::Elements(10_000));
    // Scans go through a pinned snapshot now — the repeatable-read path
    // every repository read uses since the MVCC refactor.
    let snap = engine.snapshot();
    g.bench_function("scan_10k", |b| b.iter(|| snap.scan_all("records").unwrap()));
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// MVCC overhead under version pressure: a snapshot pinned below 5×
/// resident versions per key scans the same 10k logical rows as the
/// live head. Compare against `storage/read/scan_10k` (version-free)
/// for the amplification cost; `exp_mvcc` records the same shape as a
/// JSON datapoint.
fn bench_snapshot_scan_under_versions(c: &mut Criterion) {
    let dir = tmpdir("mvcc-scan");
    let opts = EngineOptions {
        compaction: CompactionOptions {
            background: false,
            max_runs_per_level: usize::MAX,
        },
        ..EngineOptions::default()
    };
    let engine = Engine::open(&dir, opts).unwrap();
    for i in 0..10_000u64 {
        engine
            .put("records", &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    engine.checkpoint().unwrap();
    // Pin below the churn, then lay four more full generations of
    // versions on top: 50k physical versions, 10k logical rows.
    let snap = engine.snapshot();
    for gen in 1..=4u64 {
        for i in 0..10_000u64 {
            engine
                .put("records", &i.to_be_bytes(), &(i ^ gen).to_le_bytes())
                .unwrap();
        }
        engine.checkpoint().unwrap();
    }
    let mut g = c.benchmark_group("storage/mvcc");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("pinned_scan_under_5x_versions", |b| {
        b.iter(|| snap.scan_all("records").unwrap())
    });
    g.bench_function("live_scan_over_5x_versions", |b| {
        b.iter(|| engine.scan_all("records").unwrap())
    });
    // Folded baseline: drop the pin, compact history away, re-scan.
    drop(snap);
    engine.compact().unwrap();
    g.bench_function("live_scan_after_fold", |b| {
        b.iter(|| engine.scan_all("records").unwrap())
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_recovery(c: &mut Criterion) {
    let dir = tmpdir("recovery");
    {
        let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
        for i in 0..5_000u64 {
            engine.put("records", &i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
    } // drop without checkpoint: recovery replays the WAL
    let mut g = c.benchmark_group("storage/recovery");
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("wal_replay_5k", |b| {
        b.iter_batched(
            || (),
            |_| Engine::open(&dir, EngineOptions::default()).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// The tiered store's headline claim: checkpoint cost is O(memtable),
/// not O(total data). Prefill engines at two sizes an order of magnitude
/// apart (100k and 1M resident keys, already flushed into runs), then
/// measure flushing a fixed 1k-entry memtable on top of each — the two
/// timings should be flat across prefill size. The pre-tiered engine
/// rewrote *every live key* into a fresh snapshot on each checkpoint;
/// that legacy cost is measured directly with `write_snapshot` over the
/// full resident map, which is the exact code the old checkpoint ran.
fn bench_flush_scaling(c: &mut Criterion) {
    use preserva_storage::sstable::write_snapshot;
    use std::collections::BTreeMap;

    const FRESH: u64 = 1_000; // memtable size being flushed
    let payload = [7u8; 24];

    let mut g = c.benchmark_group("storage/flush_scaling");
    g.sample_size(10);
    for (label, total) in [("100k", 100_000u64), ("1m", 1_000_000u64)] {
        // --- tiered: memtable-only flush on top of `total` resident keys.
        let dir = tmpdir(&format!("flush-{label}"));
        let opts = EngineOptions {
            compaction: CompactionOptions {
                background: false,
                // No compaction during the measurement: isolate flush cost.
                max_runs_per_level: usize::MAX,
            },
            ..EngineOptions::default()
        };
        let engine = Engine::open(&dir, opts).unwrap();
        for chunk in (0..total).collect::<Vec<_>>().chunks(10_000) {
            let batch: Vec<BatchOp> = chunk
                .iter()
                .map(|i| BatchOp::Put {
                    table: "records".to_string(),
                    key: i.to_be_bytes().to_vec(),
                    value: payload.to_vec(),
                })
                .collect();
            engine.apply_batch(batch).unwrap();
            engine.checkpoint().unwrap();
        }
        let mut next = total;
        g.throughput(Throughput::Elements(FRESH));
        g.bench_function(format!("memtable_only_flush_over_{label}"), |b| {
            b.iter_batched(
                || {
                    // A fresh 1k-entry memtable, unique keys per round.
                    let batch: Vec<BatchOp> = (0..FRESH)
                        .map(|_| {
                            next += 1;
                            BatchOp::Put {
                                table: "records".to_string(),
                                key: next.to_be_bytes().to_vec(),
                                value: payload.to_vec(),
                            }
                        })
                        .collect();
                    engine.apply_batch(batch).unwrap();
                },
                |_| engine.checkpoint().unwrap(),
                BatchSize::PerIteration,
            )
        });

        // --- legacy: the old checkpoint's full rewrite of `total` keys.
        let resident: BTreeMap<(String, Vec<u8>), Option<Vec<u8>>> = (0..total)
            .map(|i| {
                (
                    ("records".to_string(), i.to_be_bytes().to_vec()),
                    Some(payload.to_vec()),
                )
            })
            .collect();
        let snap_path = dir.join("legacy-model.sst");
        g.bench_function(format!("legacy_full_rewrite_of_{label}"), |b| {
            b.iter_batched(
                || (),
                |_| write_snapshot(&snap_path, resident.iter()).unwrap(),
                BatchSize::PerIteration,
            )
        });
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }
    g.finish();
}

/// Full recuration vs journal-driven delta reassessment at 1%, 10% and
/// 100% churn: the cost of re-deriving the collection's quality state
/// should scale with the number of touched records, not the collection.
fn bench_reassess_churn(c: &mut Criterion) {
    use preserva_core::reassess::Reassessor;
    use preserva_core::retrieval::RecordCatalog;
    use preserva_curation::log::CurationLog;
    use preserva_curation::outdated::OutdatedNameDetector;
    use preserva_curation::pipeline::CurationPipeline;
    use preserva_curation::review::ReviewQueue;
    use preserva_fnjv::{config::GeneratorConfig, generator};
    use preserva_metadata::value::Value;
    use preserva_storage::table::TableStore;
    use preserva_taxonomy::service::{ColService, ServiceConfig};
    use std::cell::Cell;
    use std::sync::Arc;

    const N: usize = 1_000;
    let config = GeneratorConfig {
        records: N,
        distinct_species: 120,
        outdated_names: 10,
        seed: 42,
        ..GeneratorConfig::default()
    };
    let collection = generator::generate(&config);
    let service = ColService::new(
        collection.checklist.clone(),
        ServiceConfig {
            availability: 1.0,
            seed: 7,
            ..ServiceConfig::default()
        },
    );
    let pipeline = CurationPipeline::stage1(
        preserva_gazetteer::builder::build_gazetteer(3, 0x9E0),
        preserva_metadata::fnjv::schema(),
    );

    let mut g = c.benchmark_group("storage/reassess");
    g.sample_size(10);

    // Baseline: the pre-journal path — every record through the full
    // pipeline plus a full name check, regardless of what changed.
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("full_recurate_1k", |b| {
        b.iter(|| {
            let mut log = CurationLog::new();
            let mut queue = ReviewQueue::new();
            let (curated, _) = pipeline.run(&collection.records, &mut log, &mut queue);
            let report = OutdatedNameDetector::new(&service, 3).check_collection(&curated);
            criterion::black_box((curated, report.current))
        })
    });

    for (label, frac) in [
        ("delta_churn_1pct", 0.01f64),
        ("delta_churn_10pct", 0.10),
        ("delta_churn_100pct", 1.0),
    ] {
        let dir = tmpdir(label);
        let engine = Engine::open(&dir, EngineOptions::default()).unwrap();
        let store = Arc::new(TableStore::new(Arc::new(engine)));
        let catalog = RecordCatalog::open_on(store.clone(), "records").unwrap();
        // Curate once, persist the clean collection, seed the cursor so
        // only the churn edits below are ever reprocessed.
        let mut log = CurationLog::new();
        let mut queue = ReviewQueue::new();
        let (curated, _) = pipeline.run(&collection.records, &mut log, &mut queue);
        catalog.insert_all(&curated).unwrap();
        let reassessor = Reassessor::new(store.clone(), "records").unwrap();
        let report = OutdatedNameDetector::new(&service, 3).check_collection(&curated);
        reassessor.seed(&report).unwrap();

        let k = (((N as f64) * frac).round() as usize).max(1);
        let round = Cell::new(0u64);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    // Touch k records: one journaled commit of edits.
                    round.set(round.get() + 1);
                    let mut session = store.session();
                    for r in curated.iter().take(k) {
                        let mut edited = r.clone();
                        edited.set("recordist", Value::Text(format!("churn {}", round.get())));
                        catalog.stage(&mut session, &edited).unwrap();
                    }
                    session.commit().unwrap();
                },
                |_| {
                    let mut log = CurationLog::new();
                    let mut queue = ReviewQueue::new();
                    reassessor
                        .run(&pipeline, &service, None, None, &mut log, &mut queue)
                        .unwrap()
                },
                BatchSize::PerIteration,
            )
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_put,
    bench_get_scan,
    bench_snapshot_scan_under_versions,
    bench_recovery,
    bench_flush_scaling,
    bench_reassess_churn
);
criterion_main!(benches);
