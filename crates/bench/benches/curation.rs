//! Curation microbenchmarks: the stage-1 pipeline per record and its
//! individual passes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use preserva_curation::cleaning::{LegacyDatePass, SpeciesNamePass, WhitespacePass};
use preserva_curation::log::CurationLog;
use preserva_curation::pass::CurationPass;
use preserva_curation::pipeline::CurationPipeline;
use preserva_curation::review::ReviewQueue;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_gazetteer::builder::build_gazetteer;
use preserva_metadata::fnjv;

fn bench_passes(c: &mut Criterion) {
    let coll = generator::generate(&GeneratorConfig::small(3));
    let record = coll.records[0].clone();
    let mut g = c.benchmark_group("curation/pass");
    g.throughput(Throughput::Elements(1));
    g.bench_function("whitespace", |b| b.iter(|| WhitespacePass.inspect(&record)));
    g.bench_function("species_name", |b| {
        b.iter(|| SpeciesNamePass.inspect(&record))
    });
    g.bench_function("legacy_date", |b| {
        b.iter(|| LegacyDatePass.inspect(&record))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let coll = generator::generate(&GeneratorConfig::small(3));
    let pipeline = CurationPipeline::stage1(build_gazetteer(3, 1), fnjv::schema());
    let mut g = c.benchmark_group("curation/stage1_pipeline");
    g.sample_size(20);
    g.throughput(Throughput::Elements(coll.records.len() as u64));
    g.bench_function("600_records", |b| {
        b.iter(|| {
            let mut log = CurationLog::new();
            let mut queue = ReviewQueue::new();
            pipeline.run(&coll.records, &mut log, &mut queue)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_passes, bench_pipeline);
criterion_main!(benches);
