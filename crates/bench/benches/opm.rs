//! OPM microbenchmarks: graph construction, completion-rule saturation
//! and derivation closure — the provenance-side costs of every captured
//! run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use preserva_opm::edge::Edge;
use preserva_opm::graph::OpmGraph;
use preserva_opm::inference;
use preserva_opm::model::{Artifact, Process};

/// Build a pipeline provenance graph with `n` stages.
fn pipeline(n: usize) -> OpmGraph {
    let mut g = OpmGraph::new();
    g.add_artifact(Artifact::new("a:0", "input"));
    for i in 0..n {
        g.add_process(Process::new(format!("p:{i}"), format!("step {i}")));
        g.add_artifact(Artifact::new(format!("a:{}", i + 1), format!("out {i}")));
        g.add_edge(Edge::used(
            format!("p:{i}").as_str().into(),
            format!("a:{i}").as_str().into(),
            Some("in"),
        ))
        .unwrap();
        g.add_edge(Edge::was_generated_by(
            format!("a:{}", i + 1).as_str().into(),
            format!("p:{i}").as_str().into(),
            Some("out"),
        ))
        .unwrap();
    }
    g
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("opm/build");
    for n in [10usize, 100, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| pipeline(n))
        });
    }
    g.finish();
}

fn bench_saturate(c: &mut Criterion) {
    let mut g = c.benchmark_group("opm/saturate");
    for n in [10usize, 100, 500] {
        let base = pipeline(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &base, |b, base| {
            b.iter(|| {
                let mut graph = base.clone();
                inference::saturate(&mut graph)
            })
        });
    }
    g.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("opm/derivation_closure");
    for n in [10usize, 100, 500] {
        let base = pipeline(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &base, |b, base| {
            b.iter(|| inference::derivation_closure(base))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_saturate, bench_closure);
criterion_main!(benches);
