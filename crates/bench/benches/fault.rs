//! Fault-tolerance benchmarks: bounded pool vs thread-per-processor
//! waves, and breaker fast-fail vs burning the full retry budget.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use preserva_wfms::breaker::BreakerConfig;
use preserva_wfms::engine::{Engine, EngineConfig, RetryPolicy};
use preserva_wfms::model::{Processor, Workflow};
use preserva_wfms::services::{port, PortMap, ServiceError, ServiceRegistry};

/// A single-wave workflow `width` processors wide.
fn wide_workflow(width: usize) -> Workflow {
    let mut w = Workflow::new("wide", "wide").with_input("x");
    for i in 0..width {
        let name = format!("p{i:03}");
        let out = format!("y{i:03}");
        w = w
            .with_output(&out)
            .with_processor(Processor::service(&name, "work", &["in"], &["out"]))
            .link_input("x", &name, "in")
            .link_output(&name, "out", &out);
    }
    w
}

fn work_registry() -> ServiceRegistry {
    let mut r = ServiceRegistry::new();
    r.register_fn("work", |i: &PortMap| {
        // A little CPU per processor so scheduling costs don't dominate.
        let mut acc = i["in"].as_i64().unwrap_or(0) as u64;
        for _ in 0..2_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        Ok(port("out", json!(acc)))
    });
    r
}

/// One 64-wide wave: bounded pool (hardware parallelism) versus one
/// thread per processor (the engine's old spawn-per-member strategy,
/// recovered by setting the bound to the wave width).
fn bench_pool_vs_spawn(c: &mut Criterion) {
    let width = 64;
    let w = wide_workflow(width);
    let input = port("x", json!(3));
    let engine_for = |max_concurrency: usize| {
        Engine::new(
            work_registry(),
            EngineConfig {
                max_attempts: 1,
                max_concurrency,
                ..Default::default()
            },
        )
    };
    let bounded = engine_for(0); // 0 = available parallelism
    let spawny = engine_for(width); // one worker per wave member
    let sequential = engine_for(1);
    let mut g = c.benchmark_group("fault/wave64");
    g.bench_function("pool_auto", |b| b.iter(|| bounded.run(&w, &input).unwrap()));
    g.bench_function("thread_per_processor", |b| {
        b.iter(|| spawny.run(&w, &input).unwrap())
    });
    g.bench_function("sequential", |b| {
        b.iter(|| sequential.run(&w, &input).unwrap())
    });
    g.finish();
}

/// A dead service: failing through the whole retry budget versus failing
/// fast on a tripped breaker.
fn bench_breaker_fast_fail(c: &mut Criterion) {
    let dead_registry = || {
        let mut r = ServiceRegistry::new();
        r.register_fn("dead", |_: &PortMap| {
            Err(ServiceError::Transient("upstream unreachable".into()))
        });
        r
    };
    let w =
        Workflow::new("w", "dead-call").with_processor(Processor::service("p", "dead", &[], &[]));
    let input = PortMap::new();

    let no_breaker = Engine::new(
        dead_registry(),
        EngineConfig {
            max_attempts: 8,
            retry: RetryPolicy::none(), // isolate attempt cost from sleeps
            breaker: BreakerConfig::disabled(),
            ..Default::default()
        },
    );
    let breaker = Engine::new(
        dead_registry(),
        EngineConfig {
            max_attempts: 8,
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(3600), // stays open all bench
                half_open_probes: 1,
            },
            ..Default::default()
        },
    );
    // Trip it before measuring: steady-state is the open-breaker path.
    let _ = breaker.run(&w, &input);
    assert!(breaker.stats().breaker_trips >= 1);

    let mut g = c.benchmark_group("fault/dead_service");
    g.bench_function("full_retry_budget", |b| {
        b.iter(|| no_breaker.run(&w, &input).unwrap_err())
    });
    g.bench_function("breaker_fast_fail", |b| {
        b.iter(|| breaker.run(&w, &input).unwrap_err())
    });
    g.finish();
}

criterion_group!(benches, bench_pool_vs_spawn, bench_breaker_fast_fail);
criterion_main!(benches);
