//! Instrumentation-overhead benchmark (ISSUE: <5% on the wfms engine).
//!
//! Runs the same diamond workflow through two engines: one reporting to a
//! live metrics registry, one wired to a no-op registry whose instruments
//! compile down to a single branch. Compare `wfms_overhead/observed` to
//! `wfms_overhead/noop` in the criterion report — the gap is the full
//! cost of the observability layer on the engine hot path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use preserva_obs::Registry;
use preserva_wfms::engine::{Engine, EngineConfig};
use preserva_wfms::model::{Processor, Workflow};
use preserva_wfms::services::{port, PortMap, ServiceError, ServiceRegistry};
use preserva_wfms::NullSink;

fn registry() -> ServiceRegistry {
    let mut r = ServiceRegistry::new();
    r.register_fn("double", |i: &PortMap| {
        let x = i["in"]
            .as_i64()
            .ok_or(ServiceError::Permanent("int".into()))?;
        Ok(port("out", json!(x * 2)))
    });
    r.register_fn("add", |i: &PortMap| {
        Ok(port(
            "out",
            json!(i["l"].as_i64().unwrap_or(0) + i["r"].as_i64().unwrap_or(0)),
        ))
    });
    r
}

fn diamond() -> Workflow {
    Workflow::new("w1", "diamond")
        .with_input("x")
        .with_output("y")
        .with_processor(Processor::service("a", "double", &["in"], &["out"]))
        .with_processor(Processor::service("b", "double", &["in"], &["out"]))
        .with_processor(Processor::service("c", "double", &["in"], &["out"]))
        .with_processor(Processor::service("d", "add", &["l", "r"], &["out"]))
        .link_input("x", "a", "in")
        .link("a", "out", "b", "in")
        .link("a", "out", "c", "in")
        .link("b", "out", "d", "l")
        .link("c", "out", "d", "r")
        .link_output("d", "out", "y")
}

fn engine(obs: Arc<Registry>) -> Engine {
    Engine::new(
        registry(),
        EngineConfig {
            parallel: false,
            max_attempts: 1,
            ..Default::default()
        },
    )
    .with_metrics(obs)
    .with_sink(Arc::new(NullSink))
}

fn bench_overhead(c: &mut Criterion) {
    let w = diamond();
    let observed = engine(Arc::new(Registry::new()));
    let noop = engine(Arc::new(Registry::noop()));
    let inputs = port("x", json!(21));

    let mut g = c.benchmark_group("wfms_overhead");
    g.bench_function("observed", |b| {
        b.iter(|| observed.run(&w, &inputs).unwrap())
    });
    g.bench_function("noop", |b| b.iter(|| noop.run(&w, &inputs).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
