//! Taxonomy microbenchmarks: exact lookup, synonym resolution and fuzzy
//! matching against a paper-scale backbone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use preserva_taxonomy::builder::{build_backbone, build_checklist, ReleasePlan};
use preserva_taxonomy::checklist::Checklist;
use preserva_taxonomy::fuzzy;
use preserva_taxonomy::name::ScientificName;

fn checklist(n: usize) -> (Checklist, Vec<ScientificName>) {
    let b = build_backbone(n, 42);
    let names: Vec<ScientificName> = b.names().cloned().collect();
    let c = build_checklist(
        b,
        1965,
        &[ReleasePlan {
            year: 2013,
            renames: n / 14,
            doubts: 0,
        }],
        None,
        42,
    );
    (c, names)
}

fn bench_lookup(c: &mut Criterion) {
    let (checklist, names) = checklist(1929);
    let ed = checklist.latest();
    let mut g = c.benchmark_group("taxonomy/lookup");
    g.throughput(Throughput::Elements(1));
    g.bench_function("status_1929", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 607) % names.len();
            ed.status(&names[i])
        })
    });
    g.bench_function("resolve_accepted_1929", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 607) % names.len();
            ed.resolve_accepted(&names[i])
        })
    });
    g.finish();
}

fn bench_fuzzy(c: &mut Criterion) {
    let mut g = c.benchmark_group("taxonomy/fuzzy");
    for n in [500usize, 1929] {
        let (_, names) = checklist(n);
        let canon: Vec<String> = names.iter().map(|x| x.canonical()).collect();
        // A typo'd query that exists at distance 1.
        let query = {
            let mut s = canon[0].clone();
            unsafe {
                let b = s.as_bytes_mut();
                let last = b.len() - 1;
                b.swap(last, last - 1);
            }
            s
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("best_match", n), &n, |b, _| {
            b.iter(|| fuzzy::best_match(&query, canon.iter().map(String::as_str), 2))
        });
    }
    g.finish();
}

fn bench_distance(c: &mut Criterion) {
    c.bench_function("taxonomy/damerau_levenshtein_binomial", |b| {
        b.iter(|| fuzzy::damerau_levenshtein("Elachistocleis ovalis", "Elachistocleis ovalsi"))
    });
}

criterion_group!(benches, bench_lookup, bench_fuzzy, bench_distance);
criterion_main!(benches);
