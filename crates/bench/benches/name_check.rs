//! The E6 inner loop: full outdated-name detection over paper-scale and
//! reduced collections (generation excluded from the measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use preserva_curation::outdated::OutdatedNameDetector;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator::{self, SyntheticCollection};
use preserva_taxonomy::service::{ColService, ServiceConfig};

fn collection(records: usize, distinct: usize) -> SyntheticCollection {
    generator::generate(&GeneratorConfig {
        records,
        distinct_species: distinct,
        outdated_names: distinct / 14,
        ..GeneratorConfig::default()
    })
}

fn bench_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("name_check/collection");
    g.sample_size(10);
    for (records, distinct) in [(1_000usize, 300usize), (11_898, 1_929)] {
        let coll = collection(records, distinct);
        let service = ColService::new(
            coll.checklist.clone(),
            ServiceConfig {
                availability: 1.0,
                seed: 1,
                ..ServiceConfig::default()
            },
        );
        g.throughput(Throughput::Elements(records as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{records}rec_{distinct}names")),
            &coll,
            |b, coll| {
                let det = OutdatedNameDetector::new(&service, 3);
                b.iter(|| det.check_collection(&coll.records))
            },
        );
    }
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("name_check/generate");
    g.sample_size(10);
    g.bench_function("paper_scale", |b| {
        b.iter(|| generator::generate(&GeneratorConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_check, bench_generation);
criterion_main!(benches);
