//! Quality-layer microbenchmarks: metric evaluation, lineage scoring over
//! provenance chains, and report aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use preserva_opm::edge::Edge;
use preserva_opm::graph::OpmGraph;
use preserva_opm::model::{Artifact, Process};
use preserva_quality::aggregate::Combine;
use preserva_quality::dimension::Dimension;
use preserva_quality::metric::AssessmentContext;
use preserva_quality::model::QualityModel;
use preserva_quality::provenance_based;

fn chain(n: usize) -> OpmGraph {
    let mut g = OpmGraph::new();
    g.add_artifact(Artifact::new("a:0", "src").with_annotation("Q(reputation)", "0.9"));
    for i in 0..n {
        g.add_process(
            Process::new(format!("p:{i}"), "step").with_annotation("Q(reputation)", "0.99"),
        );
        g.add_artifact(Artifact::new(format!("a:{}", i + 1), "derived"));
        g.add_edge(Edge::used(
            format!("p:{i}").as_str().into(),
            format!("a:{i}").as_str().into(),
            Some("in"),
        ))
        .unwrap();
        g.add_edge(Edge::was_generated_by(
            format!("a:{}", i + 1).as_str().into(),
            format!("p:{i}").as_str().into(),
            Some("out"),
        ))
        .unwrap();
    }
    g
}

fn bench_lineage(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/lineage_score");
    for n in [5usize, 50, 200] {
        let g = chain(n);
        let tip: preserva_opm::model::NodeId = format!("a:{n}").as_str().into();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                provenance_based::lineage_score(g, &tip, &Dimension::reputation(), Combine::Min)
            })
        });
    }
    group.finish();
}

fn bench_assess(c: &mut Criterion) {
    let model = QualityModel::case_study_default();
    let ctx = AssessmentContext::new()
        .with_fact("names_checked", 1929.0)
        .with_fact("names_correct", 1795.0)
        .with_fact("observed_availability", 0.9)
        .with_annotation("reputation", 1.0)
        .with_annotation("availability", 0.9);
    c.bench_function("quality/case_study_assess", |b| {
        b.iter(|| model.assess("fnjv", &ctx))
    });
}

criterion_group!(benches, bench_lineage, bench_assess);
criterion_main!(benches);
