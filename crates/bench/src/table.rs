//! Minimal aligned-table rendering for experiment output.

/// Render rows as an aligned text table; the first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Shorthand building a row from displayable items.
#[macro_export]
macro_rules! row {
    ($($x:expr),* $(,)?) => {
        vec![$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(&[
            row!["metric", "value"],
            row!["records", 11898],
            row!["distinct names", 1929],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("--"));
        // Columns align: "value" and numbers start at the same offset.
        let header_off = lines[0].find("value").unwrap();
        let row_off = lines[2].find("11898").unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(render(&[]), "");
    }
}
