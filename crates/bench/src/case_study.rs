//! Shared case-study setup: the Figure-3 instantiation of the
//! architecture, reused by experiment binaries, examples and integration
//! tests.
//!
//! The Outdated Species Name Detection Workflow is modeled faithfully:
//!
//! ```text
//! sound_metadata ──> Extract_species_names ──> Catalog_of_life ──> Summarize ──> summary
//!                                              (Q(reputation): 1; Q(availability): 0.9)
//! ```
//!
//! Services carry the simulated Catalogue of Life (`ColService`) inside
//! closures; the engine's retry policy absorbs its connection problems.

use std::path::Path;
use std::sync::Arc;

use serde_json::{json, Value};

use preserva_core::architecture::Architecture;
use preserva_core::roles::ProcessDesigner;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator::{self, SyntheticCollection};
use preserva_metadata::record::Record;
use preserva_taxonomy::name::ScientificName;
use preserva_taxonomy::service::{ColService, LookupOutcome, ServiceConfig};
use preserva_wfms::engine::EngineConfig;
use preserva_wfms::model::{Processor, Workflow};
use preserva_wfms::services::{port, PortMap, ServiceError, ServiceRegistry};

/// Workflow id of the case study.
pub const WORKFLOW_ID: &str = "wf-outdated-names";

/// Everything an experiment needs.
pub struct CaseStudy {
    pub collection: SyntheticCollection,
    pub service: Arc<ColService>,
    pub architecture: Architecture,
}

/// Serialize records to the workflow's input format (id + species only;
/// the workflow needs nothing else).
pub fn records_to_json(records: &[Record]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| {
                json!({
                    "id": r.id,
                    "species": r.get_text("species").unwrap_or_default(),
                })
            })
            .collect(),
    )
}

fn extract_names_service(inputs: &PortMap) -> Result<PortMap, ServiceError> {
    let records = inputs
        .get("records")
        .and_then(Value::as_array)
        .ok_or_else(|| ServiceError::Permanent("records must be an array".into()))?;
    let mut names: Vec<String> = records
        .iter()
        .filter_map(|r| r.get("species").and_then(Value::as_str))
        .filter_map(ScientificName::parse)
        .map(|n| n.canonical())
        .collect();
    names.sort();
    names.dedup();
    let unparseable = records
        .iter()
        .filter(|r| {
            r.get("species")
                .and_then(Value::as_str)
                .and_then(ScientificName::parse)
                .is_none()
        })
        .count();
    let mut out = port("names", json!(names));
    out.insert("records_processed".into(), json!(records.len()));
    out.insert("unparseable".into(), json!(unparseable));
    Ok(out)
}

fn col_lookup_service(
    service: Arc<ColService>,
    max_attempts: u32,
) -> impl Fn(&PortMap) -> Result<PortMap, ServiceError> {
    move |inputs: &PortMap| {
        let names = inputs
            .get("names")
            .and_then(Value::as_array)
            .ok_or_else(|| ServiceError::Permanent("names must be an array".into()))?;
        let mut verdicts = Vec::with_capacity(names.len());
        for n in names {
            let Some(name) = n.as_str().and_then(ScientificName::parse) else {
                continue;
            };
            let verdict = match service.lookup_with_retries(&name, max_attempts) {
                Err(_) => json!({"name": name.canonical(), "status": "unavailable"}),
                Ok(LookupOutcome::Current { .. }) => {
                    json!({"name": name.canonical(), "status": "current"})
                }
                Ok(LookupOutcome::Outdated { accepted, .. }) => json!({
                    "name": name.canonical(),
                    "status": "outdated",
                    "accepted": accepted.canonical(),
                }),
                Ok(LookupOutcome::Doubtful) => {
                    json!({"name": name.canonical(), "status": "doubtful"})
                }
                Ok(LookupOutcome::Misspelled {
                    suggestion,
                    distance,
                }) => json!({
                    "name": name.canonical(),
                    "status": "misspelled",
                    "suggestion": suggestion.canonical(),
                    "distance": distance,
                }),
                Ok(LookupOutcome::NotFound) => {
                    json!({"name": name.canonical(), "status": "not_found"})
                }
            };
            verdicts.push(verdict);
        }
        Ok(port("verdicts", json!(verdicts)))
    }
}

fn summarize_service(inputs: &PortMap) -> Result<PortMap, ServiceError> {
    let verdicts = inputs
        .get("verdicts")
        .and_then(Value::as_array)
        .ok_or_else(|| ServiceError::Permanent("verdicts must be an array".into()))?;
    let records_processed = inputs
        .get("records_processed")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let count = |status: &str| {
        verdicts
            .iter()
            .filter(|v| v.get("status").and_then(Value::as_str) == Some(status))
            .count()
    };
    let outdated: Vec<&Value> = verdicts
        .iter()
        .filter(|v| v.get("status").and_then(Value::as_str) == Some("outdated"))
        .collect();
    let current = count("current");
    let unavailable = count("unavailable");
    let checked = verdicts.len() - unavailable;
    let summary = json!({
        "records_processed": records_processed,
        "distinct_names": verdicts.len(),
        "checked": checked,
        "current": current,
        "outdated": outdated.len(),
        "doubtful": count("doubtful"),
        "misspelled": count("misspelled"),
        "not_found": count("not_found"),
        "unavailable": unavailable,
        "accuracy": if checked > 0 { current as f64 / checked as f64 } else { 1.0 },
        "updates": outdated.iter().map(|v| json!({
            "old": v["name"], "new": v["accepted"],
        })).collect::<Vec<_>>(),
    });
    Ok(port("summary", summary))
}

/// Build the case-study workflow (unannotated; the adapter annotates it).
pub fn build_workflow() -> Workflow {
    Workflow::new(WORKFLOW_ID, "Outdated Species Name Detection Workflow")
        .with_input("sound_metadata")
        .with_output("summary")
        .with_processor(Processor::service(
            "Extract_species_names",
            "extract_names",
            &["records"],
            &["names", "records_processed", "unparseable"],
        ))
        .with_processor(Processor::service(
            "Catalog_of_life",
            "col_lookup",
            &["names"],
            &["verdicts"],
        ))
        .with_processor(Processor::service(
            "Summarize",
            "summarize",
            &["verdicts", "records_processed"],
            &["summary"],
        ))
        .link_input("sound_metadata", "Extract_species_names", "records")
        .link("Extract_species_names", "names", "Catalog_of_life", "names")
        .link("Catalog_of_life", "verdicts", "Summarize", "verdicts")
        .link(
            "Extract_species_names",
            "records_processed",
            "Summarize",
            "records_processed",
        )
        .link_output("Summarize", "summary", "summary")
}

/// Assemble the whole case study: synthetic collection, the Catalogue-of-
/// Life service at the given availability, the architecture with services
/// registered, and the annotated workflow published.
pub fn setup_case_study(
    dir: &Path,
    config: &GeneratorConfig,
    availability: f64,
    lookup_attempts: u32,
) -> CaseStudy {
    let collection = generator::generate(config);
    let service = Arc::new(ColService::new(
        collection.checklist.clone(),
        ServiceConfig {
            availability,
            seed: config.seed ^ 0xC01,
            ..ServiceConfig::default()
        },
    ));

    let mut registry = ServiceRegistry::new();
    registry.register_fn("extract_names", extract_names_service);
    registry.register_fn(
        "col_lookup",
        col_lookup_service(service.clone(), lookup_attempts),
    );
    registry.register_fn("summarize", summarize_service);

    let _ = std::fs::remove_dir_all(dir);
    let architecture =
        Architecture::open(dir, registry, EngineConfig::default()).expect("fresh directory opens");

    let mut workflow = build_workflow();
    let designer = ProcessDesigner::new("expert", "IC/Unicamp");
    architecture
        .adapter()
        .annotate_processor(
            &mut workflow,
            "Catalog_of_life",
            &[("reputation", 1.0), ("availability", availability)],
            &designer,
            "2013-11-12 19:58:09.767 UTC",
        )
        .expect("processor exists");
    architecture.publish_workflow(workflow).expect("publishes");

    CaseStudy {
        collection,
        service,
        architecture,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("preserva-cs-{}-{}", std::process::id(), name))
    }

    #[test]
    fn small_case_study_runs_end_to_end() {
        let dir = tmp("e2e");
        let cs = setup_case_study(&dir, &GeneratorConfig::small(7), 1.0, 3);
        let input = port("sound_metadata", records_to_json(&cs.collection.records));
        let trace = cs
            .architecture
            .run_workflow(WORKFLOW_ID, &input)
            .expect("run succeeds");
        let summary = &trace.workflow_outputs["summary"];
        assert_eq!(summary["records_processed"], json!(600));
        assert_eq!(summary["distinct_names"], json!(120));
        assert_eq!(summary["outdated"], json!(9));
        let acc = summary["accuracy"].as_f64().unwrap();
        assert!((acc - (111.0 / 120.0)).abs() < 1e-9, "accuracy {acc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workflow_matches_detector_counts() {
        // The workflow path and the direct detector path agree.
        use preserva_curation::outdated::OutdatedNameDetector;
        let dir = tmp("agree");
        let cs = setup_case_study(&dir, &GeneratorConfig::small(11), 1.0, 3);
        let report =
            OutdatedNameDetector::new(&cs.service, 3).check_collection(&cs.collection.records);
        let input = port("sound_metadata", records_to_json(&cs.collection.records));
        let trace = cs.architecture.run_workflow(WORKFLOW_ID, &input).unwrap();
        let summary = &trace.workflow_outputs["summary"];
        assert_eq!(
            summary["distinct_names"].as_u64().unwrap() as usize,
            report.distinct_names
        );
        assert_eq!(
            summary["outdated"].as_u64().unwrap() as usize,
            report.outdated.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
