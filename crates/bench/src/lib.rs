//! `preserva-bench` — the experiment harness.
//!
//! The library half hosts the shared case-study setup
//! ([`case_study`]) and output helpers ([`table`]); the `src/bin/exp_*`
//! and `src/bin/abl_*` binaries regenerate every table and figure of the
//! paper (see DESIGN.md §4 for the index), and `benches/` holds the
//! Criterion microbenchmarks.

pub mod case_study;
pub mod table;

pub use case_study::{setup_case_study, CaseStudy};
