//! First datapoint of the MVCC bench trajectory (`BENCH_mvcc.json`):
//! snapshot-scan latency under write churn vs the seed `scan_all`, and
//! the memory amplification of pinned versions vs the folded store.
//!
//! Run with `cargo run --release -p preserva-bench --bin exp_mvcc` and
//! redirect stdout to `BENCH_mvcc.json` to record a datapoint.

use std::time::Instant;

use preserva_storage::engine::{Engine, EngineOptions};
use preserva_storage::manifest;
use preserva_storage::sstable::Run;
use preserva_storage::CompactionOptions;

const ROWS: u64 = 10_000;
const GENERATIONS: u64 = 5; // versions per key resident while pinned
const ITERS: u32 = 30;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("preserva-exp-mvcc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn foreground(max_runs: usize) -> EngineOptions {
    EngineOptions {
        compaction: CompactionOptions {
            background: false,
            max_runs_per_level: max_runs,
        },
        ..EngineOptions::default()
    }
}

/// Median wall-clock of `ITERS` runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f(); // warmup
    }
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Physical (entries, bytes) across every run the manifest lists.
fn resident(dir: &std::path::Path) -> (u64, u64) {
    let entries = manifest::load(dir).unwrap().unwrap_or_default();
    let mut n = 0u64;
    let mut bytes = 0u64;
    for e in entries {
        let run = Run::open(&manifest::run_path(dir, e.id)).unwrap();
        n += run.entries();
        bytes += run.bytes();
    }
    (n, bytes)
}

fn main() {
    // --- Seed shape: version-free store, plain scan_all.
    let seed_dir = tmpdir("seed");
    let seed = Engine::open(&seed_dir, foreground(usize::MAX)).unwrap();
    for i in 0..ROWS {
        seed.put("records", &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    seed.checkpoint().unwrap();
    let seed_scan_us = median_us(|| {
        assert_eq!(seed.scan_all("records").unwrap().len(), ROWS as usize);
    });
    drop(seed);
    std::fs::remove_dir_all(&seed_dir).ok();

    // --- Churned shape: snapshot pinned below GENERATIONS-1 full
    // overwrites, every generation flushed into its own run.
    let dir = tmpdir("churn");
    let e = Engine::open(&dir, foreground(usize::MAX)).unwrap();
    for i in 0..ROWS {
        e.put("records", &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    e.checkpoint().unwrap();
    let snap = e.snapshot();
    for gen in 1..GENERATIONS {
        for i in 0..ROWS {
            e.put("records", &i.to_be_bytes(), &(i ^ gen).to_le_bytes())
                .unwrap();
        }
        e.checkpoint().unwrap();
    }
    let pinned_scan_us = median_us(|| {
        assert_eq!(snap.scan_all("records").unwrap().len(), ROWS as usize);
    });
    let live_scan_us = median_us(|| {
        assert_eq!(e.scan_all("records").unwrap().len(), ROWS as usize);
    });
    let (pinned_entries, pinned_bytes) = resident(&dir);

    // --- Folded shape: pin released, full compaction collapses history.
    drop(snap);
    assert!(e.compact().unwrap());
    let folded_scan_us = median_us(|| {
        assert_eq!(e.scan_all("records").unwrap().len(), ROWS as usize);
    });
    let (folded_entries, folded_bytes) = resident(&dir);

    let out = serde_json::json!({
        "bench": "mvcc",
        "rows": ROWS,
        "versions_per_key_pinned": GENERATIONS,
        "scan_latency_us": {
            "seed_scan_all": seed_scan_us,
            "pinned_snapshot_under_churn": pinned_scan_us,
            "live_head_over_versions": live_scan_us,
            "live_head_after_fold": folded_scan_us,
        },
        "memory_amplification": {
            "versions_resident_entries": pinned_entries,
            "versions_resident_bytes": pinned_bytes,
            "folded_entries": folded_entries,
            "folded_bytes": folded_bytes,
            "entry_amplification": pinned_entries as f64 / folded_entries.max(1) as f64,
            "byte_amplification": pinned_bytes as f64 / folded_bytes.max(1) as f64,
        },
    });
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
