//! E3 — regenerate Figure 2: the prototype's detection panel over the
//! full-scale synthetic FNJV collection (11,898 records / 1,929 distinct
//! names / 134 outdated), and persist the updated names in the separate
//! reference table.

use std::sync::Arc;
use std::time::Instant;

use preserva_bench::row;
use preserva_bench::table;
use preserva_curation::outdated::{
    persist_updates, OutdatedNameDetector, NAME_REFS_TABLE, UPDATED_NAMES_TABLE,
};
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_storage::engine::{Engine, EngineOptions};
use preserva_storage::table::TableStore;
use preserva_taxonomy::service::{ColService, ServiceConfig};

fn main() {
    println!("== E3: Figure 2 — detection of outdated species names ==\n");
    let config = GeneratorConfig::default();
    let t0 = Instant::now();
    let collection = generator::generate(&config);
    println!(
        "generated synthetic FNJV collection in {:.2?} (seed {})",
        t0.elapsed(),
        config.seed
    );

    let service = ColService::new(
        collection.checklist.clone(),
        ServiceConfig {
            availability: 0.9, // the paper's annotated availability
            seed: config.seed ^ 0xC01,
            ..ServiceConfig::default()
        },
    );
    // 8 attempts ⇒ per-name hard-failure probability 1e-8: the whole 1929-
    // name sweep completes despite the 0.9 availability.
    let detector = OutdatedNameDetector::new(&service, 8);
    let t1 = Instant::now();
    let report = detector.check_collection(&collection.records);
    let elapsed = t1.elapsed();

    print!("{}", report.render_summary());
    println!(
        "\nwhole process took {elapsed:.2?} (paper: \"a few minutes\"; manual: days to months)"
    );
    let stats = service.stats();
    println!(
        "service: {} requests, {} transient failures absorbed by retries (observed availability {:.3})",
        stats.requests,
        stats.failures,
        stats.observed_availability()
    );

    // Persist the updates next to (never into) the originals.
    let dir = std::env::temp_dir().join(format!("preserva-exp-fig2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TableStore::new(Arc::new(
        Engine::open(&dir, EngineOptions::default()).unwrap(),
    ));
    let written = persist_updates(&store, &report).unwrap();
    println!(
        "\npersisted {} rows: {} in `{}`, {} in `{}` (originals untouched)",
        written,
        store.count(UPDATED_NAMES_TABLE).unwrap(),
        UPDATED_NAMES_TABLE,
        store.count(NAME_REFS_TABLE).unwrap(),
        NAME_REFS_TABLE
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\npaper vs reproduction:");
    let rows = vec![
        row!["quantity", "paper", "measured", "ok"],
        row![
            "records processed",
            11_898,
            report.records_processed,
            check(report.records_processed == 11_898)
        ],
        row![
            "distinct species names",
            1_929,
            report.distinct_names,
            check(report.distinct_names == 1_929)
        ],
        row![
            "outdated names",
            134,
            report.outdated.len(),
            check(report.outdated.len() == 134)
        ],
        row![
            "outdated fraction",
            "7%",
            format!("{:.1}%", report.outdated_fraction() * 100.0),
            check((report.outdated_fraction() - 0.07).abs() < 0.005)
        ],
        row![
            "accuracy",
            "93%",
            format!("{:.1}%", report.accuracy() * 100.0),
            check((report.accuracy() - 0.93).abs() < 0.005)
        ],
    ];
    print!("{}", table::render(&rows));
}

fn check(ok: bool) -> &'static str {
    if ok {
        "✔"
    } else {
        "✘"
    }
}
