//! Provenance-at-scale trajectory (`BENCH_provenance.json`):
//!
//! 1. **Capture throughput** — 64 concurrent run completions against a
//!    DURABLE store (`fsync: true`): one commit+fsync per run (the seed
//!    shape) vs the group-commit `CaptureBatcher` (one fsync amortized
//!    over the batch).
//! 2. **Stored bytes per run** — template-deduped graph rows (skeleton
//!    stored once, compact per-run bindings) vs the fully materialized
//!    OPM JSON the same graphs would occupy.
//! 3. **Cross-run query latency at 10k runs** — "runs that used source
//!    X" answered from the journal-fed index (one bounded range scan)
//!    vs the graph-by-graph load the seed had to do.
//!
//! Run with `cargo run --release -p preserva-bench --bin exp_provenance`
//! and redirect stdout to `BENCH_provenance.json` to record a datapoint.

use std::sync::Arc;
use std::time::{Duration, Instant};

use preserva_core::capture_batcher::{BatcherOptions, CaptureBatcher};
use preserva_core::prov_index::ProvIndex;
use preserva_core::provenance_manager::{ProvenanceManager, PROVENANCE_TABLE, TEMPLATES_TABLE};
use preserva_opm::serialize as opm_ser;
use preserva_storage::engine::{Engine, EngineOptions};
use preserva_storage::table::TableStore;
use preserva_storage::CompactionOptions;
use preserva_wfms::engine::{Engine as WfEngine, EngineConfig};
use preserva_wfms::model::{Processor, Workflow};
use preserva_wfms::services::{port, PortMap, ServiceRegistry};
use preserva_wfms::sink::ProvenanceSink;
use preserva_wfms::trace::ExecutionTrace;

/// Concurrency level of the capture-throughput comparison: one client
/// thread per in-flight run completion.
const THREADS: usize = 64;
/// Total runs each mode captures (THREADS stay saturated for several
/// waves so the figure reflects steady state, not startup).
const CAPTURE_RUNS: usize = 512;
/// Runs in the bytes-per-run comparison.
const DEDUP_RUNS: usize = 200;
/// Runs behind the query comparison.
const INDEXED_RUNS: usize = 10_000;
/// Query repetitions (the indexed path is microseconds; average it).
const QUERY_REPS: usize = 20;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("preserva-exp-prov-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(fsync: bool) -> EngineOptions {
    EngineOptions {
        fsync,
        compaction: CompactionOptions {
            background: false,
            max_runs_per_level: usize::MAX,
        },
        ..EngineOptions::default()
    }
}

fn manager_at(dir: &std::path::Path, fsync: bool) -> Arc<ProvenanceManager> {
    let store = Arc::new(TableStore::new(Arc::new(
        Engine::open(dir, options(fsync)).unwrap(),
    )));
    Arc::new(ProvenanceManager::new(store))
}

/// The paper's three-stage curation chain, the workflow all runs share.
fn workflow() -> (ServiceRegistry, Workflow) {
    let mut r = ServiceRegistry::new();
    r.register_fn("echo", |i: &PortMap| Ok(port("out", i["in"].clone())));
    let w = Workflow::new("prov-bench", "curation-chain")
        .with_input("specimen")
        .with_output("archived")
        .with_processor(Processor::service("lookup", "echo", &["in"], &["out"]))
        .with_processor(Processor::service("normalise", "echo", &["in"], &["out"]))
        .with_processor(Processor::service("archive", "echo", &["in"], &["out"]))
        .link_input("specimen", "lookup", "in")
        .link("lookup", "out", "normalise", "in")
        .link("normalise", "out", "archive", "in")
        .link_output("archive", "out", "archived");
    (r, w)
}

/// Pre-generate `n` finished runs (traces only — no storage involved).
fn completions(n: usize) -> Vec<(Workflow, ExecutionTrace)> {
    let (r, w) = workflow();
    let e = WfEngine::new(r, EngineConfig::default());
    (0..n)
        .map(|i| {
            let t = e
                .run(&w, &port("specimen", serde_json::json!(format!("s-{i}"))))
                .unwrap();
            (w.clone(), t)
        })
        .collect()
}

/// Submit every completion from `THREADS` client threads through `f`,
/// returning runs per second. Threads are spawned and parked on a
/// barrier before the clock starts, so the figure measures capture, not
/// thread creation.
fn submit_all(
    runs: &[(Workflow, ExecutionTrace)],
    f: impl Fn(&Workflow, &ExecutionTrace) + Sync,
) -> f64 {
    let chunks: Vec<_> = runs.chunks(runs.len().div_ceil(THREADS)).collect();
    let barrier = std::sync::Barrier::new(chunks.len() + 1);
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let (f, barrier) = (&f, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for (w, t) in *chunk {
                        f(w, t);
                    }
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        elapsed = started.elapsed().as_secs_f64();
    });
    runs.len() as f64 / elapsed
}

/// Raw fsync latency of the bench medium (write 256 bytes, fsync, 100x).
/// Interprets the capture numbers: group commit amortizes exactly this
/// cost, so on media where it dominates capture CPU the wall-clock
/// speedup approaches the fsync amortization factor; on media with
/// sub-CPU fsync (NVMe, battery-backed caches) capture stays CPU-bound
/// and the speedup ceiling is (cpu + fsync) / cpu.
fn probe_fsync_ms() -> f64 {
    use std::io::Write;
    let path = std::env::temp_dir().join(format!("preserva-fsync-probe-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    let n = 100;
    let started = Instant::now();
    for _ in 0..n {
        f.write_all(&[0xAB; 256]).unwrap();
        f.sync_data().unwrap();
    }
    let ms = started.elapsed().as_secs_f64() * 1000.0 / n as f64;
    std::fs::remove_file(&path).ok();
    ms
}

fn main() {
    let fsync_ms = probe_fsync_ms();

    // 1. Capture throughput, durable store.
    let runs = completions(CAPTURE_RUNS);

    // CPU floor of the capture pipeline: sequential, no fsync. Neither
    // mode can beat this; it bounds the batched path on fast-fsync hosts.
    let dir = tmpdir("cpu-floor");
    let capture_cpu_ms = {
        let pm = manager_at(&dir, false);
        let started = Instant::now();
        for (w, t) in &runs {
            pm.capture(w, t).unwrap();
        }
        started.elapsed().as_secs_f64() * 1000.0 / runs.len() as f64
    };
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmpdir("unbatched");
    let unbatched = {
        let pm = manager_at(&dir, true);
        submit_all(&runs, |w, t| {
            pm.capture(w, t).unwrap();
        })
    };
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmpdir("batched");
    let (batched, group_commits) = {
        let pm = manager_at(&dir, true);
        let store = pm.store().clone();
        let batcher = CaptureBatcher::with_options(
            pm.clone(),
            // No linger: with every client thread blocked on a verdict,
            // waiting cannot grow the batch — runs pile up naturally
            // while the previous commit fsyncs (classic group commit).
            BatcherOptions {
                max_batch: THREADS,
                linger: Duration::ZERO,
            },
        );
        let before = store.engine().stats().commits;
        let rate = submit_all(&runs, |w, t| {
            batcher.record(w, t).unwrap();
        });
        (rate, store.engine().stats().commits - before)
    };
    std::fs::remove_dir_all(&dir).ok();

    // 2. Stored bytes per run, deduped vs materialized.
    let dir = tmpdir("dedup");
    let dedup = {
        let pm = manager_at(&dir, false);
        let store = pm.store().clone();
        let many = completions(DEDUP_RUNS);
        for chunk in many.chunks(64) {
            for r in pm.capture_batch(chunk).unwrap() {
                r.unwrap();
            }
        }
        let graph_rows: usize = store
            .scan(PROVENANCE_TABLE)
            .unwrap()
            .iter()
            .map(|(_, v)| v.len())
            .sum();
        let template_rows: usize = store
            .scan(TEMPLATES_TABLE)
            .unwrap()
            .iter()
            .map(|(_, v)| v.len())
            .sum();
        let materialized: usize = many
            .iter()
            .map(|(_, t)| opm_ser::to_json(&pm.load_graph(&t.run_id).unwrap()).len())
            .sum();
        serde_json::json!({
            "runs": DEDUP_RUNS,
            "templates_stored": store.scan(TEMPLATES_TABLE).unwrap().len(),
            "deduped_bytes_per_run": (graph_rows + template_rows) as f64 / DEDUP_RUNS as f64,
            "materialized_bytes_per_run": materialized as f64 / DEDUP_RUNS as f64,
            "dedup_ratio": materialized as f64 / (graph_rows + template_rows) as f64,
        })
    };
    std::fs::remove_dir_all(&dir).ok();

    // 3. Indexed vs scan cross-run queries at 10k runs.
    let dir = tmpdir("query");
    let query = {
        let pm = manager_at(&dir, false);
        let many = completions(INDEXED_RUNS);
        for chunk in many.chunks(256) {
            for r in pm.capture_batch(chunk).unwrap() {
                r.unwrap();
            }
        }
        let idx = ProvIndex::new(pm.clone());
        let refresh_started = Instant::now();
        let out = idx.refresh().unwrap();
        let refresh_secs = refresh_started.elapsed().as_secs_f64();
        assert_eq!(out.runs_indexed, INDEXED_RUNS);

        let key = "a:*:in:specimen";
        let indexed_secs = {
            let started = Instant::now();
            for _ in 0..QUERY_REPS {
                assert_eq!(idx.runs_using_artifact(key, 0).unwrap().len(), INDEXED_RUNS);
            }
            started.elapsed().as_secs_f64() / QUERY_REPS as f64
        };
        let scan_secs = {
            let started = Instant::now();
            assert_eq!(
                idx.scan_runs_using_artifact(key).unwrap().len(),
                INDEXED_RUNS
            );
            started.elapsed().as_secs_f64()
        };
        serde_json::json!({
            "runs": INDEXED_RUNS,
            "artifact": key,
            "index_refresh_seconds": refresh_secs,
            "indexed_query_seconds": indexed_secs,
            "graph_scan_query_seconds": scan_secs,
            "index_speedup": scan_secs / indexed_secs,
        })
    };
    std::fs::remove_dir_all(&dir).ok();

    let out = serde_json::json!({
        "bench": "provenance",
        "host_cores": std::thread::available_parallelism().map_or(0, |p| p.get()),
        "capture_durable": {
            "concurrent_clients": THREADS,
            "runs_captured": CAPTURE_RUNS,
                        "runs_per_second": {
                "commit_per_capture": unbatched,
                "group_commit_batcher": batched,
            },
            "batcher_storage_commits": group_commits,
            "batch_speedup": batched / unbatched,
            // One fsync per run vs one per group commit: the durable-
            // media work the batcher removes, independent of host CPU.
            "fsync_amortization": CAPTURE_RUNS as f64 / group_commits as f64,
            "host_fsync_ms": fsync_ms,
            "capture_cpu_ms_per_run": capture_cpu_ms,
            // Wall-clock ceiling on THIS host: batching can remove the
            // fsync share but never the per-run capture CPU.
            "host_speedup_ceiling": (capture_cpu_ms + fsync_ms) / capture_cpu_ms,
        },
        "template_dedup": dedup,
        "cross_run_query": query,
    });
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
}
