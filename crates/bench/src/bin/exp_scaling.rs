//! E6 — the timing claim: "The whole process takes a few minutes. Before
//! … such kind of verification was performed manually by biologists,
//! taking from days to months."
//!
//! We sweep collection size and measure the automated check's wall time
//! and throughput; the shape to reproduce is (a) comfortably inside
//! "minutes" at the paper's scale and (b) roughly linear in the number of
//! distinct names.

use std::time::Instant;

use preserva_bench::row;
use preserva_bench::table;
use preserva_curation::outdated::OutdatedNameDetector;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_taxonomy::service::{ColService, ServiceConfig};

fn main() {
    println!("== E6: scaling of the outdated-name check ==\n");
    let sweeps: [(usize, usize); 5] = [
        (1_000, 300),
        (3_000, 700),
        (11_898, 1_929), // the paper's scale
        (40_000, 3_000),
        (120_000, 4_500),
    ];
    let mut rows = vec![row![
        "records",
        "distinct names",
        "generate",
        "check",
        "names/s",
        "virtual service time"
    ]];
    let mut per_name: Vec<f64> = Vec::new();
    for (records, distinct) in sweeps {
        let config = GeneratorConfig {
            records,
            distinct_species: distinct,
            outdated_names: (distinct as f64 * 0.07) as usize,
            ..GeneratorConfig::default()
        };
        let t0 = Instant::now();
        let collection = generator::generate(&config);
        let gen_time = t0.elapsed();
        let service = ColService::new(
            collection.checklist.clone(),
            ServiceConfig {
                availability: 0.9,
                seed: 1,
                ..ServiceConfig::default()
            },
        );
        let t1 = Instant::now();
        let report = OutdatedNameDetector::new(&service, 8).check_collection(&collection.records);
        let check = t1.elapsed();
        // The check is O(records + names); normalize by records (the
        // dominant term across this sweep) for the linearity check.
        per_name.push(check.as_secs_f64() / records as f64);
        rows.push(row![
            records,
            distinct,
            format!("{gen_time:.2?}"),
            format!("{check:.2?}"),
            format!("{:.0}", report.distinct_names as f64 / check.as_secs_f64()),
            // What the paper experienced over the network: ~120 ms/request.
            format!(
                "{:.1} min",
                service.stats().virtual_latency_ms as f64 / 60_000.0
            )
        ]);
    }
    print!("{}", table::render(&rows));
    println!(
        "\nThe \"virtual service time\" column models the paper's real deployment \
         (~120 ms per Catalogue-of-Life request): minutes at the paper's scale,\n\
         versus the manual baseline of days to months per species sweep."
    );

    // Linearity check: per-name cost stays within an order of magnitude
    // across a 15x sweep (well below quadratic growth).
    let min = per_name.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_name.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nper-record cost ranges {:.1}–{:.1} µs: ratio {:.1}x across a 120x sweep {}",
        min * 1e6,
        max * 1e6,
        max / min,
        if max / min < 20.0 {
            "✔ (≈linear)"
        } else {
            "✘"
        }
    );
}
