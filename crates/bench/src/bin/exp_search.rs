//! Search-layer datapoint (`BENCH_search.json`): n-gram-indexed fuzzy
//! matching vs the linear `best_match` scan, at the FNJV checklist
//! scale (~1.9k names) and at 100k synthetic names, plus one
//! journal-fed persistent-index run.
//!
//! The headline claim: the indexed path scores only the count-filtered
//! candidates yet returns the BYTE-IDENTICAL winner of the full linear
//! scan, and at 100k names it is ≥10× faster. Every query's winner is
//! asserted equal across both paths before any timing is reported.
//!
//! Run with `cargo run --release -p preserva-bench --bin exp_search`
//! and redirect stdout to `BENCH_search.json` to record a datapoint.

use std::time::Instant;

use preserva_core::collection::{Collection, CollectionOptions};
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_taxonomy::fuzzy;
use preserva_taxonomy::ngram::NGramIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DISTANCE: usize = 2;
const QUERIES: usize = 20;
const ITERS: u32 = 5;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("preserva-exp-search-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Median wall-clock of `ITERS` runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// A plausible binomial: capitalized genus + lowercase epithet, both
/// built from alternating consonant/vowel syllables so the n-gram
/// postings see natural-language-like sharing.
fn synthetic_name(rng: &mut StdRng) -> String {
    const C: &[u8] = b"bcdfghlmnprstv";
    const V: &[u8] = b"aeiou";
    fn word(syllables: usize, rng: &mut StdRng) -> String {
        let mut w = String::new();
        for _ in 0..syllables {
            w.push(C[rng.gen_range(0..C.len())] as char);
            w.push(V[rng.gen_range(0..V.len())] as char);
        }
        w
    }
    let genus_len = rng.gen_range(2..5usize);
    let genus = word(genus_len, rng);
    let epithet_len = rng.gen_range(2..6usize);
    let epithet = word(epithet_len, rng);
    let mut name = String::new();
    name.push(genus.as_bytes()[0].to_ascii_uppercase() as char);
    name.push_str(&genus[1..]);
    name.push(' ');
    name.push_str(&epithet);
    name
}

/// Inject one adjacent transposition and one substitution into `name`
/// (distance ≤ 2 from the original, matching the DISTANCE budget).
fn misspell(name: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    let inner: Vec<usize> = (1..chars.len().saturating_sub(1))
        .filter(|&i| chars[i] != ' ' && chars[i + 1] != ' ')
        .collect();
    if let Some(&i) = inner.get(rng.gen_range(0..inner.len().max(1)) % inner.len().max(1)) {
        chars.swap(i, i + 1);
    }
    if let Some(&i) = inner.get(rng.gen_range(0..inner.len().max(1)) % inner.len().max(1)) {
        chars[i] = if chars[i] == 'a' { 'e' } else { 'a' };
    }
    chars.into_iter().collect()
}

/// Time both paths over the same queries, asserting identical winners.
fn compare(label: &str, names: &[String], rng: &mut StdRng) -> serde_json::Value {
    let build = Instant::now();
    let index = NGramIndex::build(names.iter().cloned());
    let build_ms = build.elapsed().as_secs_f64() * 1e3;

    let queries: Vec<String> = (0..QUERIES)
        .map(|_| misspell(&names[rng.gen_range(0..names.len())], rng))
        .collect();

    // Correctness gate before any timing: both paths agree per query.
    let mut candidates_scored = 0usize;
    let mut matched = 0usize;
    for q in &queries {
        let linear = fuzzy::best_match(q, names.iter().map(String::as_str), DISTANCE)
            .map(|m| (m.candidate.to_string(), m.distance));
        let indexed = index
            .best_match(q, DISTANCE)
            .map(|m| (m.candidate.to_string(), m.distance));
        assert_eq!(
            linear, indexed,
            "indexed winner must equal linear winner for {q:?}"
        );
        candidates_scored += index.candidates(q, DISTANCE).len();
        matched += usize::from(indexed.is_some());
    }

    let linear_us = median_us(|| {
        for q in &queries {
            let _ = fuzzy::best_match(q, names.iter().map(String::as_str), DISTANCE);
        }
    }) / QUERIES as f64;
    let indexed_us = median_us(|| {
        for q in &queries {
            let _ = index.best_match(q, DISTANCE);
        }
    }) / QUERIES as f64;
    let speedup = linear_us / indexed_us;
    eprintln!(
        "{label}: {} names, linear {linear_us:.1}us/query, indexed {indexed_us:.1}us/query \
         ({speedup:.1}x, {:.1} candidates scored/query, {matched}/{QUERIES} matched)",
        names.len(),
        candidates_scored as f64 / QUERIES as f64,
    );
    serde_json::json!({
        "names": names.len(),
        "queries": QUERIES,
        "distance_budget": DISTANCE,
        "index_build_ms": build_ms,
        "linear_us_per_query": linear_us,
        "indexed_us_per_query": indexed_us,
        "speedup": speedup,
        "mean_candidates_scored": candidates_scored as f64 / QUERIES as f64,
        "queries_matched": matched,
        "identical_winners": true, // asserted above, per query
    })
}

/// One persistent-index datapoint: ingest through the catalog, drain the
/// journal into the `__search:` tables, then answer a fuzzy query off a
/// pinned snapshot — again asserting the winner equals the linear scan
/// over every indexed name.
fn persistent() -> serde_json::Value {
    let dir = tmpdir("coll");
    let coll = Collection::open(&dir, CollectionOptions::default()).unwrap();
    let config = GeneratorConfig {
        records: 2_000,
        distinct_species: 400,
        outdated_names: 0,
        seed: 77,
        ..GeneratorConfig::default()
    };
    let collection = generator::generate(&config);
    let ingest = Instant::now();
    for r in &collection.records {
        coll.catalog().insert(r).unwrap();
    }
    let ingest_ms = ingest.elapsed().as_secs_f64() * 1e3;

    let lag_before = coll.search().journal_lag().unwrap();
    let t = Instant::now();
    let outcome = coll.search().run().unwrap();
    let index_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(coll.search().journal_lag().unwrap(), 0);

    let reader = coll.search().reader();
    let snap = coll.store().snapshot();
    let names = reader.names(&snap).unwrap();
    let query = misspell(&names[names.len() / 2], &mut StdRng::seed_from_u64(7));
    let hit = reader.fuzzy(&snap, &query, DISTANCE).unwrap().unwrap();
    let linear = fuzzy::best_match(&query, names.iter().map(String::as_str), DISTANCE).unwrap();
    assert_eq!(hit.name, linear.candidate);
    assert_eq!(hit.distance, linear.distance);
    let query_us = median_us(|| {
        let _ = reader.fuzzy(&snap, &query, DISTANCE).unwrap();
    });
    drop(snap);
    eprintln!(
        "persistent: {} records -> {} journal entries in {index_ms:.0}ms, \
         fuzzy query {query_us:.0}us over {} names ({} candidates scored)",
        collection.records.len(),
        outcome.entries_consumed,
        names.len(),
        hit.candidates_scored,
    );
    let out = serde_json::json!({
        "records": collection.records.len(),
        "ingest_ms": ingest_ms,
        "journal_lag_before_run": lag_before,
        "entries_consumed": outcome.entries_consumed,
        "docs_indexed": outcome.docs_indexed,
        "index_run_ms": index_ms,
        "indexed_names": names.len(),
        "fuzzy_query_us": query_us,
        "candidates_scored": hit.candidates_scored,
        "winner_matches_linear_scan": true, // asserted above
    });
    coll.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5EA7C4);

    // Scale 1: the real generated checklist (FNJV-shaped, ~1.9k names).
    let config = GeneratorConfig {
        records: 1_900,
        distinct_species: 1_900,
        outdated_names: 0,
        seed: 11,
        ..GeneratorConfig::default()
    };
    let checklist_names: Vec<String> = generator::generate(&config)
        .checklist
        .backbone
        .names()
        .map(|n| n.canonical())
        .collect();
    let checklist = compare("checklist", &checklist_names, &mut rng);

    // Scale 2: 100k synthetic names (deduped; the generator overshoots).
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < 100_000 {
        seen.insert(synthetic_name(&mut rng));
    }
    let synthetic: Vec<String> = seen.into_iter().collect();
    let large = compare("synthetic-100k", &synthetic, &mut rng);

    let speedup = large["speedup"].as_f64().unwrap();
    assert!(
        speedup >= 10.0,
        "indexed fuzzy matching must be >=10x the linear scan at 100k names (got {speedup:.1}x)"
    );

    let out = serde_json::json!({
        "experiment": "search",
        "fuzzy": {
            "checklist_1_9k": checklist,
            "synthetic_100k": large,
        },
        "persistent_index": persistent(),
        "check": "indexed winner identical to linear best_match on every query; >=10x at 100k names",
    });
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
}
