//! A4 — quality decay over time, with and without periodic curation.
//!
//! "Knowledge about the world may evolve, and quality decrease with time,
//! hampering long term preservation" (abstract). We freeze a collection
//! annotated against the 1965 checklist and re-assess its species-name
//! accuracy against every subsequent edition. Without curation, accuracy
//! decays monotonically; with curation after each edition (adopting the
//! replacements the detector proposes), accuracy returns to 100%. The
//! analytic decay model from `preserva-quality` is printed alongside.

use std::collections::BTreeMap;

use preserva_bench::row;
use preserva_bench::table;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_quality::decay;
use preserva_taxonomy::name::ScientificName;

fn main() {
    println!("== A4: quality decay across checklist editions ==\n");
    let config = GeneratorConfig {
        records: 6_000,
        distinct_species: 1_000,
        outdated_names: 70, // 7% by the final edition
        seed: 13,
        ..GeneratorConfig::default()
    };
    let collection = generator::generate(&config);
    let checklist = &collection.checklist;

    // The names as annotated originally (ground truth set).
    let original: Vec<ScientificName> = collection.species_names.clone();
    let first_year = checklist.editions()[0].year;

    let mut rows = vec![row![
        "edition year",
        "accuracy (no curation)",
        "accuracy (curated each edition)",
        "analytic model"
    ]];
    // Curated state: name the collection would hold after adopting every
    // proposed replacement up to the current edition.
    let mut curated: BTreeMap<ScientificName, ScientificName> =
        original.iter().map(|n| (n.clone(), n.clone())).collect();
    let mut uncurated_curve = Vec::new();
    // Annual churn implied by the planted totals, for the analytic model.
    let total_years = checklist.editions().last().unwrap().year - first_year;
    let churn = 1.0
        - (1.0 - config.outdated_names as f64 / config.distinct_species as f64)
            .powf(1.0 / total_years as f64);

    for edition in checklist.editions() {
        let current_of = |n: &ScientificName| edition.status(n).is_current();
        let acc_no_curation =
            original.iter().filter(|n| current_of(n)).count() as f64 / original.len() as f64;
        uncurated_curve.push(acc_no_curation);

        // Curate: adopt replacements valid in this edition.
        for held in curated.values_mut() {
            if !current_of(held) {
                if let Some(replacement) = edition.resolve_accepted(held) {
                    *held = replacement;
                }
            }
        }
        let acc_curated =
            curated.values().filter(|n| current_of(n)).count() as f64 / curated.len() as f64;

        let age = (edition.year - first_year) as f64;
        let model = decay::expected_name_accuracy(age, churn);
        rows.push(row![
            edition.year,
            format!("{:.1}%", acc_no_curation * 100.0),
            format!("{:.1}%", acc_curated * 100.0),
            format!("{:.1}%", model * 100.0)
        ]);
        // Curation always restores full accuracy here because every
        // planted change is a rename with a valid replacement.
        assert!(
            acc_curated > 0.999,
            "curation failed to restore accuracy at {}",
            edition.year
        );
    }
    print!("{}", table::render(&rows));

    // Monotone decay without curation.
    assert!(
        uncurated_curve.windows(2).all(|w| w[1] <= w[0]),
        "uncurated accuracy must decay monotonically"
    );
    let last = *uncurated_curve.last().unwrap();
    println!(
        "\nfinal uncurated accuracy {:.1}% (planted churn ⇒ {:.1}%) — monotone decay ✔, curation restores 100% ✔",
        last * 100.0,
        (1.0 - config.outdated_names as f64 / config.distinct_species as f64) * 100.0
    );
    println!(
        "re-curation due (analytic, threshold 93%): every {:.0} years at this churn rate",
        decay::years_until_recuration(churn, 0.93).unwrap_or(f64::INFINITY)
    );
}
