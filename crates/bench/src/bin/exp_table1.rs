//! E1 — regenerate Table I: the four DPHEP preservation models.

fn main() {
    println!("== E1: Table I — preservation models for scientific data ==\n");
    print!("{}", preserva_core::preservation::render_table1());
}
