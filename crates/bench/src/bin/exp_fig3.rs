//! E4 — regenerate Figure 3 + §IV-C: the architecture instance running
//! the case-study workflow end to end, publishing both result formats —
//! the workflow trace and the computed quality attributes (accuracy ≈93%,
//! reputation 1.0, availability 0.9).

use std::collections::BTreeMap;

use serde_json::Value;

use preserva_bench::case_study::{records_to_json, setup_case_study, WORKFLOW_ID};
use preserva_core::roles::EndUser;
use preserva_fnjv::config::GeneratorConfig;
use preserva_opm::inference;
use preserva_quality::dimension::Dimension;
use preserva_wfms::services::port;

fn main() {
    println!("== E4: Figure 3 — architecture instance for the case study ==\n");
    let dir = std::env::temp_dir().join(format!("preserva-exp-fig3-{}", std::process::id()));
    let config = GeneratorConfig::default();
    let mut cs = setup_case_study(&dir, &config, 0.9, 8);

    // Step 1 (paper): experts added quality metadata to the workflow —
    // done inside setup via the Workflow Adapter.
    println!(
        "step 1: Workflow Adapter attached Q(reputation)=1, Q(availability)=0.9 to Catalog_of_life"
    );

    // Step 2–3: the workflow receives FNJV sound metadata and checks names
    // against the Catalogue of Life.
    cs.architecture
        .save_records(&cs.collection.records)
        .expect("records persist");
    let input = port("sound_metadata", records_to_json(&cs.collection.records));
    let trace = cs
        .architecture
        .run_workflow(WORKFLOW_ID, &input)
        .expect("case-study run succeeds");
    println!(
        "step 2-3: workflow `{}` ran as {} in {:.2?} ({} retries absorbed)",
        trace.workflow_name, trace.run_id, trace.elapsed, trace.total_retries
    );

    // Step 4: the Provenance Manager stored provenance.
    let graph = cs
        .architecture
        .provenance()
        .load_graph(&trace.run_id)
        .expect("provenance stored");
    let closure = inference::derivation_closure(&graph);
    println!(
        "step 4: Provenance Manager stored OPM graph: {} artifacts, {} processes, {} agents, {} edges ({} derivation-closure pairs)",
        graph.artifacts.len(),
        graph.processes.len(),
        graph.agents.len(),
        graph.edges.len(),
        closure.values().map(|s| s.len()).sum::<usize>(),
    );

    // Step 5: the workflow output (format i: the trace).
    let summary = &trace.workflow_outputs["summary"];
    println!(
        "step 5: workflow output — {} records, {} distinct names, {} outdated",
        summary["records_processed"], summary["distinct_names"], summary["outdated"]
    );
    println!("\nworkflow trace (format i):");
    for p in trace.completed_processors() {
        println!("  {:<22} attempts={}", p, trace.attempts_for(p));
    }

    // Data Quality Manager: computed quality attributes (format ii).
    let user = EndUser::new("Dr. Toledo", "IB/Unicamp");
    let mut facts = BTreeMap::new();
    facts.insert(
        "names_checked".to_string(),
        summary["checked"].as_f64().unwrap_or(0.0),
    );
    facts.insert(
        "names_correct".to_string(),
        summary["current"].as_f64().unwrap_or(0.0),
    );
    let report = cs
        .architecture
        .assess_run(&user, None, "fnjv-species-names", &trace.run_id, &facts)
        .expect("assessment succeeds");
    println!("\ncomputed quality attributes (format ii):");
    print!("{}", report.render_text());

    let accuracy = report.score(&Dimension::accuracy()).unwrap();
    let reputation = report.score(&Dimension::reputation()).unwrap();
    let availability = report.score(&Dimension::availability()).unwrap();
    println!("paper vs reproduction:");
    println!(
        "  accuracy      93%   {:.1}%  {}",
        accuracy * 100.0,
        ok((accuracy - 0.93).abs() < 0.01)
    );
    println!(
        "  reputation    1.0   {reputation:.2}   {}",
        ok((reputation - 1.0).abs() < 1e-9)
    );
    println!(
        "  availability  0.9   {availability:.2}   {}",
        ok((availability - 0.9).abs() < 1e-9)
    );

    // Cross-check: the reported outdated count matches the planted truth.
    let outdated = summary["outdated"].as_u64().unwrap();
    println!(
        "  outdated      134   {outdated}    {}",
        ok(outdated == cs.collection.planted_outdated.len() as u64 && outdated == 134)
    );
    let updates = summary["updates"].as_array().map(Vec::len).unwrap_or(0);
    assert_eq!(updates as u64, outdated);

    std::fs::remove_dir_all(&dir).ok();
}

fn ok(b: bool) -> &'static str {
    if b {
        "✔"
    } else {
        "✘"
    }
}

#[allow(dead_code)]
fn as_f64(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}
