//! Server datapoint (`BENCH_server.json`): request throughput and tail
//! latency of the multi-tenant HTTP front end, plus change-feed fan-out
//! — N subscribers each replaying the full journal concurrently.
//!
//! Run with `cargo run --release -p preserva-bench --bin exp_server` and
//! redirect stdout to `BENCH_server.json` to record a datapoint.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use preserva_server::tenants::{Quota, TenantConfig};
use preserva_server::{Server, ServerConfig};

const RECORDS: usize = 2_000;
const GET_THREADS: usize = 4;
const GETS_PER_THREAD: usize = 2_000;
const FEED_SUBSCRIBERS: usize = 8;

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("preserva-exp-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A keep-alive client connection speaking just enough HTTP/1.1.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// One request/response exchange; returns (status, body).
    fn call(&mut self, method: &str, path: &str, key: &str, body: Option<&str>) -> (u16, String) {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: b\r\nAuthorization: Bearer {key}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        self.writer.flush().unwrap();
        read_sized_reply(&mut self.reader)
    }
}

fn read_sized_reply(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf).unwrap();
    (status, String::from_utf8_lossy(&buf).into_owned())
}

/// Stream the feed over one connection, counting `id:` lines until the
/// chunked body terminates.
fn replay_feed(addr: std::net::SocketAddr, key: &str, max_events: usize) -> usize {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "GET /v1/bench/feed?cursor=0&max_events={max_events} HTTP/1.1\r\nHost: b\r\nAuthorization: Bearer bench-key\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let _ = key;
    let mut reader = BufReader::new(stream);
    // Skip the response head.
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    // Chunked body: count event ids until the zero chunk.
    let mut events = 0usize;
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line).is_err() {
            break;
        }
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        let mut buf = vec![0u8; size + 2];
        reader.read_exact(&mut buf).unwrap();
        events += String::from_utf8_lossy(&buf[..size])
            .lines()
            .filter(|l| l.starts_with("id: "))
            .count();
    }
    events
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let root = tmpdir();
    let mut config = ServerConfig::new("127.0.0.1:0", &root).tenant(TenantConfig {
        name: "bench".into(),
        api_key: "bench-key".into(),
        quota: Quota {
            max_subscribers: FEED_SUBSCRIBERS + 2,
            ..Quota::default()
        },
    });
    config.workers = GET_THREADS + FEED_SUBSCRIBERS + 2;
    config.feed_poll = Duration::from_millis(20);
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    // --- Ingest through the server (PUT throughput falls out for free).
    let mut client = Client::connect(addr);
    let put_start = Instant::now();
    for i in 0..RECORDS {
        let body = serde_json::json!({
            "id": format!("FNJV-{i:06}"),
            "fields": { "species": { "Text": format!("species-{}", i % 200) } }
        })
        .to_string();
        let (status, _) = client.call("PUT", "/v1/bench/records", "bench-key", Some(&body));
        assert_eq!(status, 201);
    }
    let put_secs = put_start.elapsed().as_secs_f64();

    // --- GET throughput + latency: keep-alive clients hammering point
    // reads of random-ish ids.
    let get_start = Instant::now();
    let handles: Vec<_> = (0..GET_THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut lat_us = Vec::with_capacity(GETS_PER_THREAD);
                for i in 0..GETS_PER_THREAD {
                    let id = (i * 7919 + t * 104729) % RECORDS;
                    let started = Instant::now();
                    let (status, _) = client.call(
                        "GET",
                        &format!("/v1/bench/records/FNJV-{id:06}"),
                        "bench-key",
                        None,
                    );
                    lat_us.push(started.elapsed().as_secs_f64() * 1e6);
                    assert_eq!(status, 200);
                }
                lat_us
            })
        })
        .collect();
    let mut lat_us: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let get_secs = get_start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let total_gets = GET_THREADS * GETS_PER_THREAD;

    // --- Feed fan-out: every subscriber replays the whole journal
    // concurrently.
    let head = {
        let mut c = Client::connect(addr);
        let (_, body) = c.call("GET", "/v1/bench/stats", "bench-key", None);
        serde_json::from_str::<serde_json::Value>(&body).unwrap()["journal_head"]
            .as_u64()
            .unwrap() as usize
    };
    let fan_start = Instant::now();
    let subs: Vec<_> = (0..FEED_SUBSCRIBERS)
        .map(|_| std::thread::spawn(move || replay_feed(addr, "bench-key", head)))
        .collect();
    let delivered: usize = subs.into_iter().map(|h| h.join().unwrap()).sum();
    let fan_secs = fan_start.elapsed().as_secs_f64();
    assert_eq!(
        delivered,
        head * FEED_SUBSCRIBERS,
        "every subscriber replays every event"
    );

    server.shutdown().unwrap();
    std::fs::remove_dir_all(&root).ok();

    let out = serde_json::json!({
        "bench": "server",
        "records": RECORDS,
        "put": {
            "requests": RECORDS,
            "throughput_rps": RECORDS as f64 / put_secs,
        },
        "get": {
            "requests": total_gets,
            "threads": GET_THREADS,
            "throughput_rps": total_gets as f64 / get_secs,
            "p50_us": percentile(&lat_us, 0.50),
            "p99_us": percentile(&lat_us, 0.99),
        },
        "feed_fanout": {
            "subscribers": FEED_SUBSCRIBERS,
            "events_each": head,
            "total_events": delivered,
            "wall_secs": fan_secs,
            "aggregate_events_per_sec": delivered as f64 / fan_secs,
        },
    });
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
}
