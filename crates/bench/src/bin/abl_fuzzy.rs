//! A2 — fuzzy matching on/off under injected misspellings.
//!
//! Legacy digitization introduces typos. With fuzzy matching enabled, the
//! service turns would-be "not found" names into actionable misspelling
//! suggestions. Expected shape: with fuzzy ON, suggestions ≈ injected
//! typos and not-found ≈ 0; with fuzzy OFF, everything lands in
//! not-found.

use preserva_bench::row;
use preserva_bench::table;
use preserva_curation::outdated::OutdatedNameDetector;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_taxonomy::service::{ColService, ServiceConfig};

fn main() {
    println!("== A2: fuzzy matching vs injected misspellings ==\n");
    let mut rows = vec![row![
        "typo rate",
        "distinct parsed names",
        "fuzzy: suggestions",
        "fuzzy: not-found",
        "exact-only: not-found"
    ]];
    for typo_rate in [0.0, 0.02, 0.05, 0.10] {
        let config = GeneratorConfig {
            records: 4_000,
            distinct_species: 800,
            outdated_names: 56,
            typo_rate,
            seed: 404,
            ..GeneratorConfig::default()
        };
        let collection = generator::generate(&config);

        let fuzzy_service = ColService::new(
            collection.checklist.clone(),
            ServiceConfig {
                availability: 1.0,
                fuzzy_distance: 2,
                ..ServiceConfig::default()
            },
        );
        let exact_service = ColService::new(
            collection.checklist.clone(),
            ServiceConfig {
                availability: 1.0,
                fuzzy_distance: 0,
                ..ServiceConfig::default()
            },
        );
        let fuzzy =
            OutdatedNameDetector::new(&fuzzy_service, 1).check_collection(&collection.records);
        let exact =
            OutdatedNameDetector::new(&exact_service, 1).check_collection(&collection.records);
        rows.push(row![
            format!("{:.0}%", typo_rate * 100.0),
            fuzzy.distinct_names,
            fuzzy.misspelled.len(),
            fuzzy.not_found.len(),
            exact.not_found.len()
        ]);
        // Structural checks per sweep point.
        assert_eq!(fuzzy.distinct_names, exact.distinct_names);
        assert_eq!(
            fuzzy.misspelled.len() + fuzzy.not_found.len(),
            exact.not_found.len(),
            "fuzzy reclassifies exactly the exact-only misses"
        );
        if typo_rate == 0.0 {
            assert_eq!(exact.not_found.len(), 0);
        } else {
            assert!(!fuzzy.misspelled.is_empty());
            // Injected typos are single transpositions → distance 1, all
            // recoverable.
            assert!(
                fuzzy.misspelled.len() as f64 >= 0.9 * exact.not_found.len() as f64,
                "fuzzy should recover nearly all injected typos"
            );
        }
    }
    print!("{}", table::render(&rows));
    println!("\n[check] fuzzy matching recovers ≥90% of injected misspellings; exact-only loses them all ✔");
}
