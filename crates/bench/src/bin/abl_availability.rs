//! A3 — service availability vs retry policy.
//!
//! The paper annotates the Catalogue of Life `Q(availability): 0.9`
//! "since there are several connection problems". This ablation sweeps
//! availability and contrasts a no-retry client with a 3-attempt retry
//! policy. Expected shape: unchecked names grow as availability falls;
//! retries push the curve down by an order of magnitude; the observed
//! availability the trace reports matches the configured value.

use preserva_bench::row;
use preserva_bench::table;
use preserva_curation::outdated::OutdatedNameDetector;
use preserva_fnjv::config::GeneratorConfig;
use preserva_fnjv::generator;
use preserva_taxonomy::service::{ColService, ServiceConfig};

fn main() {
    println!("== A3: availability faults vs retry policy ==\n");
    let config = GeneratorConfig {
        records: 4_000,
        distinct_species: 800,
        outdated_names: 56,
        seed: 7,
        ..GeneratorConfig::default()
    };
    let collection = generator::generate(&config);

    let mut rows = vec![row![
        "availability",
        "no retries: unchecked",
        "3 attempts: unchecked",
        "observed availability",
        "retries spent"
    ]];
    let mut no_retry_curve = Vec::new();
    let mut retry_curve = Vec::new();
    for availability in [1.0, 0.95, 0.9, 0.8, 0.65, 0.5] {
        let svc1 = ColService::new(
            collection.checklist.clone(),
            ServiceConfig {
                availability,
                seed: 99,
                ..ServiceConfig::default()
            },
        );
        let r1 = OutdatedNameDetector::new(&svc1, 1).check_collection(&collection.records);
        let svc3 = ColService::new(
            collection.checklist.clone(),
            ServiceConfig {
                availability,
                seed: 99,
                ..ServiceConfig::default()
            },
        );
        let r3 = OutdatedNameDetector::new(&svc3, 3).check_collection(&collection.records);
        no_retry_curve.push(r1.unavailable.len());
        retry_curve.push(r3.unavailable.len());
        rows.push(row![
            format!("{availability:.2}"),
            format!(
                "{} ({:.1}%)",
                r1.unavailable.len(),
                r1.unavailable.len() as f64 / r1.distinct_names as f64 * 100.0
            ),
            format!(
                "{} ({:.1}%)",
                r3.unavailable.len(),
                r3.unavailable.len() as f64 / r3.distinct_names as f64 * 100.0
            ),
            format!("{:.3}", svc3.stats().observed_availability()),
            svc3.stats().retries
        ]);
        // Retries never hurt.
        assert!(r3.unavailable.len() <= r1.unavailable.len());
        // Observed availability tracks the configured value (±0.05).
        assert!(
            (svc3.stats().observed_availability() - availability).abs() < 0.05,
            "observed availability drifted"
        );
    }
    print!("{}", table::render(&rows));

    // Both curves are monotone (more failures as availability falls), and
    // retries help at every degraded point.
    assert!(no_retry_curve.windows(2).all(|w| w[0] <= w[1]));
    let helped = no_retry_curve
        .iter()
        .zip(&retry_curve)
        .filter(|(a, _)| **a > 0)
        .all(|(a, b)| (*b as f64) < (*a as f64) * 0.5);
    println!(
        "\n[check] unchecked names grow monotonically as availability falls ✔\n\
         [check] 3-attempt retries cut unchecked names by >2x at every degraded point {}",
        if helped { "✔" } else { "✘" }
    );
    assert!(helped);
}
